//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmarking harness exposing the subset
//! of the criterion 0.5 API its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Differences from upstream: no statistical outlier analysis, no HTML
//! reports, no baseline persistence — each benchmark prints
//! `group/name  time: [min mean max]` computed over `sample_size` samples.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stand-in re-runs setup per measured batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in prints
    /// eagerly, so this is a no-op that consumes the group).
    pub fn finish(self) {}
}

/// Per-benchmark measurement state handed to the closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean per-iteration time of each sample, in seconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: one untimed run.
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Prints `name  time: [min mean max]` with adaptive units.
fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} time: [no samples]");
        return;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_secs(min),
        fmt_secs(mean),
        fmt_secs(max)
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Bundles benchmark functions into one named runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = b.samples.len() == 5 && b.samples.iter().all(|&s| s >= 0.0);
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
            assert_eq!(b.samples.len(), 3);
        });
        g.finish();
    }

    #[test]
    fn units_format_sanely() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }
}
