//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;

/// Strategy producing `Vec`s of a fixed length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(strategy, len)`: a vector of exactly `len`
/// elements drawn from `strategy` (the workspace only uses fixed sizes).
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
