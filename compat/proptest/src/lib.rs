//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a compact, seeded property-testing harness that supports the
//! strategy surface its tests actually use:
//!
//! * numeric range strategies (`1usize..5`, `-2.0f32..2.0`, `0u64..=3`);
//! * string strategies from the simple regex subset `CLASS{m,n}` where
//!   `CLASS` is `.` or a character class like `[a-d ]` (generated strings
//!   are printable ASCII);
//! * `proptest::collection::vec(strategy, len)` with a fixed length;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are seeded from the test name (fully
//! deterministic, no persistence files), there is **no shrinking** — the
//! failure report prints the generated inputs instead — and the case count
//! is fixed at [`CASES`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod prelude;
mod string;

/// Number of generated cases per property.
pub const CASES: u32 = 128;

/// A failed property-test case (produced by `prop_assert!`-style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A value generator. Implemented for numeric ranges, pattern strings and
/// the [`collection::vec`] combinator.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        string::sample_pattern(self, rng)
    }
}

/// Drives one property: runs [`CASES`] seeded cases, panicking with the
/// generated inputs on the first failure. Used by the [`proptest!`] macro.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), (TestCaseError, String)>,
{
    // Stable per-test seed: FNV-1a over the property name.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0100_0000_01b3)
        });
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..CASES {
        if let Err((err, inputs)) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{CASES}: {err}\n  inputs: {inputs}");
        }
    }
}

/// Declares deterministic property tests.
///
/// Supports the upstream form
/// `proptest! { #[test] fn name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, __pt_rng);)+
                    let mut __pt_inputs = ::std::string::String::new();
                    $(
                        ::std::fmt::Write::write_fmt(
                            &mut __pt_inputs,
                            format_args!("{} = {:?}; ", stringify!($arg), &$arg),
                        ).expect("formatting inputs cannot fail");
                    )+
                    let __pt_body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __pt_body().map_err(|e| (e, __pt_inputs))
                });
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fails the
/// current case (with input reporting) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`: equality assertion that fails the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 1usize..5, b in -2.0f32..2.0, c in 2u64..=3) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c == 2 || c == 3);
        }

        #[test]
        fn string_patterns_obey_class_and_length(s in "[a-c ]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|ch| ch == ' ' || ('a'..='c').contains(&ch)));
        }

        #[test]
        fn dot_patterns_are_printable_ascii(s in ".{0,16}") {
            prop_assert!(s.len() <= 16);
            prop_assert!(s.chars().all(|ch| (' '..='~').contains(&ch)));
        }

        #[test]
        fn vec_strategy_has_fixed_length(v in crate::collection::vec(-1.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_inputs() {
        crate::run_cases("always_fails", |_| {
            Err((crate::TestCaseError::fail("boom"), "x = 1; ".into()))
        });
    }
}
