//! Glob-import surface mirroring `proptest::prelude::*`.

pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
