//! String generation from the regex subset `CLASS{m,n}`.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates a string for patterns of the form `.{m,n}` or `[class]{m,n}`
/// (the only regex shapes this workspace's tests use). The character class
/// supports literals and `a-z`-style ranges.
///
/// # Panics
/// Panics on a pattern outside the supported subset, so an unsupported
/// test strategy fails loudly instead of silently generating garbage.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let (pool, rest) = parse_class(pattern);
    let (min, max) = parse_quantifier(rest, pattern);
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

/// Parses the leading `.` or `[...]`; returns the character pool and the
/// remaining pattern (the quantifier).
fn parse_class(pattern: &str) -> (Vec<char>, &str) {
    if let Some(rest) = pattern.strip_prefix('.') {
        // Printable ASCII. Upstream `.` matches any char; ASCII keeps the
        // generator readable while still covering separators, digits,
        // punctuation and mixed case.
        return ((' '..='~').collect(), rest);
    }
    let inner_end = pattern
        .find(']')
        .unwrap_or_else(|| panic!("unsupported proptest pattern {pattern:?}"));
    assert!(
        pattern.starts_with('['),
        "unsupported proptest pattern {pattern:?}"
    );
    let class: Vec<char> = pattern[1..inner_end].chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "invalid range in pattern {pattern:?}");
            pool.extend(lo..=hi);
            i += 3;
        } else {
            pool.push(class[i]);
            i += 1;
        }
    }
    assert!(!pool.is_empty(), "empty class in pattern {pattern:?}");
    (pool, &pattern[inner_end + 1..])
}

/// Parses `{m,n}` (or an empty remainder, meaning exactly one char).
fn parse_quantifier(rest: &str, pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported quantifier in pattern {pattern:?}"));
    let (m, n) = inner
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported quantifier in pattern {pattern:?}"));
    let min: usize = m.trim().parse().expect("quantifier minimum");
    let max: usize = n.trim().parse().expect("quantifier maximum");
    assert!(min <= max, "invalid quantifier in pattern {pattern:?}");
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_ranges_and_literals() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = sample_pattern("[a-cX ]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c == 'X' || c == ' ' || ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn zero_length_is_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..200).any(|_| sample_pattern("[a-b]{0,2}", &mut rng).is_empty()));
    }

    #[test]
    #[should_panic(expected = "unsupported proptest pattern")]
    fn unsupported_pattern_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = sample_pattern("(a|b)+", &mut rng);
    }
}
