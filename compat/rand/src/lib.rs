//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand 0.8` API it actually uses:
//!
//! * [`rngs::StdRng`] — a seeded, cloneable PRNG (xoshiro256** seeded via
//!   SplitMix64; not the upstream ChaCha12, but the workspace only relies
//!   on determinism-under-seed, never on the exact upstream stream);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — `gen::<T>()`, `gen_range(..)` over integer/float ranges,
//!   and `gen_bool(p)`;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is deterministic given the seed; there is no entropy source
//! and no `thread_rng`.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Construction of a PRNG from a seed value.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (stand-in for sampling with
/// the upstream `Standard` distribution).
pub trait Uniform: Sized {
    /// Draws one uniform value.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Uniform>::uniform(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Uniform>::uniform(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Raw 64-bit generator core (object-safe; stand-in for `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (floats in `[0, 1)`).
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::uniform(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::uniform(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_are_half_open_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(2..=3u32);
            assert!(v == 2 || v == 3);
        }
        let neg = rng.gen_range(-5..-1i64);
        assert!((-5..-1).contains(&neg));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        w.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        let mut u: Vec<u32> = (0..50).collect();
        u.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(u, v);
    }
}
