//! Sequence helpers (`SliceRandom`).

use crate::RngCore;

/// In-place randomization of slices.
pub trait SliceRandom {
    /// Uniform Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
