//! Ablation of AnyMatch's data-centric pipeline (the design choices behind
//! the paper's "data-centric approaches outperform model-centric ones"
//! lesson): label balancing, boosting-based difficult-example selection,
//! and attribute-pair augmentation, toggled independently on a subset of
//! LODO targets.

use em_bench::{Scale, StudyContext};
use em_core::{evaluate_on_target, lodo_split, macro_average};
use em_matchers::{AnyMatch, AnyMatchBackbone, AnyMatchConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut scale = Scale::from_env();
    scale.seeds = scale.seeds.min(2);
    let ctx = StudyContext::new(scale);
    // A small, diverse target subset keeps the ablation affordable.
    let targets = ["BEER", "DBAC", "FOZA", "WDC"];

    let variants: Vec<(&str, AnyMatchConfig)> = vec![
        ("full pipeline", AnyMatchConfig::default()),
        (
            "no balancing",
            AnyMatchConfig {
                balancing: false,
                ..AnyMatchConfig::default()
            },
        ),
        (
            "no boosting selection",
            AnyMatchConfig {
                boosting: false,
                ..AnyMatchConfig::default()
            },
        ),
        (
            "no attribute augmentation",
            AnyMatchConfig {
                attribute_augmentation: false,
                ..AnyMatchConfig::default()
            },
        ),
        (
            "balancing only",
            AnyMatchConfig {
                boosting: false,
                attribute_augmentation: false,
                ..AnyMatchConfig::default()
            },
        ),
    ];

    println!(
        "AnyMatch [GPT-2] data-centric pipeline ablation ({} seeds, targets: {})\n",
        scale.seeds,
        targets.join(", ")
    );
    println!(
        "{:<28} {}  {:>8}",
        "Variant",
        targets
            .iter()
            .map(|t| format!("{t:>8}"))
            .collect::<String>(),
        "Mean"
    );
    let mut means = Vec::new();
    for (name, cfg) in variants {
        let mut matcher =
            AnyMatch::pretrained_with_config(AnyMatchBackbone::Gpt2, &ctx.corpus, cfg);
        let mut row = format!("{name:<28} ");
        let mut scores = Vec::new();
        for code in targets {
            let id = em_core::DatasetId::parse(code).unwrap();
            let split = lodo_split(&ctx.suite, id).unwrap();
            let score = evaluate_on_target(&mut matcher, &split, &scale.eval_config())
                .expect("ablation eval");
            let m = score.summary().mean;
            row.push_str(&format!("{m:>8.1}"));
            scores.push(m);
        }
        let mean = macro_average(&scores);
        println!("{row}  {mean:>8.1}");
        means.push((name, mean));
    }

    let full = means[0].1;
    let balancing_only = means.last().unwrap().1;
    println!(
        "\nfull pipeline vs. balancing-only: {:+.1} F1 — the data-preparation steps carry the method",
        full - balancing_only
    );
    println!("\n[ablation_anymatch completed in {:.1?}]", t0.elapsed());
}
