//! Ablation of Ditto's signature techniques — data augmentation
//! (column-drop / span-delete) and TF-IDF summarization — plus a
//! serialization-order sensitivity probe (the reason the study repeats
//! every experiment under column-shuffling seeds).

use em_bench::{Scale, StudyContext};
use em_core::{evaluate_on_target, lodo_split, macro_average, MeanStd};
use em_matchers::{Ditto, DittoConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut scale = Scale::from_env();
    scale.seeds = scale.seeds.min(2);
    let ctx = StudyContext::new(scale);
    let targets = ["BEER", "DBAC", "FOZA", "WDC"];

    let variants: Vec<(&str, DittoConfig)> = vec![
        ("augmentation + summarization", DittoConfig::default()),
        (
            "no augmentation",
            DittoConfig {
                augmentation: false,
                ..DittoConfig::default()
            },
        ),
        (
            "no summarization",
            DittoConfig {
                summarization: false,
                ..DittoConfig::default()
            },
        ),
        (
            "neither",
            DittoConfig {
                augmentation: false,
                summarization: false,
                ..DittoConfig::default()
            },
        ),
    ];

    println!(
        "Ditto technique ablation ({} seeds, targets: {})\n",
        scale.seeds,
        targets.join(", ")
    );
    println!(
        "{:<30} {}  {:>8}",
        "Variant",
        targets
            .iter()
            .map(|t| format!("{t:>8}"))
            .collect::<String>(),
        "Mean"
    );
    for (name, cfg) in variants {
        let mut matcher = Ditto::pretrained_with_config(&ctx.corpus, cfg);
        let mut row = format!("{name:<30} ");
        let mut scores = Vec::new();
        for code in targets {
            let id = em_core::DatasetId::parse(code).unwrap();
            let split = lodo_split(&ctx.suite, id).unwrap();
            let score = evaluate_on_target(&mut matcher, &split, &scale.eval_config())
                .expect("ablation eval");
            let m = score.summary().mean;
            row.push_str(&format!("{m:>8.1}"));
            scores.push(m);
        }
        println!("{row}  {:>8.1}", macro_average(&scores));
    }

    // Serialization-order sensitivity: per-seed F1 spread on one target.
    println!("\nSerialization-order sensitivity (Ditto on FOZA, per-seed F1):");
    let mut matcher = Ditto::pretrained(&ctx.corpus);
    let split = lodo_split(&ctx.suite, em_core::DatasetId::Foza).unwrap();
    let cfg = em_core::EvalConfig::quick(4, scale.test_cap);
    let score = evaluate_on_target(&mut matcher, &split, &cfg).expect("sensitivity eval");
    for (seed, f1) in score.per_seed_f1.iter().enumerate() {
        println!("  seed {seed} (column order varies): F1 {f1:.1}");
    }
    let ms = MeanStd::of(&score.per_seed_f1);
    println!(
        "  spread: {ms} — language models are sensitive to the input sequence \
         (the motivation for the paper's repetition protocol)"
    );
    println!("\n[ablation_ditto completed in {:.1?}]", t0.elapsed());
}
