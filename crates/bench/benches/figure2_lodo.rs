//! Figure 2: the "leave-one-dataset-out" evaluation strategy, illustrated
//! on the ABT target exactly as in the paper — the other ten datasets form
//! the transfer-learning pool; no target example, column name, or type is
//! ever exposed to the matcher.

use em_core::{all_splits, lodo_split, DatasetId, Serializer};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let suite = em_datagen::generate_suite(0);

    println!("Figure 2: leave-one-dataset-out evaluation (target = ABT)\n");
    let split = lodo_split(&suite, DatasetId::Abt).expect("ABT present");
    println!(
        "  unseen target : {} ({} labelled pairs, used for testing only)",
        split.target.id.full_name(),
        split.target.pairs.len()
    );
    println!(
        "  transfer pool : {} datasets, {} labelled pairs total",
        split.transfer.len(),
        split.transfer_pair_count()
    );
    for b in &split.transfer {
        println!(
            "     {:<5} {:<18} {:>6} pairs ({})",
            b.id.code(),
            b.id.full_name(),
            b.pairs.len(),
            b.id.domain().label()
        );
    }

    // What a cross-dataset matcher actually sees: serialized values only.
    let ser = Serializer::shuffled(split.target.arity(), 1);
    let example = &split.target.pairs[0];
    let sp = ser.pair(&example.pair);
    println!("\n  restriction-compliant view of one target pair (seed-1 column order):");
    println!("     left  = \"{}\"", sp.left);
    println!("     right = \"{}\"", sp.right);
    println!("     (no column names, no types — Restriction 2)");

    // Every dataset takes the target role exactly once.
    let splits = all_splits(&suite).expect("full LODO");
    assert_eq!(splits.len(), 11);
    println!(
        "\n  full protocol: {} LODO splits, each dataset the target once",
        splits.len()
    );
    println!("\n[figure2_lodo completed in {:.1?}]", t0.elapsed());
}
