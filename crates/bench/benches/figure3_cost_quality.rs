//! Figure 3: deployment cost versus prediction quality. Joins the Table 3
//! F1 means (from `target/em-results/table3.csv` if a `table3_f1` run
//! exists, otherwise the paper's published means) with the Table 6 costs,
//! prints the scatter series, an ASCII rendering, the Pareto frontier, and
//! the paper's budget recommendations.

use em_bench::{paper_table3, parse_results_csv, parsed_mean, results_path};
use em_cost::{
    ascii_scatter, best_balance, best_within_budget, pareto_frontier, table6, TradeoffPoint,
};
use em_hardware::TABLE5_MODELS;
use std::time::Instant;

/// Table 6 label → Table 3 matcher label.
fn table3_label(cost_label: &str) -> Option<&'static str> {
    Some(match cost_label {
        "MatchGPT [GPT-4]" => "MatchGPT [GPT-4]",
        "MatchGPT [SOLAR]" => "MatchGPT [SOLAR]",
        "MatchGPT [Beluga2]" => "MatchGPT [Beluga2]",
        "MatchGPT [GPT-3.5-Turbo]" => "MatchGPT [GPT-3.5-Turbo]",
        "MatchGPT [Mixtral-8x7B]" => "MatchGPT [Mixtral-8x7B]",
        "MatchGPT [GPT-4o-Mini]" => "MatchGPT [GPT-4o-Mini]",
        "Unicorn[DeBERTa]" => "Unicorn",
        "AnyMatch[LLaMA3.2]" => "AnyMatch [LLaMA3.2]",
        "AnyMatch[T5]" => "AnyMatch [T5]",
        "AnyMatch[GPT-2]" => "AnyMatch [GPT-2]",
        "Ditto[Bert]" => "Ditto",
        // Jellyfish is excluded from the trade-off, as in the paper
        // (its F1 cannot be fairly averaged).
        _ => return None,
    })
}

fn f1_means() -> (Vec<(String, f64)>, &'static str) {
    if let Ok(csv) = std::fs::read_to_string(results_path()) {
        let parsed = parse_results_csv(&csv);
        if !parsed.is_empty() {
            return (
                parsed
                    .into_iter()
                    .map(|(m, _, rows)| {
                        let mean = parsed_mean(&rows, false);
                        (m, mean)
                    })
                    .collect(),
                "measured (table3_f1 run)",
            );
        }
    }
    (
        paper_table3()
            .into_iter()
            .map(|r| (r.label.to_owned(), r.mean))
            .collect(),
        "paper Table 3 (run `cargo bench --bench table3_f1` first for measured values)",
    )
}

fn main() {
    let t0 = Instant::now();
    let (means, source) = f1_means();
    let throughputs: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|m| (m.name, m.paper_tokens_per_s))
        .collect();

    let mut points = Vec::new();
    for row in table6(&throughputs) {
        let Some(label) = table3_label(&row.label) else {
            continue;
        };
        let Some((_, f1)) = means.iter().find(|(m, _)| m == label) else {
            continue;
        };
        points.push(TradeoffPoint {
            label: label.to_owned(),
            x: row.usd_per_1k_tokens,
            f1: *f1,
        });
    }

    println!("Figure 3: deployment cost vs. prediction quality (F1 source: {source})\n");
    println!("{:<26} {:>14} {:>8}", "Matcher", "$/1K tokens", "F1");
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
    for p in &sorted {
        println!("{:<26} {:>14.7} {:>8.1}", p.label, p.x, p.f1);
    }

    println!("\n{}", ascii_scatter(&points, "USD per 1K tokens"));

    let frontier = pareto_frontier(&points);
    println!("Pareto frontier (no cheaper point with higher F1):");
    for p in &frontier {
        println!("  {:<26} ${:.7} → F1 {:.1}", p.label, p.x, p.f1);
    }

    println!("\nBudget recommendations (paper's Section 4.2.2):");
    for budget in [0.00005f64, 0.000075] {
        match best_within_budget(&points, budget) {
            Some(p) => println!("  budget ≤ ${budget:.6}/1K: {} (F1 {:.1})", p.label, p.f1),
            None => println!("  budget ≤ ${budget:.6}/1K: nothing affordable"),
        }
    }
    if let Some(balance) = best_balance(&points) {
        println!(
            "  best balance: {} (paper: AnyMatch [LLaMA3.2] \"strikes the best balance\")",
            balance.label
        );
    }
    println!("\n[figure3_cost_quality completed in {:.1?}]", t0.elapsed());
}
