//! Figure 4: model size versus prediction quality — fine-tuned small
//! models perform on par with prompted LLMs that have orders of magnitude
//! more parameters. F1 comes from a prior `table3_f1` run when available,
//! else from the paper's published means.

use em_bench::{paper_table3, parse_results_csv, parsed_mean, results_path};
use em_cost::{ascii_scatter, pareto_frontier, TradeoffPoint};
use std::time::Instant;

fn points() -> (Vec<TradeoffPoint>, &'static str) {
    if let Ok(csv) = std::fs::read_to_string(results_path()) {
        let parsed = parse_results_csv(&csv);
        if !parsed.is_empty() {
            let pts = parsed
                .into_iter()
                .filter_map(|(m, params, rows)| {
                    // Jellyfish's mean cannot be fairly computed (seen
                    // datasets); exclude it like the paper's figure.
                    if m == "Jellyfish" {
                        return None;
                    }
                    Some(TradeoffPoint {
                        label: m,
                        x: params?,
                        f1: parsed_mean(&rows, false),
                    })
                })
                .collect();
            return (pts, "measured (table3_f1 run)");
        }
    }
    let pts = paper_table3()
        .into_iter()
        .filter(|r| r.label != "Jellyfish")
        .filter_map(|r| {
            Some(TradeoffPoint {
                label: r.label.to_owned(),
                x: r.params_millions?,
                f1: r.mean,
            })
        })
        .collect();
    (
        pts,
        "paper Table 3 (run `cargo bench --bench table3_f1` first for measured values)",
    )
}

fn main() {
    let t0 = Instant::now();
    let (points, source) = points();
    println!("Figure 4: model size vs. prediction quality (F1 source: {source})\n");
    println!("{:<26} {:>14} {:>8}", "Matcher", "#params (M)", "F1");
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
    for p in &sorted {
        println!("{:<26} {:>14.0} {:>8.1}", p.label, p.x, p.f1);
    }

    println!("\n{}", ascii_scatter(&points, "parameters (millions)"));

    let frontier = pareto_frontier(&points);
    println!("Size-quality Pareto frontier:");
    for p in &frontier {
        println!("  {:<26} {:>12.0}M → F1 {:.1}", p.label, p.x, p.f1);
    }

    // The paper's headline ratio.
    let get = |label: &str| points.iter().find(|p| p.label == label);
    if let (Some(any), Some(gpt4)) = (get("AnyMatch [LLaMA3.2]"), get("MatchGPT [GPT-4]")) {
        println!(
            "\nHeadline: AnyMatch [LLaMA3.2] reaches F1 {:.1} with {:.0}x fewer parameters \
             than MatchGPT [GPT-4] (F1 {:.1}) — \"three orders of magnitude\" in the paper.",
            any.f1,
            gpt4.x / any.x,
            gpt4.f1
        );
    }
    println!("\n[figure4_size_quality completed in {:.1?}]", t0.elapsed());
}
