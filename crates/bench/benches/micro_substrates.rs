//! Criterion micro-benchmarks of the substrate crates: similarity kernels,
//! tokenization, the neural forward/backward passes, end-to-end matcher
//! prediction, and blocking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use em_blocking::{Blocker, TokenBlocker};
use em_core::{AttrValue, Record, RecordPair, SerializedPair};
use em_lm::{encode_pair, train, Batch, EncoderClassifier, HashTokenizer, SlmFamily, TrainConfig};
use std::time::Duration;

const LEFT: &str = "gralev deluxe speaker kx-4812, home audio, gralev, 129.99";
const RIGHT: &str = "GRALEV speaker deluxe KX4812, audio, gralev, 131.50";

fn bench_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let (lt, rt) = (em_text::words(LEFT), em_text::words(RIGHT));
    g.bench_function("ratcliff_obershelp", |b| {
        b.iter(|| em_text::ratcliff_obershelp(std::hint::black_box(LEFT), RIGHT))
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| em_text::levenshtein(std::hint::black_box(LEFT), RIGHT))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| em_text::jaro_winkler(std::hint::black_box(LEFT), RIGHT))
    });
    g.bench_function("jaccard_tokens", |b| {
        b.iter(|| em_text::jaccard(std::hint::black_box(&lt), &rt))
    });
    g.bench_function("monge_elkan", |b| {
        b.iter(|| em_text::monge_elkan_symmetric(std::hint::black_box(&lt), &rt))
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("tokenizer");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let tok = HashTokenizer::new(2048);
    let pair = SerializedPair {
        left: LEFT.into(),
        right: RIGHT.into(),
    };
    g.bench_function("encode_text", |b| {
        b.iter(|| tok.encode_text(std::hint::black_box(LEFT)))
    });
    g.bench_function("encode_pair", |b| {
        b.iter(|| encode_pair(&tok, std::hint::black_box(&pair), 32))
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    // Transformer-shaped multiply: (batch·seq) × d_model × d_ff.
    let (m, k, n) = (256, 1024, 256);
    let fill = |len: usize, salt: u32| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 2.0
            })
            .collect()
    };
    let a = fill(m * k, 1);
    let b = fill(k * n, 2);
    let mut out = vec![0.0f32; m * n];
    g.bench_function("naive_256x256x1024", |bch| {
        bch.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            em_nn::reference::matmul(m, k, n, std::hint::black_box(&a), &b, &mut out);
        })
    });
    g.bench_function("blocked_256x256x1024", |bch| {
        bch.iter(|| em_nn::gemm::gemm_blocked(m, k, n, std::hint::black_box(&a), false, &b, false, &mut out))
    });
    em_nn::threadpool::set_max_threads(Some(1));
    g.bench_function("blocked_1_thread_256x256x1024", |bch| {
        bch.iter(|| em_nn::gemm::gemm_blocked(m, k, n, std::hint::black_box(&a), false, &b, false, &mut out))
    });
    em_nn::threadpool::set_max_threads(None);
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    let cfg = SlmFamily::Bert.config();
    let tok = HashTokenizer::new(cfg.vocab);
    let pair = SerializedPair {
        left: LEFT.into(),
        right: RIGHT.into(),
    };
    let encoded: Vec<_> = (0..32)
        .map(|_| encode_pair(&tok, &pair, cfg.max_seq))
        .collect();
    let batch = Batch::collate(&encoded);
    let model = EncoderClassifier::new(cfg, 0);
    g.bench_function("forward_batch32", |b| {
        b.iter(|| model.forward(std::hint::black_box(&batch)))
    });
    let data: Vec<_> = encoded.iter().map(|e| (e.clone(), true)).collect();
    g.bench_function("train_step_batch32", |b| {
        b.iter_batched(
            || EncoderClassifier::new(cfg, 0),
            |mut m| {
                train(
                    &mut m,
                    std::hint::black_box(&data),
                    &TrainConfig {
                        epochs: 1,
                        batch_size: 32,
                        ..Default::default()
                    },
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let bench = em_datagen::generate(em_core::DatasetId::Beer, 0);
    let left: Vec<Record> = bench
        .pairs
        .iter()
        .take(200)
        .map(|p| p.pair.left.clone())
        .collect();
    let right: Vec<Record> = bench
        .pairs
        .iter()
        .take(200)
        .map(|p| p.pair.right.clone())
        .collect();
    g.bench_function("token_blocker_200x200", |b| {
        b.iter(|| TokenBlocker::default().candidates(std::hint::black_box(&left), &right))
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("serialization");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let pair = RecordPair::new(
        Record::new(
            0,
            vec![
                AttrValue::from("gralev deluxe speaker"),
                AttrValue::Number(129.99),
            ],
        ),
        Record::new(
            1,
            vec![
                AttrValue::from("gralev speaker deluxe"),
                AttrValue::Number(131.5),
            ],
        ),
    );
    let ser = em_core::Serializer::shuffled(2, 3);
    g.bench_function("serialize_pair", |b| {
        b.iter(|| ser.pair(std::hint::black_box(&pair)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_tokenizer,
    bench_gemm,
    bench_model,
    bench_blocking,
    bench_serialization
);
criterion_main!(benches);
