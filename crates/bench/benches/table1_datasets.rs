//! Table 1: the 11 benchmark datasets and their statistics
//! (domain, #attributes, #positives, #negatives), regenerated from the
//! synthetic generators and checked against the paper's values. Also runs
//! the Section 5.1 leakage audit (natural joins between all dataset pairs).

use em_core::{spec_of, DatasetId};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("Table 1: benchmark datasets (generated vs. paper)\n");
    println!(
        "{:<6} {:<18} {:<14} {:>6} {:>8} {:>8}   check",
        "Code", "Dataset", "Domain", "#Attr", "#Pos", "#Neg"
    );
    let suite = em_datagen::generate_suite(0);
    let mut all_match = true;
    for bench in &suite {
        let spec = spec_of(bench.id);
        let ok = bench.arity() == spec.attrs
            && bench.positives() == spec.positives
            && bench.negatives() == spec.negatives;
        all_match &= ok;
        println!(
            "{:<6} {:<18} {:<14} {:>6} {:>8} {:>8}   {}",
            bench.id.code(),
            bench.id.full_name(),
            bench.id.domain().label(),
            bench.arity(),
            bench.positives(),
            bench.negatives(),
            if ok { "= paper" } else { "MISMATCH" }
        );
    }
    assert!(all_match, "generated statistics must match Table 1");

    println!("\nSection 5.1 leakage audit (natural joins between datasets):");
    let report = em_datagen::audit(&suite);
    let max_overlap = report.joins.iter().map(|(_, _, n)| *n).max().unwrap_or(0);
    println!(
        "  {} dataset pairs audited, maximum tuple overlap: {max_overlap}",
        report.joins.len()
    );
    assert!(
        report.is_clean(),
        "tuple leakage between datasets: {:?}",
        report.joins
    );
    println!("  zero tuple overlap between every pair of datasets (matches the paper)");
    println!("\n[table1_datasets completed in {:.1?}]", t0.elapsed());
    let _ = DatasetId::ALL; // silence unused-import lints under cfg changes
}
