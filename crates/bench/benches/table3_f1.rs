//! Table 3: the main study — mean ± std F1 for all 14 matcher
//! configurations on all 11 unseen target datasets under the
//! leave-one-dataset-out protocol, followed by the Finding 5 (domain
//! overlap t-test) and Finding 6 (skew correlation) analyses.
//!
//! Scale: `EM_SEEDS` seeds (default 2; the paper uses 5) and a test cap of
//! `EM_TEST_CAP` (default 1250, the paper's value). Results are written to
//! `target/em-results/table3.csv` for the figure harnesses.

use em_bench::{
    finding5_domain_overlap, finding6_skew_correlation, format_row, paper_table3, reports_to_csv,
    results_path, table3_header, Scale, StudyContext,
};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let scale = Scale::from_env();
    eprintln!(
        "[table3] seeds={} cap={} (paper: 5 seeds, cap 1250) — generating suite + pretraining ...",
        scale.seeds, scale.test_cap
    );
    let ctx = StudyContext::new(scale);
    let mut roster = ctx.table3_roster();
    eprintln!(
        "[table3] setup done in {:.1?}; evaluating {} matchers",
        t0.elapsed(),
        roster.len()
    );

    println!(
        "Table 3: cross-dataset F1 (mean±std over {} seeds; brackets = dataset seen in training)\n",
        scale.seeds
    );
    println!("{}", table3_header());
    let mut reports = Vec::with_capacity(roster.len());
    for matcher in roster.iter_mut() {
        let tm = Instant::now();
        let report = ctx.run(matcher.as_mut());
        println!("{}", format_row(&report));
        eprintln!("[table3]   {} done in {:.1?}", report.matcher, tm.elapsed());
        reports.push(report);
    }

    // Paper comparison of the Mean column.
    println!("\nMean column, measured vs. paper:");
    for report in &reports {
        let ours = report.mean_column().mean;
        let paper = paper_table3()
            .into_iter()
            .find(|r| r.label == report.matcher)
            .map(|r| r.mean);
        match paper {
            Some(p) => println!(
                "  {:<26} measured {:>5.1}   paper {:>5.1}   Δ {:+.1}",
                report.matcher,
                ours,
                p,
                ours - p
            ),
            None => println!("  {:<26} measured {:>5.1}", report.matcher, ours),
        }
    }

    // Headline check: best fine-tuned SLM vs. best prompted LLM.
    let mean_of = |label: &str| {
        reports
            .iter()
            .find(|r| r.matcher == label)
            .map(|r| r.mean_column().mean)
    };
    if let (Some(any), Some(gpt4)) = (mean_of("AnyMatch [LLaMA3.2]"), mean_of("MatchGPT [GPT-4]")) {
        println!(
            "\nHeadline: AnyMatch [LLaMA3.2] = {any:.1} vs MatchGPT [GPT-4] = {gpt4:.1} \
             (paper: 87.5 vs 87.4 — fine-tuned SLM on par with the largest prompted LLM)"
        );
    }

    // Finding 5: domain overlap does not significantly help.
    if let Some(reference) = reports.iter().find(|r| r.matcher.contains("GPT-3.5")) {
        if let Some(t) = finding5_domain_overlap(&reports, reference) {
            println!(
                "\nFinding 5 — Welch t-test, same-domain vs. no-sibling normalized F1: \
                 t = {:.2}, df = {:.1}, p = {:.3} → {}",
                t.t,
                t.df,
                t.p_two_sided,
                if t.rejects_at(0.05) {
                    "REJECTED at α=0.05 (differs from paper)"
                } else {
                    "not rejected (matches the paper: overlapping domains do not significantly help)"
                }
            );
        }
    }

    // Finding 6: weak monotonic link between F1 and label skew.
    println!("\nFinding 6 — Spearman ρ(F1, positive rate) per language-model matcher:");
    let mut rhos = Vec::new();
    for report in &reports {
        if report.params_millions.is_none() {
            continue; // parameter-free baselines excluded, as in the paper
        }
        if let Some(rho) = finding6_skew_correlation(report) {
            println!("  {:<26} ρ = {rho:+.2}", report.matcher);
            rhos.push(rho.abs());
        }
    }
    if !rhos.is_empty() {
        let mean_abs = rhos.iter().sum::<f64>() / rhos.len() as f64;
        println!(
            "  mean |ρ| = {mean_abs:.2} (paper: ≈0.15, never above 0.3 → insensitive to skew)"
        );
    }

    // Persist for the figure harnesses.
    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, reports_to_csv(&reports)).expect("write results csv");
    println!(
        "\n[results written to {} — reused by figure3/figure4]",
        path.display()
    );
    println!("[table3_f1 completed in {:.1?}]", t0.elapsed());
}
