//! Table 4: the demonstration experiment — zero-shot vs. hand-picked vs.
//! random-selected demonstrations (drawn from the transfer pool, never the
//! target) for the three GPT-series tiers. Reproduces Section 4.1.1's
//! result: demonstrations tend to *hurt* GPT-4o-Mini and GPT-3.5 in the
//! cross-dataset setting, while GPT-4 benefits subtly; random selection
//! beats hand-picking.

use em_bench::{paper_table4_means, Scale, StudyContext};
use em_core::DatasetId;
use em_lm::LlmTier;
use em_matchers::{DemoStrategy, MatchGpt};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let scale = Scale::from_env();
    let ctx = StudyContext::new(scale);
    eprintln!("[table4] setup done in {:.1?}", t0.elapsed());

    let models = [LlmTier::Gpt4oMini, LlmTier::Gpt35Turbo, LlmTier::Gpt4];
    let strategies = [
        DemoStrategy::None,
        DemoStrategy::HandPicked,
        DemoStrategy::Random,
    ];

    println!(
        "Table 4: demonstration strategies, mean±std F1 over {} seeds\n",
        scale.seeds
    );
    let mut header = format!("{:<16} {:<16}", "Model", "Demonstrations");
    for d in DatasetId::ALL {
        header.push_str(&format!("{:>10}", d.code()));
    }
    header.push_str(&format!("{:>10}", "Mean"));
    println!("{header}");

    let mut measured_means: Vec<(LlmTier, [f64; 3])> = Vec::new();
    for tier in models {
        let llm = ctx.tier(tier); // pretrained once, shared across strategies
        let mut tier_means = [0.0f64; 3];
        for (si, strategy) in strategies.iter().enumerate() {
            let mut matcher = MatchGpt::with_llm(llm.clone(), *strategy);
            let report = ctx.run(&mut matcher);
            let mut row = format!("{:<16} {:<16}", tier.label(), strategy.label());
            for s in &report.scores {
                row.push_str(&format!("{:>10.1}", s.summary().mean));
            }
            let mean = report.mean_column();
            row.push_str(&format!("{:>10.1}", mean.mean));
            println!("{row}");
            tier_means[si] = mean.mean;
            eprintln!(
                "[table4]   {} / {} done ({:.1?} elapsed)",
                tier.label(),
                strategy.label(),
                t0.elapsed()
            );
        }
        measured_means.push((tier, tier_means));
    }

    println!("\nMean column vs. paper (none / hand-picked / random):");
    for ((tier, ours), (paper_label, paper)) in measured_means.iter().zip(paper_table4_means()) {
        println!(
            "  {:<16} measured {:>5.1} / {:>5.1} / {:>5.1}   paper[{paper_label}] {:>5.1} / {:>5.1} / {:>5.1}",
            tier.label(),
            ours[0],
            ours[1],
            ours[2],
            paper[0],
            paper[1],
            paper[2]
        );
    }

    println!("\nShape checks (paper's Section 4.1.1 conclusions):");
    for (tier, [none, hand, random]) in &measured_means {
        let verdict = match tier {
            LlmTier::Gpt4 => {
                if hand.max(*random) >= *none - 0.5 {
                    "demos ≈/↑ zero-shot (matches: GPT-4 can exploit OOD demos)"
                } else {
                    "demos hurt (differs from paper)"
                }
            }
            _ => {
                if *none >= hand.min(*random) {
                    "zero-shot ≥ worst demo variant (matches: OOD demos tend to hurt weaker tiers)"
                } else {
                    "demos helped (differs from paper)"
                }
            }
        };
        println!("  {:<16} {verdict}", tier.label());
        if random > hand {
            println!("  {:<16} random > hand-picked (matches the paper)", "");
        }
    }
    println!("\n[table4_demos completed in {:.1?}]", t0.elapsed());
}
