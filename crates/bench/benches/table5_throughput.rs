//! Table 5: inference throughput of the nine open-weight models on
//! 4×A100-40GB — RAM, model-parallelism degree, max batch size and
//! tokens/s, all *derived* by the `em-hardware` simulator and printed next
//! to the paper's measurements. Additionally measures the *real* tokens/s
//! of this repository's tiny model instantiations on the host CPU.

use em_hardware::{deploy, weights_ram_gib, Machine, TABLE5_MODELS};
use em_lm::{encode_pair, Batch, EncoderClassifier, HashTokenizer, SlmFamily};
use std::time::Instant;

fn measure_real_throughput(family: SlmFamily) -> f64 {
    // Tokens/s of the tiny instantiation on this CPU, DBGO-like inputs.
    let cfg = family.config();
    let model = EncoderClassifier::new(cfg, 0);
    let tok = HashTokenizer::new(cfg.vocab);
    let pair = em_core::SerializedPair {
        left: "towards entity matching with gradient descent, a author, vldb, 2021".into(),
        right: "towards entity matchin with gradient descent, a author, vldb, 2021".into(),
    };
    let encoded: Vec<_> = (0..64)
        .map(|_| encode_pair(&tok, &pair, cfg.max_seq))
        .collect();
    let batch = Batch::collate(&encoded);
    // Warm up, then measure.
    let _ = model.forward(&batch);
    let t0 = Instant::now();
    let mut iters = 0usize;
    while t0.elapsed().as_millis() < 300 {
        let _ = model.forward(&batch);
        iters += 1;
    }
    let tokens = iters * batch.n * batch.seq;
    tokens as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let t0 = Instant::now();
    let node = Machine::hpc_node();
    println!("Table 5: throughput on 4×A100-40GB — simulator vs. paper\n");
    println!(
        "{:<14} {:<10} {:>10} {:>9} {:>9} {:>6} {:>6} {:>12} {:>12}",
        "Model",
        "Used by",
        "#params(M)",
        "RAM sim",
        "RAM ppr",
        "batch",
        "ppr",
        "tokens/s sim",
        "tokens/s ppr"
    );
    for p in &TABLE5_MODELS {
        let d = deploy(p, &node);
        println!(
            "{:<14} {:<10} {:>10.0} {:>9.2} {:>9} {:>6} {:>6} {:>12.0} {:>12.0}",
            p.name,
            p.used_by,
            p.params_millions,
            weights_ram_gib(p),
            p.reported_ram_gib
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            d.max_batch,
            p.paper_batch,
            d.tokens_per_s,
            p.paper_tokens_per_s,
        );
    }

    // Structural checks from the paper's discussion.
    let sim: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|p| (p.name, deploy(p, &node).tokens_per_s))
        .collect();
    let get = |n: &str| sim.iter().find(|(name, _)| *name == n).unwrap().1;
    println!("\nShape checks:");
    println!(
        "  Ditto[BERT] / SOLAR throughput ratio: {:.0}x (paper: 1,146x)",
        get("BERT") / get("SOLAR")
    );
    println!(
        "  Ditto[BERT] / Beluga2 throughput ratio: {:.0}x (paper: 798x)",
        get("BERT") / get("Beluga2")
    );
    let slm_min = ["BERT", "GPT-2", "DeBERTa", "T5", "LLaMA3.2"]
        .iter()
        .map(|n| get(n))
        .fold(f64::INFINITY, f64::min);
    let llm_max = ["Mixtral-8x7B", "Beluga2", "SOLAR"]
        .iter()
        .map(|n| get(n))
        .fold(0.0f64, f64::max);
    println!(
        "  min(SLM) / max(open LLM) = {:.0}x (paper: ≥ two orders of magnitude)",
        slm_min / llm_max
    );
    assert!(slm_min / llm_max > 100.0);

    println!("\nMeasured tokens/s of this repository's tiny instantiations (host CPU, batch 64):");
    for family in [
        SlmFamily::Bert,
        SlmFamily::Gpt2,
        SlmFamily::T5,
        SlmFamily::Llama32,
    ] {
        let tps = measure_real_throughput(family);
        println!("  {:<10} {:>10.0} tokens/s", family.label(), tps);
    }
    println!("\n[table5_throughput completed in {:.1?}]", t0.elapsed());
}
