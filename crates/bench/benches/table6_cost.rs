//! Table 6: cost per 1K tokens for each method/model with its cheapest
//! deployment scenario. Two variants are printed: one from the paper's
//! measured throughput numbers and one from the `em-hardware` simulator's
//! derived throughputs — the structure (ordering, orders-of-magnitude
//! gaps) must agree.

use em_cost::table6;
use em_hardware::{deploy, Machine, TABLE5_MODELS};
use std::time::Instant;

fn print_table(title: &str, throughputs: &[(&str, f64)]) {
    println!("{title}");
    println!(
        "{:<26} {:>14}   Deployment scenario",
        "Method & model", "$/1K tokens"
    );
    for row in table6(throughputs) {
        println!(
            "{:<26} {:>14.7}   {}",
            row.label,
            row.usd_per_1k_tokens,
            row.scenario.label()
        );
    }
    println!();
}

fn main() {
    let t0 = Instant::now();
    let paper: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|m| (m.name, m.paper_tokens_per_s))
        .collect();
    print_table("Table 6 (from the paper's measured throughputs):", &paper);

    let node = Machine::hpc_node();
    let simulated: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|m| (m.name, deploy(m, &node).tokens_per_s))
        .collect();
    print_table(
        "Table 6 (from the em-hardware simulator's throughputs):",
        &simulated,
    );

    // Structural checks.
    let rows = table6(&paper);
    let cost = |needle: &str| {
        rows.iter()
            .find(|r| r.label.contains(needle))
            .unwrap()
            .usd_per_1k_tokens
    };
    println!("Shape checks:");
    println!(
        "  GPT-4 / Ditto cost ratio: {:.0}x (paper: 4,838x; the stated formula gives ~{:.0}x)",
        cost("GPT-4]") / cost("Ditto"),
        cost("GPT-4]") / cost("Ditto"),
    );
    assert!(cost("GPT-4]") / cost("Ditto") > 1_000.0);
    assert!(cost("GPT-4o-Mini") < cost("GPT-3.5-Turbo"));
    assert!(cost("Ditto") < cost("AnyMatch[GPT-2]"));
    println!("  ordering: GPT-4 most expensive, Ditto cheapest, GPT-4o-Mini ≪ GPT-3.5 — matches the paper");
    println!("\nNote: the paper's Jellyfish ($0.000025) and Mixtral ($0.00063) rows imply");
    println!("replica-count extrapolation factors (8x / 4x) instead of the stated factor 2;");
    println!("this harness applies the stated formula consistently (see EXPERIMENTS.md).");
    println!("\n[table6_cost completed in {:.1?}]", t0.elapsed());
}
