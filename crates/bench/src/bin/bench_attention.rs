//! Attention micro-benchmark: the seed multi-head attention layer
//! (per-head tensor slicing, seed-naive matmuls, separate scale + softmax
//! passes, single-threaded) vs the fused, arena-backed, thread-parallel
//! kernel, on the representative fine-tune step shape — batch 32,
//! seq 128, d_model 256, 8 heads.
//!
//! Both variants run the *full layer step* (Q/K/V/O projections + the
//! attention core, forward and backward) with identical weights and
//! inputs, which is what one transformer block costs inside
//! `em_lm::finetune::train`. The seed replica below reproduces the seed
//! repository's kernels verbatim: `slice_head` copies into fresh per-head
//! tensors, ikj matmul with the data-dependent `a == 0.0` skip and
//! unfused multiply-add, a separate `scale()` pass, and no threading.
//!
//! Writes machine-readable results to `BENCH_attention.json` (or the path
//! in argv[1]); `--smoke` runs a tiny shape once to validate the harness
//! in CI without the full measurement cost.

use em_nn::tensor::Tensor;
use em_nn::{reference, threadpool, MultiHeadAttention};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Deterministic pseudo-noise in roughly [-0.5, 0.5).
fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (h >> 8) as f32 / (1 << 24) as f32 - 0.5
        })
        .collect()
}

/// (best, median) wall-clock seconds over `reps` runs (1 warmup run
/// discarded). Best-of is the speedup figure: on a shared host the
/// minimum is the least noisy estimate of true cost.
fn time_it(reps: usize, mut run: impl FnMut()) -> (f64, f64) {
    run(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[0], samples[reps / 2])
}

// ---------------------------------------------------------------------------
// Seed replica: the attention layer exactly as the seed repository ran it.
// ---------------------------------------------------------------------------

/// The seed `Tensor::matmul` inner loops, verbatim (ikj order, `a == 0.0`
/// skip, unfused multiply-add). `c` must be zeroed by the caller.
fn seed_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Seed `Tensor::matmul_t`: `C = A·Bᵀ` with `B` stored `n×k`.
fn seed_matmul_t(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
}

/// Seed `Tensor::t_matmul`: `C = Aᵀ·B` with `A` stored `k×m`.
fn seed_t_matmul(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Seed masked softmax row (identical semantics to the current kernel;
/// the seed ran it after a separate whole-matrix `scale()` pass).
fn seed_masked_softmax_row(row: &mut [f32], mask: &[bool]) {
    let mut m = f32::NEG_INFINITY;
    for (v, &keep) in row.iter().zip(mask) {
        if keep && *v > m {
            m = *v;
        }
    }
    if !m.is_finite() {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for (v, &keep) in row.iter_mut().zip(mask) {
        if keep {
            *v = (*v - m).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

/// A linear layer run through the seed kernels (fresh output allocations
/// per call, exactly like the seed `Linear`).
struct SeedLinear {
    w: Vec<f32>, // in × out
    b: Vec<f32>, // out
    dw: Vec<f32>,
    db: Vec<f32>,
    cached_x: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl SeedLinear {
    fn from(l: &em_nn::Linear) -> SeedLinear {
        SeedLinear {
            w: l.weight.value.data().to_vec(),
            b: l.bias.value.data().to_vec(),
            dw: vec![0.0; l.weight.value.len()],
            db: vec![0.0; l.bias.value.len()],
            cached_x: Vec::new(),
            in_dim: l.weight.value.rows(),
            out_dim: l.weight.value.cols(),
        }
    }

    fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        self.cached_x = x.to_vec();
        let mut y = vec![0.0f32; rows * self.out_dim];
        seed_matmul(rows, self.in_dim, self.out_dim, x, &self.w, &mut y);
        for r in 0..rows {
            for (yv, bv) in y[r * self.out_dim..(r + 1) * self.out_dim].iter_mut().zip(&self.b) {
                *yv += bv;
            }
        }
        y
    }

    fn backward(&mut self, dy: &[f32], rows: usize) -> Vec<f32> {
        // dW = Xᵀ·dY, db = colsum(dY), dX = dY·Wᵀ.
        let mut dw = vec![0.0f32; self.in_dim * self.out_dim];
        seed_t_matmul(rows, self.in_dim, self.out_dim, &self.cached_x, dy, &mut dw);
        for (g, d) in self.dw.iter_mut().zip(&dw) {
            *g += d;
        }
        for r in 0..rows {
            for (g, &d) in self.db.iter_mut().zip(&dy[r * self.out_dim..(r + 1) * self.out_dim]) {
                *g += d;
            }
        }
        let mut dx = vec![0.0f32; rows * self.in_dim];
        seed_matmul_t(rows, self.out_dim, self.in_dim, dy, &self.w, &mut dx);
        dx
    }
}

/// The seed attention layer: per-head slicing, naive matmuls, separate
/// scale and softmax passes, no threading, fresh allocations throughout.
struct SeedAttention {
    wq: SeedLinear,
    wk: SeedLinear,
    wv: SeedLinear,
    wo: SeedLinear,
    heads: usize,
    dim: usize,
    // forward cache
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<Vec<f32>>, // one seq×seq matrix per (batch, head)
    seq: usize,
    batch: usize,
}

impl SeedAttention {
    fn from(mha: &MultiHeadAttention, heads: usize, dim: usize) -> SeedAttention {
        SeedAttention {
            wq: SeedLinear::from(&mha.wq),
            wk: SeedLinear::from(&mha.wk),
            wv: SeedLinear::from(&mha.wv),
            wo: SeedLinear::from(&mha.wo),
            heads,
            dim,
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            attn: Vec::new(),
            seq: 0,
            batch: 0,
        }
    }

    /// The seed `slice_head`: copies head `h` of sequence `b` into a fresh
    /// `seq × hd` buffer.
    fn slice_head(&self, x: &[f32], b: usize, h: usize, seq: usize) -> Vec<f32> {
        let hd = self.dim / self.heads;
        let mut out = vec![0.0f32; seq * hd];
        for t in 0..seq {
            let src = (b * seq + t) * self.dim + h * hd;
            out[t * hd..(t + 1) * hd].copy_from_slice(&x[src..src + hd]);
        }
        out
    }

    /// The seed `unslice_head_add`: scatters a `seq × hd` buffer back.
    fn unslice_head_add(&self, part: &[f32], b: usize, h: usize, seq: usize, out: &mut [f32]) {
        let hd = self.dim / self.heads;
        for t in 0..seq {
            let dst = (b * seq + t) * self.dim + h * hd;
            out[dst..dst + hd].copy_from_slice(&part[t * hd..(t + 1) * hd]);
        }
    }

    fn forward(&mut self, x: &[f32], rows: usize, seq: usize, mask: &[bool]) -> Vec<f32> {
        let batch = rows / seq;
        let hd = self.dim / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        self.q = self.wq.forward(x, rows);
        self.k = self.wk.forward(x, rows);
        self.v = self.wv.forward(x, rows);
        let mut concat = vec![0.0f32; rows * self.dim];
        self.attn.clear();
        for b in 0..batch {
            let bmask = &mask[b * seq..(b + 1) * seq];
            for h in 0..self.heads {
                let qb = self.slice_head(&self.q, b, h, seq);
                let kb = self.slice_head(&self.k, b, h, seq);
                let vb = self.slice_head(&self.v, b, h, seq);
                let mut scores = vec![0.0f32; seq * seq];
                seed_matmul_t(seq, hd, seq, &qb, &kb, &mut scores);
                scores.iter_mut().for_each(|s| *s *= scale); // separate scale pass
                for t in 0..seq {
                    seed_masked_softmax_row(&mut scores[t * seq..(t + 1) * seq], bmask);
                }
                let mut ob = vec![0.0f32; seq * hd];
                seed_matmul(seq, seq, hd, &scores, &vb, &mut ob);
                self.unslice_head_add(&ob, b, h, seq, &mut concat);
                self.attn.push(scores);
            }
        }
        self.seq = seq;
        self.batch = batch;
        self.wo.forward(&concat, rows)
    }

    fn backward(&mut self, dy: &[f32], rows: usize) -> Vec<f32> {
        let (batch, seq) = (self.batch, self.seq);
        let hd = self.dim / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let d_concat = self.wo.backward(dy, rows);
        let mut dq_all = vec![0.0f32; rows * self.dim];
        let mut dk_all = vec![0.0f32; rows * self.dim];
        let mut dv_all = vec![0.0f32; rows * self.dim];
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = self.slice_head(&self.q, b, h, seq);
                let kb = self.slice_head(&self.k, b, h, seq);
                let vb = self.slice_head(&self.v, b, h, seq);
                let dob = self.slice_head(&d_concat, b, h, seq);
                let p = &self.attn[b * self.heads + h];
                // dA = dO·Vᵀ ; dV = Pᵀ·dO
                let mut da = vec![0.0f32; seq * seq];
                seed_matmul_t(seq, hd, seq, &dob, &vb, &mut da);
                let mut dvb = vec![0.0f32; seq * hd];
                seed_t_matmul(seq, seq, hd, p, &dob, &mut dvb);
                // dS = scale · P ⊙ (dA − rowsum(dA ⊙ P))
                let mut ds = vec![0.0f32; seq * seq];
                for t in 0..seq {
                    let prow = &p[t * seq..(t + 1) * seq];
                    let darow = &da[t * seq..(t + 1) * seq];
                    let inner: f32 = prow.iter().zip(darow).map(|(x, y)| x * y).sum();
                    for j in 0..seq {
                        ds[t * seq + j] = prow[j] * (darow[j] - inner);
                    }
                }
                ds.iter_mut().for_each(|x| *x *= scale);
                // dQ = dS·K ; dK = dSᵀ·Q
                let mut dqb = vec![0.0f32; seq * hd];
                seed_matmul(seq, seq, hd, &ds, &kb, &mut dqb);
                let mut dkb = vec![0.0f32; seq * hd];
                seed_t_matmul(seq, seq, hd, &ds, &qb, &mut dkb);
                self.unslice_head_add(&dqb, b, h, seq, &mut dq_all);
                self.unslice_head_add(&dkb, b, h, seq, &mut dk_all);
                self.unslice_head_add(&dvb, b, h, seq, &mut dv_all);
            }
        }
        let mut dx = self.wq.backward(&dq_all, rows);
        for (d, x) in dx.iter_mut().zip(self.wk.backward(&dk_all, rows)) {
            *d += x;
        }
        for (d, x) in dx.iter_mut().zip(self.wv.backward(&dv_all, rows)) {
            *d += x;
        }
        dx
    }
}

// ---------------------------------------------------------------------------

/// The `threads` JSON block shared by all bench bins: how the budget was
/// derived and what a reservation is actually granted right now.
fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

#[allow(clippy::too_many_arguments)]
fn run(batch: usize, seq: usize, dim: usize, heads: usize, reps: usize, out_path: &str) {
    let rows = batch * seq;
    let hd = dim / heads;
    let x = fill(rows * dim, 3);
    let dy = fill(rows * dim, 4);
    // Ragged mask: last quarter of each sequence padded (the collated-batch
    // shape the matchers actually produce).
    let mask: Vec<bool> = (0..rows).map(|i| i % seq < seq - seq / 4).collect();
    let xt = Tensor::from_vec(rows, dim, x.clone());
    let dyt = Tensor::from_vec(rows, dim, dy.clone());

    let mut rng = StdRng::seed_from_u64(12345);
    let mut fused = MultiHeadAttention::new(dim, heads, &mut rng);
    let mut seed = SeedAttention::from(&fused, heads, dim);

    // Correctness first: the two layers must agree on identical weights,
    // and the fused core must match the naive oracle.
    let seed_y = seed.forward(&x, rows, seq, &mask);
    let fused_y = fused.forward(&xt, seq, &mask);
    let max_diff = seed_y
        .iter()
        .zip(fused_y.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff <= 1e-4,
        "fused layer diverged from seed layer by {max_diff}"
    );
    let qp = fused.wq.forward_inference(&xt);
    let kp = fused.wk.forward_inference(&xt);
    let vp = fused.wv.forward_inference(&xt);
    let core = em_nn::fused_attention(&qp, &kp, &vp, seq, heads, &mask);
    let mut want = vec![0.0f32; rows * dim];
    reference::attention(batch, seq, heads, hd, qp.data(), kp.data(), vp.data(), &mask, &mut want);
    let core_diff = core
        .data()
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        core_diff <= 1e-5,
        "fused core diverged from em_nn::reference::attention by {core_diff}"
    );

    // --- Seed layer step (single-threaded by construction). -------------
    let (t_seed, t_seed_med) = time_it(reps, || {
        let y = seed.forward(&x, rows, seq, &mask);
        let dx = seed.backward(&dy, rows);
        std::hint::black_box((&y, &dx));
    });

    // --- Fused layer step, 1 thread. -------------------------------------
    threadpool::set_max_threads(Some(1));
    let (t_fused1, t_fused1_med) = time_it(reps, || {
        let y = fused.forward(&xt, seq, &mask);
        let dx = fused.backward(&dyt);
        std::hint::black_box((&y, &dx));
    });

    // --- Fused layer step, full budget. ----------------------------------
    threadpool::set_max_threads(None);
    let (t_fusedp, t_fusedp_med) = time_it(reps, || {
        let y = fused.forward(&xt, seq, &mask);
        let dx = fused.backward(&dyt);
        std::hint::black_box((&y, &dx));
    });

    let budget = threadpool::max_threads();
    let speedup_1t = t_seed / t_fused1;
    let speedup_par = t_seed / t_fusedp;
    println!(
        "attention layer step (fwd+bwd), batch {batch} seq {seq} d_model {dim} heads {heads}, best/median of {reps}, budget {budget} thread(s)"
    );
    let row_fmt = |name: &str, best: f64, med: f64| {
        println!(
            "  {name:<26}: best {:>8.2} ms, median {:>8.2} ms  [{:.2}x vs seed]",
            best * 1e3,
            med * 1e3,
            t_seed / best
        );
    };
    row_fmt("seed attention layer", t_seed, t_seed_med);
    row_fmt("fused, 1 thread", t_fused1, t_fused1_med);
    row_fmt(&format!("fused, {budget} thread(s)"), t_fusedp, t_fusedp_med);

    let entry = |best: f64, med: f64| {
        format!("{{ \"best_seconds\": {best:.6}, \"median_seconds\": {med:.6} }}")
    };
    let json = format!(
        "{{\n  \"workload\": \"attention layer forward+backward (Q/K/V/O projections + masked softmax core)\",\n  \"shape\": {{ \"batch\": {batch}, \"seq\": {seq}, \"d_model\": {dim}, \"heads\": {heads} }},\n  \"reps\": {reps},\n  \"threads\": {},\n  \"seed_attention\": {},\n  \"fused_1_thread\": {},\n  \"fused_parallel\": {},\n  \"speedup_fused_1_thread_vs_seed\": {:.3},\n  \"speedup_fused_parallel_vs_seed\": {:.3},\n  \"max_abs_diff_layer_vs_seed\": {:.3e},\n  \"max_abs_diff_core_vs_reference\": {:.3e}\n}}\n",
        threads_json(),
        entry(t_seed, t_seed_med),
        entry(t_fused1, t_fused1_med),
        entry(t_fusedp, t_fusedp_med),
        speedup_1t,
        speedup_par,
        max_diff,
        core_diff,
    );
    std::fs::write(out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_attention.json".to_string());
    if smoke {
        // Tiny shape, 2 reps: validates harness + equivalence asserts in CI.
        run(2, 16, 32, 4, 2, &out_path);
    } else {
        run(32, 128, 256, 8, 7, &out_path);
    }
}
