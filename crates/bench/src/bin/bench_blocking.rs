//! Blocking benchmark: the indexed, banded-parallel candidate generation
//! against the sequential reference path on the serving workload.
//!
//! The workload is `em_datagen::serve_relations` at 100k×100k (the
//! `BENCH_serve` shape) under the serving `TokenBlocker` configuration.
//! Asserted before anything is reported:
//!
//! * the indexed path's candidate set is **bitwise identical** to the
//!   sequential reference at 1, 2, and 8 threads;
//! * q-gram and sorted-neighbourhood parity holds at a bounded scale
//!   (their reference paths are too slow for 100k);
//! * in full mode, the indexed path (build + probe) beats the sequential
//!   reference by at least 3× at the widest thread cap;
//! * reusing prebuilt indexes (the pipeline's warm path) leaves only the
//!   probe, which must beat the reference by a wider margin still.
//!
//! Writes machine-readable results to `BENCH_blocking.json` (or the path
//! in argv[1]); `--smoke` runs 2k×2k to validate the harness in CI.

use em_blocking::{
    reference, Blocker, CandidatePair, QGramBlocker, RelationIndex, SortedNeighbourhood,
    TokenBlocker,
};
use em_core::Record;
use em_datagen::serve_relations;
use em_nn::threadpool;
use std::time::Instant;

/// The serving blocker (the `BENCH_serve` configuration).
fn serve_blocker() -> TokenBlocker {
    TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    }
}

/// The `threads` JSON block shared by all bench bins.
fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

/// Medians a small sample of wall-clock timings of `f`, returning the
/// timing and the last result (all results are asserted equal upstream).
fn time_runs<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], out.unwrap())
}

/// Cross-family parity at a bounded scale: the q-gram and
/// sorted-neighbourhood reference paths are quadratic-ish in ways the
/// 100k workload would turn into hours, so their bitwise checks run on a
/// slice of the same relations.
fn bounded_family_parity(left: &[Record], right: &[Record], caps: &[usize]) {
    let qg = QGramBlocker::default();
    let sn = SortedNeighbourhood { window: 10 };
    let qg_expect = reference::qgram_candidates(&qg, left, right);
    let sn_expect = reference::sorted_candidates(&sn, left, right);
    for &cap in caps {
        threadpool::set_max_threads(Some(cap));
        assert_eq!(
            qg.candidates(left, right),
            qg_expect,
            "qgram diverged at {cap} threads"
        );
        assert_eq!(
            sn.candidates(left, right),
            sn_expect,
            "sorted-neighbourhood diverged at {cap} threads"
        );
    }
    threadpool::set_max_threads(None);
    println!(
        "family parity at {}x{}: qgram {} pairs, sorted {} pairs, caps {caps:?} all bitwise",
        left.len(),
        right.len(),
        qg_expect.len(),
        sn_expect.len()
    );
}

fn run(n: usize, out_path: &str, full: bool) {
    let t_gen = Instant::now();
    let rels = serve_relations(n, n, 0.3, 7);
    println!(
        "blocking workload: {n}x{n} records, {} true matches ({:.1}s to generate)",
        rels.matches.len(),
        t_gen.elapsed().as_secs_f64()
    );
    let blocker = serve_blocker();
    let reps = if full { 1 } else { 3 };

    // --- Sequential reference: the pre-index per-call path. -------------
    let (ref_seconds, expect): (f64, Vec<CandidatePair>) = time_runs(reps, || {
        reference::token_candidates(&blocker, &rels.left, &rels.right)
    });
    println!(
        "sequential reference: {} candidates in {ref_seconds:.2}s",
        expect.len()
    );
    assert!(!expect.is_empty(), "degenerate workload: no candidates");

    // --- Indexed path at each thread cap: cold (build + probe). ---------
    let caps = [1usize, 2, 8];
    let cfg = blocker.required_features();
    let mut cold_seconds = Vec::new();
    for &cap in &caps {
        threadpool::set_max_threads(Some(cap));
        let (secs, got) = time_runs(reps, || blocker.candidates(&rels.left, &rels.right));
        assert_eq!(
            got, expect,
            "indexed path diverged from the reference at {cap} threads"
        );
        println!(
            "indexed cold @ {cap} threads: {secs:.2}s ({:.2}x vs reference), bitwise-identical",
            ref_seconds / secs
        );
        cold_seconds.push(secs);
    }

    // --- Warm path: prebuilt indexes, probe only (pipeline reuse). ------
    let widest = *caps.last().unwrap();
    threadpool::set_max_threads(Some(widest));
    let left_index = RelationIndex::build(&rels.left, &cfg);
    let right_index = RelationIndex::build(&rels.right, &cfg);
    let (probe_seconds, got) = time_runs(reps.max(3), || {
        blocker.candidates_indexed(&left_index, &right_index)
    });
    assert_eq!(got, expect, "probe over prebuilt indexes diverged");
    println!(
        "indexed warm @ {widest} threads (probe only): {probe_seconds:.2}s ({:.2}x vs reference)",
        ref_seconds / probe_seconds
    );
    threadpool::set_max_threads(None);

    let cold_widest = *cold_seconds.last().unwrap();
    let speedup = ref_seconds / cold_widest;
    if full {
        assert!(
            speedup >= 3.0,
            "indexed blocking must be >= 3x the sequential path at {widest} threads, got {speedup:.2}x"
        );
        assert!(
            probe_seconds < cold_widest,
            "probe-only reuse must beat a cold build"
        );
    }

    // --- Other families, bounded scale. ---------------------------------
    let bound = n.min(1_500);
    bounded_family_parity(&rels.left[..bound], &rels.right[..bound], &caps);

    println!("{}", em_obs::report::render_metrics());

    let cold_json: Vec<String> = caps
        .iter()
        .zip(&cold_seconds)
        .map(|(c, s)| format!("{{ \"threads\": {c}, \"seconds\": {s:.3}, \"speedup_vs_reference\": {:.2}, \"bitwise_equal\": true }}", ref_seconds / s))
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"token blocking (serving config) on serve_relations\",\n  \"shape\": {{ \"n_left\": {n}, \"n_right\": {n}, \"match_fraction\": 0.3, \"seed\": 7 }},\n  \"threads\": {},\n  \"blocker\": {{ \"family\": \"token\", \"min_shared\": 2, \"max_token_frequency\": 0.05 }},\n  \"candidates\": {},\n  \"sequential_reference_seconds\": {:.3},\n  \"indexed_cold\": [\n    {}\n  ],\n  \"indexed_probe_only\": {{ \"threads\": {}, \"seconds\": {:.3}, \"speedup_vs_reference\": {:.2}, \"bitwise_equal\": true }},\n  \"family_parity_bounded\": {{ \"n\": {}, \"families\": [\"qgram-default\", \"sorted-w10\"], \"thread_caps\": [1, 2, 8], \"bitwise_equal\": true }}\n}}\n",
        threads_json(),
        expect.len(),
        ref_seconds,
        cold_json.join(",\n    "),
        widest,
        probe_seconds,
        ref_seconds / probe_seconds,
        bound,
    );
    std::fs::write(out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_blocking.json".to_string());
    // Counters feed the block.* profile greps (scripts/profile_serve.sh).
    em_obs::trace::set_capture(true);
    if smoke {
        run(2_000, &out_path, false);
    } else {
        run(100_000, &out_path, true);
    }
}
