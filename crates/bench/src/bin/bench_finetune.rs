//! Fine-tuning training-step benchmark: the seed training loop (clone
//! each example into a scratch `Vec`, collate to the model max, then run
//! the unfused `clip_grad_norm` → value-cloning Adam → `zero_grads` tail)
//! against the fused loop shipped in `em_lm::finetune::train` (zero-copy
//! pad-to-batch-max collation with length bucketing + the arena-backed
//! [`FusedAdam`] whose whole step tail is one blocked parallel pass), on
//! the representative shape — batch 32, seq 128, d_model 256, 2 blocks,
//! 8 heads — over ragged real-tokenizer data with valid lengths spanning
//! roughly 25–80 of the 128-position budget.
//!
//! Both loops drive identical model kernels; the measured difference is
//! exactly the PR's surface: collation copies, pad width, and the
//! optimizer tail. Equivalence is asserted before timing: trimmed logits
//! are bitwise equal to full-pad logits, one identical-composition
//! training step leaves both loops within float tolerance of each other,
//! and a fused step is bitwise identical at 1, 2, and 8 threads.
//!
//! Writes machine-readable results to `BENCH_finetune.json` (or the path
//! in argv[1]); `--smoke` runs a tiny shape once to validate the harness
//! in CI without the full measurement cost.

use em_core::SerializedPair;
use em_lm::config::ModelConfig;
use em_lm::finetune::{train, TrainConfig};
use em_lm::model::{Batch, EncoderClassifier};
use em_lm::tokenizer::{encode_pair, Encoded, HashTokenizer};
use em_nn::{bce_with_logits, clip_grad_norm, threadpool, zero_grads, FusedAdam, Param};
use std::time::Instant;

/// (best, median) wall-clock seconds over `reps` runs (1 warmup run
/// discarded). Best-of is the speedup figure: on a shared host the
/// minimum is the least noisy estimate of true cost.
fn time_it(reps: usize, mut run: impl FnMut()) -> (f64, f64) {
    run(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[0], samples[reps / 2])
}

// ---------------------------------------------------------------------------
// Seed replica: the training-step tail exactly as the seed repository ran
// it — gradient/value clones per step, separate clip and zero passes.
// ---------------------------------------------------------------------------

/// The seed `Adam::step`, verbatim: clones every parameter's values, runs
/// moment updates and the bias-corrected step as two separate passes, and
/// leaves gradients for a dedicated `zero_grads` sweep.
struct SeedAdam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl SeedAdam {
    fn new(lr: f32) -> Self {
        SeedAdam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let grads = p.grad.data();
            // The seed per-step clone (read back by the weight-decay term).
            let values = std::hint::black_box(p.value.data().to_vec());
            for i in 0..m.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            }
            let data = p.value.data_mut();
            for i in 0..m.len() {
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                let mut upd = self.lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += self.lr * self.weight_decay * values[i];
                }
                data[i] -= upd;
            }
        }
    }
}

/// One epoch of the seed training loop: sequential chunks, per-example
/// `Encoded` clones into a scratch `Vec`, full-model-max collation, then
/// the unfused clip → SeedAdam → zero tail. (Under full padding every
/// batch costs the same regardless of composition, so sequential order is
/// cost-equivalent to the seed's shuffled order.)
fn seed_epoch(
    model: &mut EncoderClassifier,
    opt: &mut SeedAdam,
    examples: &[(Encoded, bool)],
    batch_size: usize,
    clip: f32,
) {
    let mut scratch: Vec<Encoded> = Vec::with_capacity(batch_size);
    let mut labels: Vec<bool> = Vec::with_capacity(batch_size);
    for chunk in (0..examples.len()).collect::<Vec<_>>().chunks(batch_size) {
        scratch.clear();
        labels.clear();
        for &i in chunk {
            scratch.push(examples[i].0.clone()); // seed per-example clone
            labels.push(examples[i].1);
        }
        let batch = Batch::collate(&scratch); // full-length padding
        let logits = model.forward_train(&batch);
        let (_, dlogits) = bce_with_logits(&logits, &labels, 1.0);
        model.backward(&dlogits);
        let mut params = model.params_mut();
        clip_grad_norm(&mut params, clip);
        opt.step(&mut params);
        zero_grads(&mut params);
    }
}

// ---------------------------------------------------------------------------

/// Ragged labelled pairs through the real tokenizer: word counts vary so
/// valid lengths span roughly 25–80 of a 128-token budget (proportionally
/// less in smoke mode).
fn ragged_examples(n: usize, seq: usize, vocab: u32) -> Vec<(Encoded, bool)> {
    let tok = HashTokenizer::new(vocab);
    let words = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    ];
    (0..n)
        .map(|i| {
            // Deterministic spread of side lengths; both sides together
            // land the valid length (CLS + left + SEP + right + SEP) in
            // roughly [seq/5, 5·seq/8].
            let base = seq / 16;
            let spread = (i * 7919) % (seq / 3);
            let llen = (base + spread / 2).max(1);
            let rlen = (base + spread - spread / 2).max(1);
            let side = |len: usize, salt: usize| -> String {
                (0..len)
                    .map(|j| words[(i * 31 + salt * 17 + j) % words.len()])
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let pair = SerializedPair {
                left: side(llen, 0).into(),
                right: side(rlen, 1).into(),
            };
            (encode_pair(&tok, &pair, seq), i % 2 == 0)
        })
        .collect()
}

/// The `threads` JSON block shared by all bench bins: how the budget was
/// derived and what a reservation is actually granted right now.
fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One fused training step over `chunk` (the `em_lm::finetune` internals,
/// minus the epoch loop), for the equivalence asserts.
fn fused_step(
    model: &mut EncoderClassifier,
    opt: &mut FusedAdam,
    examples: &[(Encoded, bool)],
    chunk: &[usize],
    clip: f32,
) {
    let mut batch = Batch::empty();
    batch.collate_into(examples, chunk);
    let labels: Vec<bool> = chunk.iter().map(|&i| examples[i].1).collect();
    let logits = model.forward_train(&batch);
    let (_, dlogits) = bce_with_logits(&logits, &labels, 1.0);
    model.backward(&dlogits);
    opt.step(&mut model.params_mut(), Some(clip));
}

/// Trimmed tokens per bucketed epoch, computed from the deterministic
/// sort-then-chunk schedule (batch maxes depend only on the sorted length
/// multiset, not on the shuffles): Σ over batches of `len · max_valid`.
fn bucketed_tokens(valid: &mut [usize], batch_size: usize, full: usize) -> (u64, u64) {
    valid.sort_unstable();
    let (mut tokens, mut saved) = (0u64, 0u64);
    for chunk in valid.chunks(batch_size) {
        let max = *chunk.last().expect("chunks are nonempty").max(&1);
        tokens += (chunk.len() * max) as u64;
        saved += (chunk.len() * (full - max)) as u64;
    }
    (tokens, saved)
}

#[allow(clippy::too_many_arguments)]
fn run(
    batch_size: usize,
    seq: usize,
    dim: usize,
    layers: usize,
    heads: usize,
    n_examples: usize,
    reps: usize,
    out_path: &str,
) {
    let vocab = 2048u32;
    let config = ModelConfig {
        vocab,
        d_model: dim,
        n_layers: layers,
        n_heads: heads,
        ff_mult: 4,
        max_seq: seq,
        dropout: 0.0,
        claimed_params_millions: 10.0,
    };
    let examples = ragged_examples(n_examples, seq, vocab);
    let encoded: Vec<Encoded> = examples.iter().map(|(e, _)| e.clone()).collect();
    let mut valid: Vec<usize> = encoded
        .iter()
        .map(|e| e.mask.iter().rposition(|&m| m).map_or(0, |p| p + 1))
        .collect();
    let clip = 1.0f32;
    let steps_per_epoch = n_examples.div_ceil(batch_size);

    // --- Equivalence asserts, before any timing. -------------------------
    // (1) Trimmed collation produces bitwise identical logits to full-pad.
    let probe_model = EncoderClassifier::new(config, 7);
    let chunk: Vec<usize> = (0..batch_size.min(n_examples)).collect();
    let full = Batch::collate(&encoded[..chunk.len()]);
    let mut trimmed = Batch::empty();
    trimmed.collate_into(&examples, &chunk);
    assert!(trimmed.seq < seq, "ragged data must actually trim");
    assert_eq!(
        bits(&probe_model.forward(&full)),
        bits(&probe_model.forward(&trimmed)),
        "trimmed logits diverged from full padding"
    );
    // (2) One identical-composition step: seed loop vs fused loop end up
    // within float tolerance (the fused blocked grad norm may differ from
    // the seed's unfused sum in the last bit, so bitwise is not expected).
    let mut m_seed = EncoderClassifier::new(config, 7);
    let mut m_fused = EncoderClassifier::new(config, 7);
    let one = &examples[..chunk.len()];
    let mut opt_s = SeedAdam::new(1e-3);
    seed_epoch(&mut m_seed, &mut opt_s, one, batch_size, clip);
    let mut opt_f = FusedAdam::new(1e-3);
    fused_step(&mut m_fused, &mut opt_f, &examples, &chunk, clip);
    let probe = &trimmed;
    let step_diff = m_seed
        .forward(probe)
        .iter()
        .zip(m_fused.forward(probe))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        step_diff <= 1e-4,
        "fused training step diverged from seed step by {step_diff}"
    );
    // (3) A fused step is bitwise identical at 1, 2, and 8 threads.
    let step_at = |cap: usize| {
        threadpool::set_max_threads(Some(cap));
        let mut m = EncoderClassifier::new(config, 7);
        let mut opt = FusedAdam::new(1e-3);
        fused_step(&mut m, &mut opt, &examples, &chunk, clip);
        threadpool::set_max_threads(None);
        bits(&m.forward(probe))
    };
    let want = step_at(1);
    for cap in [2usize, 8] {
        assert_eq!(
            want,
            step_at(cap),
            "fused step not bitwise identical at {cap} thread(s)"
        );
    }

    // --- Seed loop (full budget: the model kernels are shared; only the
    // collation and optimizer tail differ). -------------------------------
    let cfg = TrainConfig {
        epochs: 1,
        batch_size,
        lr: 1e-3,
        pos_weight: 1.0,
        clip,
        seed: 13,
    };
    let mut model_s = EncoderClassifier::new(config, 21);
    let mut opt_s = SeedAdam::new(cfg.lr);
    let (t_seed, t_seed_med) = time_it(reps, || {
        seed_epoch(&mut model_s, &mut opt_s, &examples, batch_size, clip);
    });

    // --- Fused loop, 1 thread. -------------------------------------------
    threadpool::set_max_threads(Some(1));
    let mut model_f1 = EncoderClassifier::new(config, 21);
    let (t_fused1, t_fused1_med) = time_it(reps, || {
        let _ = train(&mut model_f1, &examples, &cfg);
    });

    // --- Fused loop, full budget. ----------------------------------------
    threadpool::set_max_threads(None);
    let mut model_fp = EncoderClassifier::new(config, 21);
    let (t_fusedp, t_fusedp_med) = time_it(reps, || {
        let _ = train(&mut model_fp, &examples, &cfg);
    });

    let budget = threadpool::max_threads();
    let speedup_1t = t_seed / t_fused1;
    let speedup_par = t_seed / t_fusedp;
    let (tokens, saved) = bucketed_tokens(&mut valid, batch_size, seq);
    let full_tokens = (n_examples * seq) as u64;
    let tokens_per_sec = tokens as f64 / t_fusedp;
    println!(
        "fine-tune epoch ({steps_per_epoch} steps), batch {batch_size} seq {seq} d_model {dim} layers {layers} heads {heads}, best/median of {reps}, budget {budget} thread(s)"
    );
    let row_fmt = |name: &str, best: f64, med: f64| {
        println!(
            "  {name:<26}: best {:>8.2} ms/step, median {:>8.2} ms/step  [{:.2}x vs seed]",
            best * 1e3 / steps_per_epoch as f64,
            med * 1e3 / steps_per_epoch as f64,
            t_seed / best
        );
    };
    row_fmt("seed training loop", t_seed, t_seed_med);
    row_fmt("fused, 1 thread", t_fused1, t_fused1_med);
    row_fmt(&format!("fused, {budget} thread(s)"), t_fusedp, t_fusedp_med);
    println!(
        "  trimmed tokens/epoch {tokens} of {full_tokens} ({saved} pad tokens saved), {:.0} tokens/s fused-parallel",
        tokens_per_sec
    );

    let entry = |best: f64, med: f64| {
        format!(
            "{{ \"best_seconds\": {best:.6}, \"median_seconds\": {med:.6}, \"best_seconds_per_step\": {:.6} }}",
            best / steps_per_epoch as f64
        )
    };
    let json = format!(
        "{{\n  \"workload\": \"fine-tune training epoch (collate + forward + backward + optimizer step)\",\n  \"shape\": {{ \"batch\": {batch_size}, \"seq\": {seq}, \"d_model\": {dim}, \"layers\": {layers}, \"heads\": {heads}, \"examples\": {n_examples}, \"steps_per_epoch\": {steps_per_epoch} }},\n  \"reps\": {reps},\n  \"threads\": {},\n  \"seed_loop\": {},\n  \"fused_1_thread\": {},\n  \"fused_parallel\": {},\n  \"speedup_fused_1_thread_vs_seed\": {:.3},\n  \"speedup_fused_parallel_vs_seed\": {:.3},\n  \"trimmed_tokens_per_epoch\": {tokens},\n  \"full_pad_tokens_per_epoch\": {full_tokens},\n  \"padded_tokens_saved_per_epoch\": {saved},\n  \"fused_parallel_tokens_per_second\": {:.0},\n  \"max_abs_diff_one_step_seed_vs_fused\": {:.3e},\n  \"trim_bitwise_equal_full_pad\": true,\n  \"fused_step_bitwise_equal_at_1_2_8_threads\": true\n}}\n",
        threads_json(),
        entry(t_seed, t_seed_med),
        entry(t_fused1, t_fused1_med),
        entry(t_fusedp, t_fusedp_med),
        speedup_1t,
        speedup_par,
        tokens_per_sec,
        step_diff,
    );
    std::fs::write(out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_finetune.json".to_string());
    if smoke {
        // Tiny shape, 2 reps: validates harness + equivalence asserts in CI.
        run(8, 32, 32, 1, 2, 24, 2, &out_path);
    } else {
        run(32, 128, 256, 2, 8, 128, 3, &out_path);
    }
}
