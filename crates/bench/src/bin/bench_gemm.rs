//! GEMM micro-benchmark: seed-naive vs current reference vs cache-blocked
//! vs blocked + threads, on the acceptance shape 256×256×1024 (m×n×k).
//!
//! The primary baseline is the *seed* `Tensor::matmul` loop (ikj order
//! with the data-dependent `a == 0.0` skip and unfused multiply-add),
//! reproduced verbatim below — that is the kernel this PR replaced. The
//! current [`em_nn::reference`] kernels (branch-free, fused multiply-add)
//! are timed as well since they are the bitwise ground truth the blocked
//! kernel is verified against.
//!
//! Writes machine-readable results to `BENCH_gemm.json` in the current
//! directory (run from the repo root) and a human-readable table to
//! stdout. Pass a different output path as the first argument.

use em_nn::{gemm, reference, threadpool};
use std::time::Instant;

const M: usize = 256;
const N: usize = 256;
const K: usize = 1024;
const REPS: usize = 9;

/// The seed repository's `Tensor::matmul` inner loops, verbatim.
fn seed_naive_matmul(a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..M {
        let arow = &a[i * K..(i + 1) * K];
        let orow = &mut c[i * N..(i + 1) * N];
        for (p, &av) in arow.iter().enumerate().take(K) {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * N..(p + 1) * N];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 2.0
        })
        .collect()
}

/// (best, median) wall-clock seconds over `REPS` runs (1 warmup run
/// discarded). The best-of figure is the one used for speedup claims:
/// on a shared/virtualized host the minimum is the least noisy estimate
/// of the kernel's true cost.
fn time_it(mut run: impl FnMut()) -> (f64, f64) {
    run(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[0], samples[REPS / 2])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());
    let a = fill(M * K, 1);
    let b = fill(K * N, 2);
    let mut c = vec![0.0f32; M * N];
    let flops = 2.0 * M as f64 * N as f64 * K as f64;
    let threads = threadpool::max_threads();

    let (t_seed, t_seed_med) = time_it(|| {
        c.iter_mut().for_each(|v| *v = 0.0);
        seed_naive_matmul(&a, &b, &mut c);
        std::hint::black_box(&c);
    });

    let (t_ref, t_ref_med) = time_it(|| {
        c.iter_mut().for_each(|v| *v = 0.0);
        reference::matmul(M, K, N, &a, &b, &mut c);
        std::hint::black_box(&c);
    });
    let ref_out = c.clone();

    threadpool::set_max_threads(Some(1));
    let (t_blocked, t_blocked_med) = time_it(|| {
        gemm::gemm_blocked(M, K, N, &a, false, &b, false, &mut c);
        std::hint::black_box(&c);
    });
    assert!(
        ref_out.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()),
        "blocked kernel diverged from reference"
    );

    threadpool::set_max_threads(None);
    let (t_par, t_par_med) = time_it(|| {
        gemm::gemm_blocked(M, K, N, &a, false, &b, false, &mut c);
        std::hint::black_box(&c);
    });
    assert!(
        ref_out.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()),
        "parallel kernel diverged from reference"
    );

    let gflops = |t: f64| flops / t / 1e9;
    let row = |name: &str, best: f64, med: f64| {
        println!(
            "  {name:<22}: best {:>8.2} ms ({:>6.1} GFLOP/s), median {:>8.2} ms  [{:.2}x vs seed]",
            best * 1e3,
            gflops(best),
            med * 1e3,
            t_seed / best
        );
    };
    println!("GEMM {M}x{N}x{K} f32, best/median of {REPS}, {threads} thread(s) available");
    row("seed naive matmul", t_seed, t_seed_med);
    row("reference (fma)", t_ref, t_ref_med);
    row("blocked, 1 thread", t_blocked, t_blocked_med);
    row(&format!("blocked, {threads} thread(s)"), t_par, t_par_med);

    let entry = |best: f64, med: f64| {
        format!(
            "{{ \"best_seconds\": {best:.6}, \"median_seconds\": {med:.6}, \"best_gflops\": {:.3} }}",
            gflops(best)
        )
    };
    // The shared bench `threads` block: how the budget was derived
    // (EM_NUM_THREADS / available_parallelism), what is effective, and
    // what a maximal reservation is actually granted right now.
    let snap = threadpool::budget_snapshot();
    let threads_block = format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        snap.env_threads
            .map_or_else(|| "null".to_string(), |v| v.to_string()),
        snap.available_parallelism,
        snap.effective,
        snap.probe_grant
    );
    let json = format!(
        "{{\n  \"shape\": {{ \"m\": {M}, \"n\": {N}, \"k\": {K} }},\n  \"flops_per_call\": {flops},\n  \"reps\": {REPS},\n  \"threads\": {threads_block},\n  \"seed_naive\": {},\n  \"reference_fma\": {},\n  \"blocked_1_thread\": {},\n  \"blocked_parallel\": {},\n  \"speedup_blocked_vs_seed_naive\": {:.3},\n  \"speedup_parallel_vs_seed_naive\": {:.3},\n  \"speedup_blocked_vs_reference\": {:.3}\n}}\n",
        entry(t_seed, t_seed_med),
        entry(t_ref, t_ref_med),
        entry(t_blocked, t_blocked_med),
        entry(t_par, t_par_med),
        t_seed / t_blocked,
        t_seed / t_par,
        t_ref / t_blocked,
    );
    std::fs::write(&out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}
