//! Serving-pipeline benchmark: two raw catalogs through blocking and the
//! confidence-gated matcher cascade of `em-serve`.
//!
//! The workload is `em_datagen::serve_relations` — two relations with a
//! known match mapping, noisy right-side presentations, and near-universal
//! filler tokens that exercise the blockers' stop cuts. The cascade is the
//! production shape from DESIGN.md §10:
//!
//! 1. **StringSim** (free) answers the obvious extremes;
//! 2. a **fine-tuned SLM** (priced at the paper's self-hosting formula)
//!    answers the escalated middle band;
//! 3. a **hosted LLM tier** (GPT-4 price) answers only the pairs the SLM
//!    itself is unsure about, through the resilient client.
//!
//! Both the SLM and the LLM tier are trained on a *differently seeded*
//! relations instance, so the serving relations stay unseen.
//!
//! The cascade's SLM tier runs the serve inference fast path: int8 GEMMs
//! plus length-bucketed batching, scheduled by the pipelined micro-batch
//! executor. Asserted before anything is reported:
//!
//! * the pipelined executor reproduces the barrier executor **bitwise**
//!   (scores, matches, per-stage counts and bills) — parity is proven on
//!   this very workload before either schedule's timing is reported;
//! * the warm (second) run answers 100% from the score cache with
//!   bitwise-identical scores and zero billed tokens;
//! * the cascade costs **less** than running the fine-tuned SLM over every
//!   candidate, at **equal-or-better** end-to-end F1 (blocker misses count
//!   as false negatives for both);
//! * under `--smoke`, int8 serving flips < 0.5% of match decisions vs the
//!   same SLM served in f32.
//!
//! Writes machine-readable results to `BENCH_serve.json` (or the path in
//! argv[1]); `--smoke` runs 2k×2k to validate the harness in CI.

use em_blocking::{Blocker, CandidatePair, TokenBlocker};
use em_core::{SerializedPair, Serializer};
use em_cost::estimate::self_host_cost_per_1k;
use em_cost::pricing::openai;
use em_datagen::{labeled_pairs, serve_relations, ServeRelations};
use em_lm::config::{LlmTier, ModelConfig};
use em_lm::model::EncoderClassifier;
use em_lm::tokenizer::{encode_pair, Encoded, HashTokenizer};
use em_lm::zoo::{pretrain_tier, PretrainCorpus};
use em_lm::{predict_proba, train, InferencePrecision, TrainConfig};
use em_matchers::{DemoStrategy, MatchGpt, StringSim};
use em_nn::threadpool;
use em_serve::{
    Executor, FrozenSlm, RecordStore, ServeConfig, ServePipeline, ServeReport, Stage,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// The serving blocker (also used to mine hard training negatives).
fn serve_blocker() -> TokenBlocker {
    TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    }
}

/// Labeled pairs matched to the distribution the cascade actually scores:
/// positives are the true matches, negatives are *hard* — non-matching
/// candidates that survive blocking (so they share identity tokens) —
/// topped up with random pairs from `labeled_pairs`. Training on random
/// negatives alone leaves every stage over-confident exactly where the
/// blocker concentrates the difficulty.
fn hard_labeled_pairs(
    rels: &ServeRelations,
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> Vec<(SerializedPair, bool)> {
    let ser = Serializer::identity(rels.arity());
    let truth: HashSet<CandidatePair> = rels.matches.iter().copied().collect();
    let mut hard: Vec<CandidatePair> = serve_blocker()
        .candidates(&rels.left, &rels.right)
        .into_iter()
        .filter(|c| !truth.contains(c))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6861_7264);
    hard.shuffle(&mut rng);
    hard.truncate(n_neg);
    let mut out = labeled_pairs(rels, n_pos, n_neg - hard.len(), seed);
    out.extend(hard.into_iter().map(|(i, j)| {
        (
            SerializedPair {
                left: ser.record(&rels.left[i]).into(),
                right: ser.record(&rels.right[j]).into(),
            },
            false,
        )
    }));
    out.shuffle(&mut rng);
    out
}

/// The `threads` JSON block shared by all bench bins.
fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

/// Precision/recall/F1 of predicted matches against the full ground truth
/// (pairs the blocker dropped count as false negatives).
fn prf(matches: &[CandidatePair], truth: &HashSet<CandidatePair>) -> (f64, f64, f64) {
    let tp = matches.iter().filter(|m| truth.contains(m)).count();
    let p = tp as f64 / matches.len().max(1) as f64;
    let r = tp as f64 / truth.len().max(1) as f64;
    let f1 = if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    };
    (p, r, f1)
}

/// Fine-tunes the cascade's SLM on a separately-seeded relations instance
/// and sanity-checks it on held-out pairs before it is allowed to serve.
fn train_slm(seed: u64) -> (EncoderClassifier, HashTokenizer) {
    let cfg = ModelConfig {
        vocab: 4096,
        d_model: 64,
        n_layers: 2,
        n_heads: 4,
        ff_mult: 2,
        max_seq: 48,
        dropout: 0.0,
        claimed_params_millions: 0.5,
    };
    let tokenizer = HashTokenizer::new(cfg.vocab);
    let rels = serve_relations(5_000, 5_000, 0.6, 1_007);
    let train_pairs = hard_labeled_pairs(&rels, 1_500, 1_500, 11);
    let holdout = hard_labeled_pairs(&rels, 400, 400, 97);
    let encode = |pairs: &[(SerializedPair, bool)]| -> Vec<(Encoded, bool)> {
        pairs
            .iter()
            .map(|(p, y)| (encode_pair(&tokenizer, p, cfg.max_seq), *y))
            .collect()
    };
    let mut model = EncoderClassifier::new(cfg, seed);
    let t0 = Instant::now();
    let report = train(
        &mut model,
        &encode(&train_pairs),
        &TrainConfig {
            epochs: 3,
            seed,
            ..Default::default()
        },
    );
    let held: Vec<(Encoded, bool)> = encode(&holdout);
    let encoded: Vec<Encoded> = held.iter().map(|(e, _)| e.clone()).collect();
    let scores = predict_proba(&model, &encoded, 64);
    let correct = scores
        .iter()
        .zip(&held)
        .filter(|(s, (_, y))| (**s >= 0.5) == *y)
        .count();
    let acc = correct as f64 / held.len() as f64;
    println!(
        "SLM fine-tune: {} examples, {} steps, final loss {:.4}, holdout accuracy {:.3} ({:.1}s)",
        train_pairs.len(),
        report.steps,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        acc,
        t0.elapsed().as_secs_f64()
    );
    assert!(
        acc > 0.8,
        "fine-tuned SLM failed its holdout gate: accuracy {acc:.3}"
    );
    (model, tokenizer)
}

fn stage_json(r: &em_serve::StageReport) -> String {
    format!(
        "{{ \"name\": \"{}\", \"pairs_in\": {}, \"scored\": {}, \"cache_hits\": {}, \"escalated\": {}, \"escalation_fraction\": {:.4}, \"cache_hit_rate\": {:.4}, \"pairs_per_sec\": {:.0}, \"tokens\": {}, \"usd\": {:.6} }}",
        r.name,
        r.pairs_in,
        r.scored,
        r.cache_hits,
        r.escalated,
        r.escalation_fraction(),
        r.cache_hit_rate(),
        r.pairs_per_sec(),
        r.tokens,
        r.bill.usd_total()
    )
}

fn print_stages(label: &str, report: &ServeReport) {
    println!("{label}:");
    for s in &report.stages {
        println!(
            "  {:<10} in {:>8}  scored {:>8}  cached {:>8}  escalated {:>7} ({:>5.1}%)  {:>9.0} pairs/s  ${:.4}{}",
            s.name,
            s.pairs_in,
            s.scored,
            s.cache_hits,
            s.escalated,
            s.escalation_fraction() * 100.0,
            s.pairs_per_sec(),
            s.bill.usd_total(),
            if s.degraded { "  [degraded]" } else { "" },
        );
    }
}

/// Bitwise parity between two cold runs of the same cascade under
/// different executors: scores, matches, and every per-stage count and
/// bill must agree exactly — only `seconds` may differ (the pipelined
/// executor reports busy time). Asserted *before* any timing is reported
/// so the speed claims are claims about the same computation.
fn assert_executor_parity(barrier: &ServeReport, pipelined: &ServeReport) {
    assert_eq!(barrier.candidates, pipelined.candidates);
    assert_eq!(barrier.scores.len(), pipelined.scores.len());
    for (i, (a, b)) in barrier.scores.iter().zip(&pipelined.scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "executor parity: score {i} diverged"
        );
    }
    assert_eq!(barrier.matches, pipelined.matches);
    assert_eq!(barrier.stages.len(), pipelined.stages.len());
    for (a, b) in barrier.stages.iter().zip(&pipelined.stages) {
        assert_eq!(a.scored, b.scored, "{}: scored diverged", a.name);
        assert_eq!(a.cache_hits, b.cache_hits, "{}: hits diverged", a.name);
        assert_eq!(a.escalated, b.escalated, "{}: escalation diverged", a.name);
        assert_eq!(a.tokens, b.tokens, "{}: billed tokens diverged", a.name);
        assert_eq!(
            a.bill.usd_total().to_bits(),
            b.bill.usd_total().to_bits(),
            "{}: bill diverged",
            a.name
        );
    }
}

fn run(n: usize, out_path: &str, smoke: bool) {
    // --- Workload: the serving relations stay unseen by every stage. ----
    let t_gen = Instant::now();
    let rels = serve_relations(n, n, 0.3, 7);
    let left = RecordStore::new(rels.left.clone());
    let right = RecordStore::new(rels.right.clone());
    let truth: HashSet<CandidatePair> = rels.matches.iter().copied().collect();
    println!(
        "serve workload: {n}x{n} records, {} true matches ({:.1}s to generate)",
        truth.len(),
        t_gen.elapsed().as_secs_f64()
    );

    // --- Stage models, trained on a different seed. ---------------------
    let (slm, tokenizer) = train_slm(17);
    let train_rels = serve_relations(5_000, 5_000, 0.6, 1_007);
    let corpus = PretrainCorpus {
        pairs: hard_labeled_pairs(&train_rels, 2_500, 2_500, 23),
    };
    let t_tier = Instant::now();
    let gpt = Arc::new(pretrain_tier(LlmTier::Gpt4, &corpus, 5));
    println!(
        "hosted tier: {} pretrained in {:.1}s",
        LlmTier::Gpt4.label(),
        t_tier.elapsed().as_secs_f64()
    );

    // The paper's self-hosting price for the SLM; GPT-4 list price for the
    // hosted tier. StringSim is free.
    let slm_price = self_host_cost_per_1k(2_000.0);
    let frozen_slm = |precision: InferencePrecision| {
        FrozenSlm::new("slm-64d", slm.clone(), tokenizer.clone()).with_precision(precision)
    };
    let cascade_stages = || -> Vec<Stage> {
        vec![
            Stage::new("strsim", Box::new(StringSim::new())).with_margin(0.6),
            Stage::new("slm", Box::new(frozen_slm(InferencePrecision::Int8)))
                .with_margin(0.25)
                .priced(slm_price),
            Stage::new(
                "gpt4",
                Box::new(MatchGpt::with_resilience(
                    gpt.clone(),
                    DemoStrategy::None,
                    None,
                    Box::new(StringSim::new()),
                )),
            )
            .priced(openai::GPT4_PER_1K),
        ]
    };

    // --- Executor A/B: the same cascade under the barrier schedule, on a
    // fresh pipeline, proves the pipelined executor is timing an identical
    // computation before any speed numbers are reported.
    let mut barrier_pipe = ServePipeline::new(Box::new(serve_blocker()), cascade_stages())
        .unwrap()
        .with_config(ServeConfig {
            executor: Executor::Barrier,
            ..ServeConfig::default()
        });
    let tb = Instant::now();
    let barrier = barrier_pipe.run(&left, &right).unwrap();
    let barrier_seconds = tb.elapsed().as_secs_f64();
    drop(barrier_pipe);

    // --- Cascade (pipelined, the default): cold, then warm from the
    // score cache. -------------------------------------------------------
    let mut pipe = ServePipeline::new(Box::new(serve_blocker()), cascade_stages()).unwrap();
    let t0 = Instant::now();
    let cold = pipe.run(&left, &right).unwrap();
    let cold_seconds = t0.elapsed().as_secs_f64();
    assert_executor_parity(&barrier, &cold);
    println!(
        "executor A/B: barrier {barrier_seconds:.2}s vs pipelined {cold_seconds:.2}s cold (bitwise-identical results)"
    );
    // Stage throughput is read off the barrier schedule: stages run one at
    // a time there, so a stage's wall-clock is its own compute. Under the
    // pipelined schedule a stage's wall-clock also absorbs time-slices
    // stolen by concurrently-running neighbour stages (this host is a
    // single core), which under-reports throughput; the overlap win shows
    // up in the A/B cold-run comparison instead. Parity above guarantees
    // both schedules timed the identical computation.
    let slm_pairs_per_sec = barrier.stages.get(1).map_or(0.0, |s| s.pairs_per_sec());
    println!(
        "slm stage (barrier schedule): {} pairs at {slm_pairs_per_sec:.0} pairs/s",
        barrier.stages.get(1).map_or(0, |s| s.pairs_in)
    );
    drop(barrier);
    let t1 = Instant::now();
    let warm = pipe.run(&left, &right).unwrap();
    let warm_seconds = t1.elapsed().as_secs_f64();

    // Warm-run invariants: the cache answers everything, bitwise, and the
    // blocking state (indexes, candidates, serialized views) is reused —
    // the warm run must not re-tokenize, re-index, or re-probe.
    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "cache must round-trip bitwise");
    }
    for s in &warm.stages {
        assert_eq!(s.scored, 0, "warm {}: matcher was invoked", s.name);
        assert_eq!(s.cache_hits, s.pairs_in, "warm {}: cache misses", s.name);
        assert_eq!(s.tokens, 0, "warm {}: cache hits billed tokens", s.name);
    }
    assert_eq!(cold.matches, warm.matches);
    assert!(
        !cold.blocking_reused,
        "first run has no blocking state to reuse"
    );
    assert!(
        warm.blocking_reused,
        "unchanged stores must reuse the cached candidate set"
    );
    assert!(
        warm_seconds < (cold_seconds / 5.0).max(0.5),
        "warm run ({warm_seconds:.2}s) must be at least 5x faster than cold ({cold_seconds:.2}s)"
    );

    // Blocking recall against the full truth (upper-bounds cascade recall).
    let cand_set: HashSet<CandidatePair> = cold.pairs.iter().copied().collect();
    let blocking_recall =
        truth.iter().filter(|m| cand_set.contains(m)).count() as f64 / truth.len() as f64;
    assert!(
        blocking_recall > 0.85,
        "blocking recall degenerated: {blocking_recall:.3}"
    );

    // --- Baseline: the fine-tuned SLM over every candidate, served in
    // f32 (the pre-fast-path reference the cost/quality claims compare
    // against). ----------------------------------------------------------
    let mut base_pipe = ServePipeline::new(
        Box::new(serve_blocker()),
        vec![Stage::new("slm-all", Box::new(frozen_slm(InferencePrecision::Full))).priced(slm_price)],
    )
    .unwrap();
    let t2 = Instant::now();
    let baseline = base_pipe.run(&left, &right).unwrap();
    let baseline_seconds = t2.elapsed().as_secs_f64();

    // --- Smoke gate: int8 serving must flip < 0.5% of the f32 decisions.
    // Scored on the identical candidate list (same blocker, same stores),
    // so the symmetric difference of match decisions *is* the flip set.
    let mut int8_flip_rate = f64::NAN;
    if smoke {
        let mut int8_pipe = ServePipeline::new(
            Box::new(serve_blocker()),
            vec![Stage::new("slm-all", Box::new(frozen_slm(InferencePrecision::Int8)))
                .priced(slm_price)],
        )
        .unwrap();
        let int8 = int8_pipe.run(&left, &right).unwrap();
        assert_eq!(int8.pairs, baseline.pairs, "flip-rate runs diverged on candidates");
        let flips = baseline
            .scores
            .iter()
            .zip(&int8.scores)
            .filter(|(f32_s, int8_s)| (**f32_s >= 0.5) != (**int8_s >= 0.5))
            .count();
        int8_flip_rate = flips as f64 / baseline.scores.len().max(1) as f64;
        println!(
            "int8 serve flip rate vs f32: {flips}/{} decisions ({:.4}%)",
            baseline.scores.len(),
            int8_flip_rate * 100.0
        );
        assert!(
            int8_flip_rate < 0.005,
            "int8 serving flipped {:.4}% of decisions (gate: < 0.5%)",
            int8_flip_rate * 100.0
        );
    }

    let (p, r, f1) = prf(&cold.matches, &truth);
    let (bp, br, bf1) = prf(&baseline.matches, &truth);
    let cascade_usd = cold.total_usd();
    let baseline_usd = baseline.total_usd();

    println!(
        "blocking: {} candidates, reduction ratio {:.4}, recall {:.3}, {:.2}s",
        cold.candidates, cold.reduction_ratio, blocking_recall, cold.blocking_seconds
    );
    print_stages("cascade (cold)", &cold);
    print_stages("cascade (warm, all cache)", &warm);
    print_stages("baseline (SLM on all candidates)", &baseline);
    println!(
        "cascade : P {p:.3} R {r:.3} F1 {f1:.3}  ${cascade_usd:.4}  ({cold_seconds:.1}s cold, {warm_seconds:.1}s warm)"
    );
    println!(
        "baseline: P {bp:.3} R {br:.3} F1 {bf1:.3}  ${baseline_usd:.4}  ({baseline_seconds:.1}s)"
    );

    // --- The headline claims, asserted. ---------------------------------
    assert!(
        cascade_usd < baseline_usd,
        "cascade (${cascade_usd:.4}) must undercut SLM-on-all (${baseline_usd:.4})"
    );
    assert!(
        f1 >= bf1,
        "cascade F1 {f1:.4} fell below the SLM-on-all baseline {bf1:.4}"
    );

    println!("{}", em_obs::report::render_metrics());

    let stages_cold: Vec<String> = cold.stages.iter().map(stage_json).collect();
    let stages_base: Vec<String> = baseline.stages.iter().map(stage_json).collect();
    // Process-cumulative fast-path counters (every run in this bench adds
    // to them); nonzero proves the bucketed collation actually engaged.
    let pad_saved = em_obs::metrics::counter("serve.bucket_pad_saved").get();
    let overlap_busy = em_obs::metrics::counter("serve.overlap_busy").get();
    let flip_json = if int8_flip_rate.is_nan() {
        "null".to_string()
    } else {
        format!("{int8_flip_rate:.6}")
    };
    let json = format!(
        "{{\n  \"workload\": \"serving pipeline (blocking -> confidence-gated cascade) on serve_relations\",\n  \"shape\": {{ \"n_left\": {n}, \"n_right\": {n}, \"match_fraction\": 0.3, \"truth_pairs\": {}, \"seed\": 7 }},\n  \"threads\": {},\n  \"blocking\": {{ \"candidates\": {}, \"reduction_ratio\": {:.6}, \"recall\": {:.4}, \"seconds\": {:.3} }},\n  \"fast_path\": {{ \"slm_precision\": \"int8\", \"slm_pairs_per_sec\": {:.0}, \"bucket_pad_saved_tokens\": {pad_saved}, \"overlap_busy_transitions\": {overlap_busy}, \"int8_flip_rate_vs_f32\": {flip_json} }},\n  \"executor_ab\": {{ \"barrier_cold_seconds\": {barrier_seconds:.3}, \"pipelined_cold_seconds\": {cold_seconds:.3}, \"parity_bitwise\": true }},\n  \"cascade_cold\": {{ \"seconds\": {:.3}, \"usd\": {:.6}, \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4}, \"stages\": [\n    {}\n  ] }},\n  \"cascade_warm\": {{ \"seconds\": {:.3}, \"cache_hit_rate\": 1.0, \"scores_bitwise_equal_cold\": true, \"blocking_reused\": true, \"speedup_vs_cold\": {:.1}, \"usd\": {:.6} }},\n  \"baseline_slm_on_all\": {{ \"seconds\": {:.3}, \"usd\": {:.6}, \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4}, \"stages\": [\n    {}\n  ] }},\n  \"prices_usd_per_1k\": {{ \"strsim\": 0.0, \"slm_self_host\": {:.6}, \"gpt4\": {:.6} }},\n  \"cascade_cost_saving_vs_baseline\": {:.4},\n  \"cascade_f1_minus_baseline_f1\": {:.4}\n}}\n",
        truth.len(),
        threads_json(),
        cold.candidates,
        cold.reduction_ratio,
        blocking_recall,
        cold.blocking_seconds,
        slm_pairs_per_sec,
        cold_seconds,
        cascade_usd,
        p,
        r,
        f1,
        stages_cold.join(",\n    "),
        warm_seconds,
        cold_seconds / warm_seconds.max(1e-9),
        warm.total_usd(),
        baseline_seconds,
        baseline_usd,
        bp,
        br,
        bf1,
        stages_base.join(",\n    "),
        slm_price,
        openai::GPT4_PER_1K,
        1.0 - cascade_usd / baseline_usd,
        f1 - bf1,
    );
    std::fs::write(out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Counters feed the serve.* profile greps (scripts/profile_serve.sh).
    em_obs::trace::set_capture(true);
    if smoke {
        run(2_000, &out_path, true);
    } else {
        run(100_000, &out_path, false);
    }
}
