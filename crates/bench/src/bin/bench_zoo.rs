//! Zoo-scoring inference benchmark: the seed per-pair full-recompute path
//! (`score_batch_full_recompute`: every prompt re-tokenizes and re-encodes
//! the demonstration prefix, full-length collation) against the shipped
//! inference path (`score_batch`: per-(model, demo-set, template)
//! [`em_lm::PrefixCache`] encodes the demo prefix once, suffixes collate
//! to the group max) and against the same cached path with the int8
//! inference GEMM enabled (`set_precision(Int8)`: per-column symmetric
//! weight quantization, i32 accumulation, VNNI microkernel).
//!
//! The representative shape: batch 96 pairs, 4 demonstrations whose
//! rendered prefix is 81 tokens of a ~101-token prompt (well over half),
//! d_model 512, 2 blocks, 8 heads — inference-bound GEMM work.
//!
//! Equivalence is asserted before timing: cached f32 scores are bitwise
//! equal to full recompute, and int8 scores drift by at most ε per pair
//! (the flip-rate gate runs on a *trained* tier in
//! `crates/lm/tests/prefix_equivalence.rs`; an untrained bench model
//! clusters scores at 0.5 where flips mean nothing).
//!
//! Writes machine-readable results to `BENCH_zoo.json` (or the path in
//! argv[1]); `--smoke` runs a tiny shape once to validate the harness in
//! CI without the full measurement cost.

use em_core::SerializedPair;
use em_lm::config::{LlmTier, ModelConfig};
use em_lm::model::EncoderClassifier;
use em_lm::prompt::{Demonstration, PromptBudget};
use em_lm::tokenizer::HashTokenizer;
use em_lm::zoo::PretrainedLlm;
use em_nn::qgemm::InferencePrecision;
use em_nn::threadpool;
use std::time::Instant;

/// (best, median) wall-clock seconds over `reps` runs (1 warmup run
/// discarded). Best-of is the speedup figure: on a shared host the
/// minimum is the least noisy estimate of true cost.
fn time_it(reps: usize, mut run: impl FnMut()) -> (f64, f64) {
    run(); // warmup (also populates the prefix cache for the cached paths)
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[0], samples[reps / 2])
}

/// The `threads` JSON block shared by all bench bins: how the budget was
/// derived and what a reservation is actually granted right now.
fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic product-style pairs; every fifth query is long enough to
/// need truncation so the sweep is not artificially uniform.
fn bench_pairs(n: usize) -> Vec<SerializedPair> {
    let words = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    ];
    let side = |i: usize, salt: usize, len: usize| -> String {
        (0..len)
            .map(|j| words[(i * 31 + salt * 17 + j * 7) % words.len()])
            .collect::<Vec<_>>()
            .join(" ")
    };
    (0..n)
        .map(|i| {
            let len = 4 + (i % 5) * 3; // 4..16 words per side
            SerializedPair {
                left: side(i, 0, len).into(),
                right: side(i, if i % 3 == 0 { 0 } else { 1 }, len).into(),
            }
        })
        .collect()
}

fn bench_demos(k: usize, demo_side: usize) -> Vec<Demonstration> {
    (0..k)
        .map(|i| Demonstration {
            pair: bench_pairs(k * 2)[i * 2].clone(),
            label: i % 2 == 0,
        })
        .map(|mut d| {
            // Make demo sides long enough to consume the full demo budget,
            // so the cached prefix is as large as a real sweep's.
            let pad = " extra detail".repeat(demo_side);
            d.pair.left = format!("{}{}", d.pair.left, pad).into();
            d.pair.right = format!("{}{}", d.pair.right, pad).into();
            d
        })
        .collect()
}

fn run(
    dim: usize,
    layers: usize,
    heads: usize,
    max_seq: usize,
    demo_side: usize,
    query_side: usize,
    n_demos: usize,
    n_pairs: usize,
    reps: usize,
    out_path: &str,
) {
    const EPSILON: f32 = 0.05;
    let config = ModelConfig {
        vocab: 4096,
        d_model: dim,
        n_layers: layers,
        n_heads: heads,
        ff_mult: 2,
        max_seq,
        dropout: 0.0,
        claimed_params_millions: 10.0,
    };
    let budget = PromptBudget {
        max_seq,
        demo_side,
        query_side,
    };
    let tier = PretrainedLlm::from_parts(
        LlmTier::Gpt4,
        EncoderClassifier::new(config, 17),
        HashTokenizer::new(config.vocab),
        budget,
    );
    let demos = bench_demos(n_demos, demo_side);
    let pairs = bench_pairs(n_pairs);

    // Prefix/prompt token accounting, from the same cache the scoring
    // path uses: how much of each prompt the cache makes reusable.
    let prompt_tokens: usize = pairs.iter().map(|p| tier.prompt_token_count(p, &demos)).sum();
    let prefix_len = 1 + n_demos * (2 * demo_side + 4); // CLS + (l SEP r SEP Y/N SEP)*
    let suffix_tokens = prompt_tokens - prefix_len * n_pairs;
    assert!(
        prefix_len * n_pairs >= suffix_tokens,
        "bench shape must keep the demo prefix at least half of every prompt"
    );

    // --- Equivalence asserts, before any timing. -------------------------
    // (1) Prefix-cached f32 scoring is bitwise identical to full recompute.
    let full_scores = tier.score_batch_full_recompute(&pairs, &demos);
    let cached_scores = tier.score_batch(&pairs, &demos);
    assert_eq!(
        bits(&full_scores),
        bits(&cached_scores),
        "prefix-cached scores diverged from full recompute"
    );
    // (2) Int8 drifts by at most ε per score.
    let mut int8_tier = tier.clone();
    int8_tier.set_precision(InferencePrecision::Int8);
    let int8_scores = int8_tier.score_batch(&pairs, &demos);
    let max_drift = full_scores
        .iter()
        .zip(&int8_scores)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_drift <= EPSILON,
        "int8 drift {max_drift} exceeds ε = {EPSILON}"
    );

    // --- Timed paths. ----------------------------------------------------
    let (t_full, t_full_med) = time_it(reps, || {
        std::hint::black_box(tier.score_batch_full_recompute(&pairs, &demos));
    });
    let (t_cached, t_cached_med) = time_it(reps, || {
        std::hint::black_box(tier.score_batch(&pairs, &demos));
    });
    let (t_int8, t_int8_med) = time_it(reps, || {
        std::hint::black_box(int8_tier.score_batch(&pairs, &demos));
    });

    let budget_threads = threadpool::max_threads();
    let speedup_cached = t_full / t_cached;
    let speedup_int8 = t_full / t_int8;
    let pairs_per_sec = n_pairs as f64 / t_int8;
    println!(
        "zoo scoring, {n_pairs} pairs, {n_demos} demos (prefix {prefix_len} tokens of {:.0} avg prompt), d_model {dim} layers {layers} heads {heads}, best/median of {reps}, budget {budget_threads} thread(s)",
        prompt_tokens as f64 / n_pairs as f64
    );
    let row = |name: &str, best: f64, _med: f64| {
        println!(
            "  {name:<28}: best {:>8.2} ms/batch  [{:.2}x vs full recompute]",
            best * 1e3,
            t_full / best
        );
    };
    row("full recompute, f32", t_full, t_full_med);
    row("prefix-cached, f32", t_cached, t_cached_med);
    row("prefix-cached + int8", t_int8, t_int8_med);
    println!(
        "  prompt tokens {prompt_tokens} ({} prefix-cached, {suffix_tokens} suffix), max int8 drift {max_drift:.4}",
        prefix_len * n_pairs
    );

    let entry = |best: f64, med: f64| {
        format!(
            "{{ \"best_seconds\": {best:.6}, \"median_seconds\": {med:.6}, \"best_ms_per_pair\": {:.4} }}",
            best * 1e3 / n_pairs as f64
        )
    };
    let json = format!(
        "{{\n  \"workload\": \"zoo batch scoring (prompt assembly + frozen forward pass + sigmoid)\",\n  \"shape\": {{ \"pairs\": {n_pairs}, \"demos\": {n_demos}, \"prefix_tokens\": {prefix_len}, \"avg_prompt_tokens\": {:.1}, \"d_model\": {dim}, \"layers\": {layers}, \"heads\": {heads}, \"max_seq\": {max_seq} }},\n  \"reps\": {reps},\n  \"threads\": {},\n  \"full_recompute_f32\": {},\n  \"prefix_cached_f32\": {},\n  \"prefix_cached_int8\": {},\n  \"speedup_cached_f32_vs_full\": {:.3},\n  \"speedup_cached_int8_vs_full\": {:.3},\n  \"pairs_per_second_int8\": {:.0},\n  \"prompt_tokens_per_batch\": {prompt_tokens},\n  \"prefix_cached_tokens_per_batch\": {},\n  \"suffix_tokens_per_batch\": {suffix_tokens},\n  \"max_int8_score_drift\": {:.3e},\n  \"cached_f32_bitwise_equal_full_recompute\": true\n}}\n",
        prompt_tokens as f64 / n_pairs as f64,
        threads_json(),
        entry(t_full, t_full_med),
        entry(t_cached, t_cached_med),
        entry(t_int8, t_int8_med),
        speedup_cached,
        speedup_int8,
        pairs_per_sec,
        prefix_len * n_pairs,
        max_drift,
    );
    std::fs::write(out_path, json).expect("failed to write benchmark results");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| *a != "--smoke")
        .cloned()
        .unwrap_or_else(|| "BENCH_zoo.json".to_string());
    if smoke {
        // Tiny shape, 2 reps: validates harness + equivalence asserts in CI.
        run(32, 1, 2, 64, 6, 8, 2, 24, 2, &out_path);
    } else {
        // Batch 96 pairs, 4 demos -> 81-token prefix of a ~103-token prompt.
        run(512, 2, 8, 128, 8, 10, 4, 96, 3, &out_path);
    }
}
