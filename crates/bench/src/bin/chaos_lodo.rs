//! Chaos drill for the `em-faults` resilience layer.
//!
//! Runs a small LODO sweep of MatchGPT four times and checks the
//! acceptance properties of the fault-injection stack end to end:
//!
//! 1. **Baseline** — fault-free run through the historical direct path.
//! 2. **Chaos** — the same sweep behind the resilient hosted client with
//!    10% injected faults of every kind. Must complete with zero aborted
//!    items, bit-identical F1 to the baseline (retries are transparent),
//!    no degraded rows, and non-zero `faults.*` counters.
//! 3. **Kill + resume** — the chaos run's JSONL checkpoint is truncated
//!    to simulate a mid-sweep kill; the resumed run must reproduce the
//!    full result bitwise while re-evaluating only the missing items
//!    (verified by counting `predict` calls).
//! 4. **Dead backend** — fault rate 1.0 trips the circuit breaker; every
//!    MatchGPT row must degrade to the registered string-similarity
//!    fallback (bit-identical to a pure StringSim run) and say so.
//!
//! `--smoke` selects the reduced scale wired into `scripts/tier1.sh`.

use em_bench::{Scale, StudyContext};
use em_core::{
    evaluate_all, evaluate_all_resumable, EvalBatch, EvalConfig, EvalReport, LodoSplit, Matcher,
};
use em_faults::FaultPlan;
use em_lm::PretrainedLlm;
use em_matchers::{DemoStrategy, MatchGpt, StringSim};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;

/// Wraps a matcher to count `predict` calls — how the resume check proves
/// completed items were served from the checkpoint, not re-evaluated.
struct Counting {
    inner: Box<dyn Matcher>,
    predicts: Arc<AtomicUsize>,
}

impl Matcher for Counting {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn params_millions(&self) -> Option<f64> {
        self.inner.params_millions()
    }
    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> em_core::Result<()> {
        self.inner.fit(split, seed)
    }
    fn predict(&mut self, batch: &EvalBatch) -> em_core::Result<Vec<bool>> {
        self.predicts.fetch_add(1, Ordering::Relaxed);
        self.inner.predict(batch)
    }
    fn saw_during_training(&self, dataset: em_core::DatasetId) -> bool {
        self.inner.saw_during_training(dataset)
    }
    fn was_degraded(&self) -> bool {
        self.inner.was_degraded()
    }
}

fn counter(name: &str) -> u64 {
    em_obs::metrics::counter(name).get()
}

/// The two MatchGPT variants the drill sweeps (zero-shot and hand-picked
/// demonstrations), so the checkpoint holds rows of several matchers.
const VARIANTS: [(&str, DemoStrategy); 2] = [
    ("matchgpt-gpt35", DemoStrategy::None),
    ("matchgpt-gpt35-hand", DemoStrategy::HandPicked),
];

fn plain_factories(llm: &Arc<PretrainedLlm>) -> Vec<(String, Factory)> {
    VARIANTS
        .iter()
        .map(|&(label, strategy)| {
            let llm = llm.clone();
            let f: Factory =
                Box::new(move || Box::new(MatchGpt::with_llm(llm.clone(), strategy)) as _);
            (label.to_owned(), f)
        })
        .collect()
}

fn resilient_factories(
    llm: &Arc<PretrainedLlm>,
    plan: &FaultPlan,
    predicts: Option<&Arc<AtomicUsize>>,
) -> Vec<(String, Factory)> {
    VARIANTS
        .iter()
        .map(|&(label, strategy)| {
            let llm = llm.clone();
            let plan = plan.clone();
            let predicts = predicts.cloned();
            let f: Factory = Box::new(move || {
                let m = MatchGpt::with_resilience(
                    llm.clone(),
                    strategy,
                    Some(plan.clone()),
                    Box::new(StringSim::new()),
                );
                match &predicts {
                    Some(p) => Box::new(Counting {
                        inner: Box::new(m),
                        predicts: p.clone(),
                    }) as _,
                    None => Box::new(m) as _,
                }
            });
            (label.to_owned(), f)
        })
        .collect()
}

fn assert_reports_bitwise_equal(what: &str, a: &[EvalReport], b: &[EvalReport]) {
    assert_eq!(a.len(), b.len(), "{what}: report count");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.scores.len(), rb.scores.len(), "{what}: score count");
        for (sa, sb) in ra.scores.iter().zip(&rb.scores) {
            assert_eq!(sa.dataset, sb.dataset, "{what}: dataset order");
            let bits_a: Vec<u64> = sa.per_seed_f1.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = sb.per_seed_f1.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits_a,
                bits_b,
                "{what}: F1 of {} on {} must be bit-identical",
                ra.matcher,
                sa.dataset.code()
            );
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale {
            seeds: 1,
            test_cap: 24,
            corpus_size: 600,
        }
    } else {
        Scale {
            seeds: 2,
            test_cap: 120,
            corpus_size: 4_000,
        }
    };
    let cfg = EvalConfig::quick(scale.seeds, scale.test_cap);
    let ctx = StudyContext::new(scale);
    let llm = ctx.tier(em_lm::LlmTier::Gpt35Turbo);
    let n_items = VARIANTS.len() * ctx.suite.len();

    let workdir = std::env::temp_dir().join(format!("em-chaos-lodo-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("create chaos workdir");
    let ckpt = workdir.join("sweep.jsonl");

    // 1. Fault-free baseline.
    let baseline = evaluate_all(plain_factories(&llm), &ctx.suite, &cfg).expect("baseline sweep");
    println!("baseline: {n_items} items ok");

    // 2. Chaos sweep at 10% fault rate, all kinds, checkpointed.
    let plan = FaultPlan::parse("1,0.1,all").expect("chaos plan");
    let injected0 = counter("faults.injected");
    let retries0 = counter("faults.retries");
    let chaos = evaluate_all_resumable(
        resilient_factories(&llm, &plan, None),
        &ctx.suite,
        &cfg,
        &ckpt,
        false,
    )
    .expect("chaos sweep must complete with zero aborted items");
    let injected = counter("faults.injected") - injected0;
    let retries = counter("faults.retries") - retries0;
    assert!(injected > 0, "10% plan must inject at least one fault");
    assert!(retries > 0, "injected faults must be retried");
    assert_reports_bitwise_equal("chaos vs baseline", &chaos, &baseline);
    assert!(
        chaos.iter().all(|r| r.scores.iter().all(|s| !s.degraded)),
        "10% faults must be absorbed by retries, never degrade"
    );
    println!(
        "chaos:    {n_items} items ok, {injected} faults injected, {retries} retries, \
         recovered {}, F1 bit-identical to baseline",
        counter("faults.recovered")
    );

    // 3. Simulate a mid-sweep kill: keep only half the checkpoint rows,
    //    then resume. Only the dropped items may be re-evaluated.
    let text = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n_items, "one checkpoint row per item");
    let keep = n_items / 2;
    let truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&ckpt, truncated).expect("truncate checkpoint");

    let predicts = Arc::new(AtomicUsize::new(0));
    let resumed = evaluate_all_resumable(
        resilient_factories(&llm, &plan, Some(&predicts)),
        &ctx.suite,
        &cfg,
        &ckpt,
        true,
    )
    .expect("resumed sweep");
    assert_reports_bitwise_equal("resumed vs chaos", &resumed, &chaos);
    let expected_predicts = (n_items - keep) * cfg.seeds.len();
    assert_eq!(
        predicts.load(Ordering::Relaxed),
        expected_predicts,
        "resume must re-evaluate only the items lost at the kill point"
    );
    println!(
        "resume:   killed after {keep}/{n_items} items; resumed run re-ran \
         {} predict calls ({} items) and reproduced the sweep bitwise",
        expected_predicts,
        n_items - keep
    );

    // 4. Dead backend: rate 1.0 exhausts every retry budget and trips the
    //    breaker; MatchGPT must degrade to StringSim and say so.
    let dead = FaultPlan::parse("9,1.0,transient").expect("dead plan");
    let opened0 = counter("faults.breaker_opened");
    let degraded_runs = evaluate_all(
        resilient_factories(&llm, &dead, None),
        &ctx.suite,
        &cfg,
    )
    .expect("dead-backend sweep still completes");
    let stringsim_factory: Vec<(String, Factory)> = vec![(
        "stringsim".into(),
        Box::new(|| Box::new(StringSim::new()) as _),
    )];
    let stringsim = evaluate_all(stringsim_factory, &ctx.suite, &cfg).expect("stringsim sweep");
    for report in &degraded_runs {
        assert!(
            report.scores.iter().all(|s| s.degraded),
            "every row of a dead backend must be marked degraded"
        );
        assert_reports_bitwise_equal(
            "degraded vs stringsim",
            std::slice::from_ref(report),
            &stringsim,
        );
    }
    assert!(
        counter("faults.breaker_opened") > opened0,
        "a dead backend must open the circuit breaker"
    );
    println!(
        "degrade:  dead backend opened the breaker and fell back to {} bit-identically",
        "StringSim"
    );

    std::fs::remove_dir_all(&workdir).ok();
    println!("chaos_lodo: all checks passed");
}
