//! Development diagnostic for the frozen-tier capability ordering:
//! evaluates every tier zero-shot on held-out corpus pairs and on two
//! benchmark datasets.

use em_core::{lodo_split, test_sample, DatasetId, Serializer};
use em_lm::{pretrain_tier, LlmTier, PretrainCorpus};

fn main() {
    let corpus = PretrainCorpus {
        pairs: em_datagen::pretrain_corpus(14_000, 0),
    };
    let heldout = em_datagen::pretrain_corpus(1_500, 99); // different seed
    let suite: Vec<_> = [DatasetId::Beer, DatasetId::Foza]
        .iter()
        .map(|&id| em_datagen::generate(id, 0))
        .collect();
    let all = em_datagen::generate_suite(0);

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "tier", "corpus", "BEER", "FOZA", "params"
    );
    for tier in LlmTier::ALL {
        let llm = pretrain_tier(tier, &corpus, 0);
        // Held-out corpus F1.
        let pairs: Vec<_> = heldout.iter().map(|(p, _)| p.clone()).collect();
        let labels: Vec<bool> = heldout.iter().map(|(_, y)| *y).collect();
        let preds: Vec<bool> = llm
            .score_batch(&pairs, &[])
            .into_iter()
            .map(|s| s >= 0.5)
            .collect();
        let corpus_f1 = em_core::f1_percent(&preds, &labels).expect("aligned predictions");
        // Benchmark F1 (identity serialization, capped samples).
        let mut bench_f1 = Vec::new();
        for b in &suite {
            let _ = lodo_split(&all, b.id).unwrap();
            let sample = test_sample(b, 450);
            let ser = Serializer::identity(b.arity());
            let sp: Vec<_> = sample.iter().map(|lp| ser.pair(&lp.pair)).collect();
            let labels: Vec<bool> = sample.iter().map(|lp| lp.label).collect();
            let preds: Vec<bool> = llm
                .score_batch(&sp, &[])
                .into_iter()
                .map(|s| s >= 0.5)
                .collect();
            bench_f1.push(em_core::f1_percent(&preds, &labels).expect("aligned predictions"));
        }
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8}",
            tier.label(),
            corpus_f1,
            bench_f1[0],
            bench_f1[1],
            llm.param_count()
        );
    }
}
