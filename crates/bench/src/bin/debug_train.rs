//! Development diagnostic: can the SLM learn the benchmark task at all?
//! Trains on transfer data and evaluates on (a) held-in training pairs and
//! (b) the LODO target, printing loss curves.

use em_core::{lodo_split, DatasetId, Serializer};
use em_lm::{
    encode_pair, predict_proba, train, EncoderClassifier, HashTokenizer, SlmFamily, TrainConfig,
};
use em_matchers::common::{balance_labels, sample_transfer_pairs};

fn main() {
    let suite = em_datagen::generate_suite(0);
    let split = lodo_split(&suite, DatasetId::Beer).unwrap();
    let mut data = sample_transfer_pairs(&split, 100, 0);
    eprintln!(
        "train pool: {} pairs, {} positive",
        data.len(),
        data.iter().filter(|(_, y)| *y).count()
    );
    balance_labels(&mut data, 1.0, 0);
    eprintln!(
        "balanced: {} pairs, {} positive",
        data.len(),
        data.iter().filter(|(_, y)| *y).count()
    );
    let fam = SlmFamily::Llama32;
    let cfg = fam.config();
    let tok = HashTokenizer::new(cfg.vocab);
    let encoded: Vec<_> = data
        .iter()
        .map(|(p, y)| (encode_pair(&tok, p, cfg.max_seq), *y))
        .collect();
    // Print an example encoding.
    let ex = &data[0];
    eprintln!(
        "example pair: L=<{}> R=<{}> y={}",
        ex.0.left, ex.0.right, ex.1
    );
    eprintln!(
        "encoded tokens: {} of {}",
        encoded[0].0.token_count(),
        cfg.max_seq
    );

    for lr in [1e-3f32, 3e-3, 1e-2] {
        let mut model = EncoderClassifier::new(cfg, 0);
        let report = train(
            &mut model,
            &encoded,
            &TrainConfig {
                epochs: 6,
                lr,
                seed: 0,
                ..Default::default()
            },
        );
        // Train-set F1.
        let probs = predict_proba(
            &model,
            &encoded.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
            64,
        );
        let preds: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
        let labels: Vec<bool> = encoded.iter().map(|(_, y)| *y).collect();
        let train_f1 = em_core::f1_percent(&preds, &labels).expect("aligned predictions");
        // Target F1.
        let ser = Serializer::identity(split.target.arity());
        let test_enc: Vec<_> = split
            .target
            .pairs
            .iter()
            .take(450)
            .map(|lp| encode_pair(&tok, &ser.pair(&lp.pair), cfg.max_seq))
            .collect();
        let test_labels: Vec<bool> = split
            .target
            .pairs
            .iter()
            .take(450)
            .map(|lp| lp.label)
            .collect();
        let tp = predict_proba(&model, &test_enc, 64);
        let tpreds: Vec<bool> = tp.iter().map(|&p| p >= 0.5).collect();
        let test_f1 = em_core::f1_percent(&tpreds, &test_labels).expect("aligned predictions");
        println!(
            "lr={lr:.0e}  losses={:?}  train_f1={train_f1:.1}  target_f1(BEER)={test_f1:.1}  mean_prob={:.3}",
            report.epoch_losses.iter().map(|l| (l * 100.0).round() / 100.0).collect::<Vec<_>>(),
            probs.iter().sum::<f32>() / probs.len() as f32,
        );
    }
}
