//! Drift drill: the serving cascade under a ramping perturbation rate.
//!
//! `em_datagen::DriftStream` carves one serve workload into batches and
//! flags a linearly growing fraction of each right-side batch; the drill
//! corrupts exactly the flagged records with an `em-perturb` noise plan
//! (typo + token drop + nulled attribute) and feeds each batch through a
//! `ServePipeline` against a fixed left catalog. The point is *graceful*
//! degradation: as data quality drifts, the confidence gate should route
//! more pairs past the cheap stage (escalation fraction and spend rise),
//! while stage 0 stays fatal-free and the margin gating stays exact.
//!
//! Asserted per run:
//!
//! * every batch serves — `run` returns `Ok` for all batches (a stage-0
//!   fault would abort the run instead);
//! * gate conservation — each deeper stage's `pairs_in` equals the
//!   previous stage's `escalated` count, every batch;
//! * no stage reports degraded or absorbed-error service (no faults are
//!   injected here; `chaos_lodo` owns the fault drills);
//! * the stage-0 escalation fraction is monotone non-decreasing across
//!   batches (small tolerance) and strictly higher at the end than at the
//!   clean start;
//! * per-candidate spend is higher on the noisiest batch than the clean
//!   one.
//!
//! Writes `BENCH_drift.json` (or argv[1]); `--smoke` runs a reduced ramp
//! on a 2-stage cascade for tier-1.

use em_bench::robustness::{prf, serve_blocker, threads_json, train_serving_slm, SlmScale};
use em_cost::estimate::self_host_cost_per_1k;
use em_cost::pricing::openai;
use em_datagen::{DriftConfig, DriftStream};
use em_lm::config::LlmTier;
use em_lm::zoo::{pretrain_tier, PretrainCorpus};
use em_matchers::{DemoStrategy, MatchGpt, StringSim};
use em_perturb::{DropToken, NullOut, PerturbPlan, Typo};
use em_serve::{FrozenSlm, RecordStore, ServePipeline, ServeReport, Stage};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Per-batch outcome kept for the report. Each batch is served twice —
/// clean and perturbed — so the drift effect is isolated from
/// batch-to-batch content variation; the `*_delta` fields are
/// perturbed-minus-clean on the *same* records.
struct BatchOutcome {
    rate: f64,
    candidates: usize,
    escalation: f64,
    escalation_delta: f64,
    usd_per_1k_candidates: f64,
    usd_delta: f64,
    f1: f64,
    f1_clean: f64,
}

/// The drift noise: one typo pass, one dropped token, one nulled
/// attribute per flagged record — strong enough to move strsim scores
/// into the escalation band without erasing the blocking tokens.
fn noise_plan(seed: u64) -> PerturbPlan {
    PerturbPlan::new("drift-noise", seed)
        .with(Box::new(Typo { passes: 1 }))
        .with(Box::new(DropToken))
        .with(Box::new(NullOut { k: 1 }))
}

fn gate_conservation(report: &ServeReport) {
    for w in report.stages.windows(2) {
        assert_eq!(
            w[1].pairs_in, w[0].escalated,
            "margin gating leaked pairs between {} and {}",
            w[0].name, w[1].name
        );
    }
}

fn run(smoke: bool, out_path: &str) {
    let t_all = Instant::now();
    let cfg = if smoke {
        DriftConfig {
            left_size: 1_200,
            batches: 4,
            batch_size: 300,
            match_fraction: 0.4,
            start_rate: 0.0,
            end_rate: 0.6,
            seed: 41,
        }
    } else {
        DriftConfig {
            left_size: 4_000,
            batches: 8,
            batch_size: 800,
            match_fraction: 0.4,
            start_rate: 0.0,
            end_rate: 0.7,
            seed: 41,
        }
    };
    let stream = DriftStream::new(cfg.clone());
    let left = RecordStore::new(stream.left().to_vec());
    let plan = noise_plan(cfg.seed);
    println!(
        "drift drill: left {} records, {} batches of {}, perturbation rate {:.2} -> {:.2}",
        cfg.left_size, cfg.batches, cfg.batch_size, cfg.start_rate, cfg.end_rate
    );

    // --- Cascade (models trained on the separately-seeded instance). ----
    let scale = if smoke {
        SlmScale::smoke()
    } else {
        SlmScale::full()
    };
    let (slm, tokenizer) = train_serving_slm(scale, 17);
    let slm_price = self_host_cost_per_1k(2_000.0);
    let gpt = if smoke {
        None
    } else {
        let train_rels = em_datagen::serve_relations(5_000, 5_000, 0.6, 1_007);
        let corpus = PretrainCorpus {
            pairs: em_bench::robustness::hard_labeled_pairs(&train_rels, 2_500, 2_500, 23),
        };
        Some(Arc::new(pretrain_tier(LlmTier::Gpt4, &corpus, 5)))
    };
    let make_stages = || -> Vec<Stage> {
        let mut stages = vec![
            Stage::new("strsim", Box::new(StringSim::new())).with_margin(0.6),
            Stage::new(
                "slm",
                Box::new(FrozenSlm::new("slm-64d", slm.clone(), tokenizer.clone())),
            )
            .with_margin(0.25)
            .priced(slm_price),
        ];
        if let Some(gpt) = &gpt {
            stages.push(
                Stage::new(
                    "gpt4",
                    Box::new(MatchGpt::with_resilience(
                        gpt.clone(),
                        DemoStrategy::None,
                        None,
                        Box::new(StringSim::new()),
                    )),
                )
                .priced(openai::GPT4_PER_1K),
            );
        }
        stages
    };
    // Two pipelines: the perturbed store reuses the clean store's record
    // *ids* (they are versions of the same records), so the two views must
    // never share a score cache.
    let mut clean_pipe = ServePipeline::new(Box::new(serve_blocker()), make_stages()).unwrap();
    let mut drift_pipe = ServePipeline::new(Box::new(serve_blocker()), make_stages()).unwrap();

    // --- The ramp: every batch served clean and perturbed. --------------
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    println!(
        "{:>5} {:>6} {:>10} {:>11} {:>7} {:>12} {:>9} {:>7} {:>7}",
        "batch",
        "rate",
        "candidates",
        "escalation",
        "d_esc",
        "usd/1k cand",
        "d_usd",
        "F1",
        "F1clean"
    );
    for batch in stream {
        let mut records = batch.records.clone();
        for &i in &batch.flagged {
            records[i] = plan.record(&records[i]);
        }
        let clean_right = RecordStore::new(batch.records.clone());
        let right = RecordStore::new(records);
        // Stage-0 fatal-free is the contract: a batch that cannot be
        // served at all would surface here as an Err.
        let clean_rep = clean_pipe
            .run(&left, &clean_right)
            .unwrap_or_else(|e| panic!("clean batch {} failed to serve: {e}", batch.index));
        let report = drift_pipe
            .run(&left, &right)
            .unwrap_or_else(|e| panic!("batch {} failed to serve: {e}", batch.index));
        for rep in [&clean_rep, &report] {
            gate_conservation(rep);
            assert!(
                !rep.any_degraded(),
                "batch {}: degraded service without injected faults",
                batch.index
            );
            assert!(
                !rep.any_errored(),
                "batch {}: absorbed stage errors without injected faults",
                batch.index
            );
        }
        let truth: HashSet<(usize, usize)> = batch.matches.iter().copied().collect();
        let (_, _, f1) = prf(&report.matches, &truth);
        let (_, _, f1_clean) = prf(&clean_rep.matches, &truth);
        let usd_1k = |r: &ServeReport| r.total_usd() / (r.candidates.max(1) as f64 / 1_000.0);
        let out = BatchOutcome {
            rate: batch.rate,
            candidates: report.candidates,
            escalation: report.escalation_fraction(),
            escalation_delta: report.escalation_fraction() - clean_rep.escalation_fraction(),
            usd_per_1k_candidates: usd_1k(&report),
            usd_delta: usd_1k(&report) - usd_1k(&clean_rep),
            f1,
            f1_clean,
        };
        println!(
            "{:>5} {:>6.3} {:>10} {:>10.1}% {:>+6.1}% {:>12.4} {:>+9.4} {:>7.3} {:>7.3}",
            batch.index,
            batch.rate,
            out.candidates,
            out.escalation * 100.0,
            out.escalation_delta * 100.0,
            out.usd_per_1k_candidates,
            out.usd_delta,
            out.f1,
            out.f1_clean
        );
        outcomes.push(out);
    }

    // --- Graceful-degradation invariants across the ramp. ---------------
    // The drift effect is read as perturbed-minus-clean on identical
    // records, so batch composition noise cancels out.
    let first = outcomes.first().expect("no batches");
    let last = outcomes.last().expect("no batches");
    assert!(
        first.escalation_delta.abs() < 1e-9,
        "rate-0 batch must serve identically clean and perturbed (delta {:.4})",
        first.escalation_delta
    );
    for w in outcomes.windows(2) {
        assert!(
            w[1].escalation_delta >= w[0].escalation_delta - 0.02,
            "escalation delta regressed under rising drift: {:.3} -> {:.3}",
            w[0].escalation_delta,
            w[1].escalation_delta
        );
    }
    assert!(
        last.escalation_delta > first.escalation_delta + 0.05,
        "drift did not raise the escalation fraction (delta {:.3} -> {:.3})",
        first.escalation_delta,
        last.escalation_delta
    );
    assert!(
        last.usd_delta > first.usd_delta,
        "drift did not raise per-candidate spend (delta {:.4} -> {:.4})",
        first.usd_delta,
        last.usd_delta
    );

    println!("{}", em_obs::report::render_metrics());

    let batches_json: Vec<String> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            format!(
                "{{ \"batch\": {}, \"rate\": {:.4}, \"candidates\": {}, \"escalation_fraction\": {:.4}, \"escalation_delta_vs_clean\": {:.4}, \"usd_per_1k_candidates\": {:.6}, \"usd_delta_vs_clean\": {:.6}, \"f1\": {:.4}, \"f1_clean\": {:.4} }}",
                i,
                o.rate,
                o.candidates,
                o.escalation,
                o.escalation_delta,
                o.usd_per_1k_candidates,
                o.usd_delta,
                o.f1,
                o.f1_clean
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"serving cascade under ramping perturbation rate (DriftStream + em-perturb)\",\n  \"shape\": {{ \"left\": {}, \"batches\": {}, \"batch_size\": {}, \"match_fraction\": {}, \"start_rate\": {}, \"end_rate\": {}, \"seed\": {} }},\n  \"threads\": {},\n  \"noise_plan\": \"typo(1) + drop-token + null(1) on flagged records\",\n  \"stage0_fatal_free\": true,\n  \"gate_conservation_checked\": true,\n  \"escalation_delta_monotone\": true,\n  \"escalation_delta_first\": {:.4},\n  \"escalation_delta_last\": {:.4},\n  \"usd_delta_first\": {:.6},\n  \"usd_delta_last\": {:.6},\n  \"batches\": [\n    {}\n  ]\n}}\n",
        cfg.left_size,
        cfg.batches,
        cfg.batch_size,
        cfg.match_fraction,
        cfg.start_rate,
        cfg.end_rate,
        cfg.seed,
        threads_json(),
        first.escalation_delta,
        last.escalation_delta,
        first.usd_delta,
        last.usd_delta,
        batches_json.join(",\n    ")
    );
    std::fs::write(out_path, json).expect("failed to write drift results");
    println!(
        "wrote {out_path} ({} batches, {:.1}s total)",
        outcomes.len(),
        t_all.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_drift.json".to_string());
    // Counters feed the perturb.* profile greps (scripts/profile_serve.sh).
    em_obs::trace::set_capture(true);
    run(smoke, &out_path);
}
