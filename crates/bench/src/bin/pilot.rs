//! Pilot calibration run: a few matchers on a few datasets, one seed.
//! Used during development to calibrate dataset difficulty and measure
//! wall-clock; not part of the published experiment set.

use em_core::{evaluate_on_target, lodo_split, EvalConfig, Matcher};
use em_lm::{pretrain_tier, LlmTier, PretrainCorpus};
use em_matchers::{
    AnyMatch, AnyMatchBackbone, DemoStrategy, Ditto, MatchGpt, StringSim, Unicorn, ZeroEr,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    eprintln!("generating benchmark suite ...");
    let suite = em_datagen::generate_suite(0);
    eprintln!("suite generated in {:.1?}", t0.elapsed());

    let t1 = Instant::now();
    let corpus = PretrainCorpus {
        pairs: em_datagen::pretrain_corpus(6000, 0),
    };
    let gpt4 = Arc::new(pretrain_tier(LlmTier::Gpt4, &corpus, 0));
    let gpt35 = Arc::new(pretrain_tier(LlmTier::Gpt35Turbo, &corpus, 0));
    eprintln!("tiers pretrained in {:.1?}", t1.elapsed());

    let targets = ["BEER", "DBAC", "ITAM", "FOZA", "WDC"];
    let cfg = EvalConfig::quick(1, 1250);

    let t2 = Instant::now();
    let mut matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(StringSim::new()),
        Box::new(ZeroEr::new()),
        Box::new(Ditto::pretrained(&corpus)),
        Box::new(Unicorn::pretrained(&corpus)),
        Box::new(AnyMatch::pretrained(AnyMatchBackbone::Gpt2, &corpus)),
        Box::new(AnyMatch::pretrained(AnyMatchBackbone::Llama32, &corpus)),
        Box::new(MatchGpt::with_llm(gpt35, DemoStrategy::None)),
        Box::new(MatchGpt::with_llm(gpt4, DemoStrategy::None)),
    ];
    eprintln!("backbones pretrained in {:.1?}", t2.elapsed());

    println!("{:<28} {}", "matcher", targets.join("  "));
    for m in matchers.iter_mut() {
        let tm = Instant::now();
        let mut row = Vec::new();
        for code in targets {
            let id = em_core::DatasetId::parse(code).unwrap();
            let split = lodo_split(&suite, id).unwrap();
            let score = evaluate_on_target(m.as_mut(), &split, &cfg).unwrap();
            row.push(format!("{:5.1}", score.summary().mean));
        }
        println!(
            "{:<28} {}   [{:.1?}]",
            m.name(),
            row.join(" "),
            tm.elapsed()
        );
    }
    eprintln!("total {:.1?}", t0.elapsed());
}
