//! Profiles a full LODO evaluation under `em-obs` tracing.
//!
//! ```text
//! cargo run --release -p em-bench --bin profile_lodo            # profile
//! cargo run --release -p em-bench --bin profile_lodo overhead   # overhead check
//! cargo run --release -p em-bench --bin profile_lodo -- --resume  # resume a killed sweep
//! ```
//!
//! The default mode runs the checkpointed `evaluate_all_resumable` over
//! the generated 11-dataset suite with capture forced on, exports the
//! trace as JSONL (to `EM_TRACE` if set, else
//! `target/em-results/profile_lodo.jsonl`), and prints the per-stage
//! summary: top spans by cumulative time, warning events, and the
//! metrics registry. Completed (matcher × target) items stream to
//! `target/em-results/profile_lodo.ckpt.jsonl`; `--resume` skips the
//! items a previous (killed) run already finished, bit-identically.
//!
//! `overhead` runs the same evaluation twice — capture off, then capture
//! on — and reports the tracing overhead against the <2% budget
//! (DESIGN.md §6).
//!
//! The roster is the two parameter-free matchers (StringSim, ZeroER): the
//! point is to exercise the instrumented pipeline end to end, not to spend
//! minutes pretraining; scale knobs `EM_SEEDS` / `EM_TEST_CAP` apply.

use em_bench::Scale;
use em_core::{evaluate_all, Benchmark, EvalConfig, Matcher};
use em_matchers::{StringSim, ZeroEr};
use std::time::Instant;

type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;

fn roster() -> Vec<(String, Factory)> {
    vec![
        (
            "StringSim".into(),
            Box::new(|| Box::new(StringSim::new()) as Box<dyn Matcher>),
        ),
        (
            "ZeroER".into(),
            Box::new(|| Box::new(ZeroEr::new()) as Box<dyn Matcher>),
        ),
    ]
}

fn run_eval(suite: &[Benchmark], cfg: &EvalConfig) {
    let reports = evaluate_all(roster(), suite, cfg).expect("evaluation failed");
    assert_eq!(reports.len(), 2);
}

/// The profile-mode sweep: checkpointed, so a killed profiling run can be
/// picked up with `--resume` instead of starting over.
fn run_eval_checkpointed(suite: &[Benchmark], cfg: &EvalConfig, resume: bool) {
    let dir = std::path::Path::new("target/em-results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let ckpt = dir.join("profile_lodo.ckpt.jsonl");
    let reports = em_core::evaluate_all_resumable(roster(), suite, cfg, &ckpt, resume)
        .expect("evaluation failed");
    assert_eq!(reports.len(), 2);
}

/// Exercises the fused-attention inference path on a shape above the
/// `attn.fused` span threshold, so the `attn.*` spans and counters land
/// in the profile. The parameter-free roster never touches the neural
/// substrate, and fine-tuning a PLM here would dwarf the evaluation being
/// profiled — one untrained encoder forward is enough to account for the
/// kernel in the span report.
fn attention_probe() {
    use em_lm::{encode_pair, Batch, EncoderClassifier, HashTokenizer, ModelConfig};
    let cfg = ModelConfig {
        vocab: 512,
        d_model: 128,
        n_layers: 2,
        n_heads: 8,
        ff_mult: 2,
        max_seq: 64,
        dropout: 0.0,
        claimed_params_millions: 1.0,
    };
    let model = EncoderClassifier::new(cfg, 0);
    let tok = HashTokenizer::new(512);
    let encoded: Vec<_> = (0..32)
        .map(|i| {
            let pair = em_core::SerializedPair {
                left: format!("record number {i} alpha beta gamma delta").into(),
                right: format!("record number {} alpha beta gamma", i % 5).into(),
            };
            encode_pair(&tok, &pair, 64)
        })
        .collect();
    let batch = Batch::collate(&encoded);
    let logits = model.forward(&batch);
    assert!(logits.iter().all(|l| l.is_finite()));
}

/// Exercises the fused training step so the `optim.step` spans and the
/// `finetune.tokens` / `finetune.padded_tokens_saved` counters land in
/// the profile: a few epochs of a tiny encoder on ragged pairs (same
/// rationale as [`attention_probe`] — enough to account for the path in
/// the span report, not a real fine-tune).
fn finetune_probe() {
    use em_lm::{encode_pair, train, EncoderClassifier, HashTokenizer, ModelConfig, TrainConfig};
    let cfg = ModelConfig {
        vocab: 512,
        d_model: 32,
        n_layers: 1,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 48,
        dropout: 0.0,
        claimed_params_millions: 1.0,
    };
    let tok = HashTokenizer::new(512);
    let examples: Vec<_> = (0..48)
        .map(|i| {
            let words = (0..(3 + i % 12))
                .map(|j| format!("tok{}", (i * 13 + j) % 37))
                .collect::<Vec<_>>()
                .join(" ");
            let pair = em_core::SerializedPair {
                left: words.clone().into(),
                right: words.into(),
            };
            (encode_pair(&tok, &pair, 48), i % 2 == 0)
        })
        .collect();
    let mut model = EncoderClassifier::new(cfg, 0);
    let report = train(
        &mut model,
        &examples,
        &TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        },
    );
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
}

/// Exercises the zoo inference path — prefix-cached batch scoring with the
/// int8 GEMM enabled — so the `lm.prefix_hits` / `lm.prefix_tokens_saved`
/// and `qgemm.calls` / `qgemm.flops` counters land in the profile. Scoring
/// the same batch twice makes the second pass hit the demo-prefix cache
/// (same rationale as [`attention_probe`]: enough to account for the path,
/// not a real sweep).
fn zoo_probe() {
    use em_lm::config::{LlmTier, ModelConfig};
    use em_lm::model::EncoderClassifier;
    use em_lm::prompt::{Demonstration, PromptBudget};
    use em_lm::tokenizer::HashTokenizer;
    use em_lm::zoo::PretrainedLlm;
    use em_nn::qgemm::InferencePrecision;
    let config = ModelConfig {
        vocab: 512,
        d_model: 64,
        n_layers: 1,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 64,
        dropout: 0.0,
        claimed_params_millions: 1.0,
    };
    let budget = PromptBudget {
        max_seq: 64,
        demo_side: 5,
        query_side: 8,
    };
    let mut tier = PretrainedLlm::from_parts(
        LlmTier::Gpt4,
        EncoderClassifier::new(config, 11),
        HashTokenizer::new(config.vocab),
        budget,
    );
    tier.set_precision(InferencePrecision::Int8);
    let demos: Vec<Demonstration> = (0..3)
        .map(|i| Demonstration {
            pair: em_core::SerializedPair {
                left: format!("acme widget model {i} industrial").into(),
                right: format!("acme widget model {i} industrial grade").into(),
            },
            label: i % 2 == 0,
        })
        .collect();
    let pairs: Vec<em_core::SerializedPair> = (0..64)
        .map(|i| em_core::SerializedPair {
            left: format!("vendor item {i} blue medium").into(),
            right: format!("vendor item {} blue", i % 7).into(),
        })
        .collect();
    // Second pass scores against the already-populated prefix cache, so
    // `lm.prefix_hits` counts actual hits, not just the initial fill.
    for _ in 0..2 {
        let scores = tier.score_batch(&pairs, &demos);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}

fn profile(suite: &[Benchmark], cfg: &EvalConfig, resume: bool) {
    em_obs::trace::set_capture(true);
    let t0 = Instant::now();
    run_eval_checkpointed(suite, cfg, resume);
    attention_probe();
    finetune_probe();
    zoo_probe();
    let wall = t0.elapsed();
    em_obs::trace::set_capture(false);

    let records = em_obs::trace::drain();
    let streamed = std::env::var("EM_TRACE")
        .map(|p| !p.trim().is_empty())
        .unwrap_or(false);
    let path = if streamed {
        // The sink already streamed every record to the EM_TRACE file.
        std::env::var("EM_TRACE").unwrap()
    } else {
        let path = "target/em-results/profile_lodo.jsonl".to_string();
        em_obs::trace::write_jsonl(&path, &records).expect("trace export failed");
        path
    };

    println!(
        "profiled LODO evaluation: {} records in {} (trace: {path})",
        records.len(),
        em_obs::report::fmt_ns(wall.as_nanos() as u64),
    );
    if em_obs::trace::dropped_records() > 0 {
        println!(
            "warning: {} records dropped (sink retention cap)",
            em_obs::trace::dropped_records()
        );
    }
    // Fine-tune throughput from the probe: tokens counted by the training
    // loop over the wall-clock of its `finetune.step` spans.
    let span_sum = |name: &str| -> (u64, u64) {
        records
            .iter()
            .filter(|r| matches!(r.kind, em_obs::trace::RecordKind::Span) && r.name == name)
            .fold((0u64, 0u64), |(n, ns), r| (n + 1, ns + r.dur_ns))
    };
    let (steps, step_ns) = span_sum("finetune.step");
    let (opt_steps, opt_ns) = span_sum("optim.step");
    let tokens = em_obs::metrics::counter("finetune.tokens").get();
    let saved = em_obs::metrics::counter("finetune.padded_tokens_saved").get();
    if step_ns > 0 && tokens > 0 {
        println!(
            "fine-tune probe: {tokens} tokens over {steps} finetune.step spans ({}) = {:.0} tokens/s, {saved} pad tokens saved by pad-to-batch-max",
            em_obs::report::fmt_ns(step_ns),
            tokens as f64 / (step_ns as f64 / 1e9),
        );
        println!(
            "                 {opt_steps} optim.step spans, {} cumulative in the fused optimizer",
            em_obs::report::fmt_ns(opt_ns),
        );
    }
    println!();
    print!("{}", em_obs::report::render_summary(&records, 10));
}

fn overhead(suite: &[Benchmark], cfg: &EvalConfig) {
    // Warm-up: fault in the datasets and code paths once.
    em_obs::trace::set_capture(false);
    run_eval(suite, cfg);

    // Interleave off/on repetitions, alternating which side of each pair
    // runs first so thermal/scheduler drift cancels, and compare the
    // per-side *means*: single-run wall-clock noise on this pipeline is a
    // few percent — larger than the real tracing cost — but it is
    // zero-mean, so averaging the paired differences isolates the
    // systematic overhead.
    const REPS: usize = 7;
    let timed = |capture: bool| {
        em_obs::trace::set_capture(capture);
        let t = Instant::now();
        run_eval(suite, cfg);
        let ns = t.elapsed().as_nanos();
        // Keep the sink from accumulating across repetitions.
        em_obs::trace::set_capture(false);
        let _ = em_obs::trace::drain();
        ns
    };
    let mut offs = [0f64; REPS];
    let mut diffs = [0f64; REPS];
    for rep in 0..REPS {
        let first_on = rep % 2 == 1;
        let a = timed(first_on);
        let b = timed(!first_on);
        let (on, off) = if first_on { (a, b) } else { (b, a) };
        offs[rep] = off as f64;
        diffs[rep] = on as f64 - off as f64;
    }

    let mean_off = offs.iter().sum::<f64>() / REPS as f64;
    let mean_diff = diffs.iter().sum::<f64>() / REPS as f64;
    let var_diff =
        diffs.iter().map(|d| (d - mean_diff).powi(2)).sum::<f64>() / (REPS - 1) as f64;
    let stderr_pct = (var_diff / REPS as f64).sqrt() / mean_off * 100.0;
    let pct = mean_diff / mean_off * 100.0;
    println!(
        "capture off: {}   capture on: {}   overhead: {pct:+.2}% ± {stderr_pct:.2}% (budget < 2%)",
        em_obs::report::fmt_ns(mean_off as u64),
        em_obs::report::fmt_ns((mean_off + mean_diff) as u64),
    );
    // Single-run scheduler noise on this pipeline can exceed the real
    // probe cost by an order of magnitude, so the gate requires the
    // overhead to exceed the budget by more than two standard errors of
    // the paired differences — a genuine regression (probes on a hot
    // path) clears that bar immediately; zero-mean noise does not.
    if pct - 2.0 * stderr_pct >= 2.0 {
        println!("OVERHEAD BUDGET EXCEEDED");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    let mode = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_default();
    let scale = Scale::from_env();
    let suite = em_datagen::generate_suite(0);
    let cfg = scale.eval_config();
    match mode.as_str() {
        "" | "profile" => profile(&suite, &cfg, resume),
        "overhead" => overhead(&suite, &cfg),
        other => {
            eprintln!("unknown mode `{other}` (expected: profile | overhead) [--resume]");
            std::process::exit(2);
        }
    }
}
