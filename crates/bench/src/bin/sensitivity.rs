//! Matcher × perturbation sensitivity matrix (`SENSITIVITY.json`).
//!
//! Evaluates every matcher family on one labelled pair workload under the
//! clean serialization and under each `em_perturb::standard_suite` plan,
//! and reports per-cell precision/recall/F1 plus the delta against that
//! matcher's own clean baseline. The matrix answers the robustness
//! question the paper's single-serialization tables cannot: *which*
//! matchers degrade under *which* data errors and serialization ablations.
//!
//! Matcher families swept (full run):
//!
//! * **StringSim** — parameter-free string similarity;
//! * **ZeroER** — unsupervised GMM over similarity features (reads the
//!   raw records + column types, its documented restriction escape);
//! * **SLM** — the fine-tuned serving encoder behind `FrozenSlm`;
//! * **GPT-4 tier** — the pretrained hosted-LLM simulator via `MatchGpt`.
//!
//! Every `(matcher, perturbation)` cell is checkpointed to
//! `<out>.ckpt.jsonl` as soon as it completes (`em_core::checkpoint`
//! JSONL, torn-line tolerant); rerunning with `--resume` skips finished
//! cells and recomputes only the rest. The checkpoint is removed once the
//! final matrix is written.
//!
//! `--smoke` sweeps the 2 cheap matchers × 3 perturbations slice at small
//! scale for tier-1; the full run regenerates the checked-in
//! `SENSITIVITY.json`.

use em_bench::robustness::{
    raw_labeled_pairs, serve_attr_types, serve_schema_names, threads_json, train_serving_slm,
    SlmScale,
};
use em_core::{
    run_chunks, CheckpointLog, Confusion, EvalBatch, LabeledPair, Matcher, SensitivityRow,
};
use em_datagen::serve_relations;
use em_lm::config::LlmTier;
use em_lm::zoo::{pretrain_tier, PretrainCorpus};
use em_matchers::{DemoStrategy, MatchGpt, StringSim, ZeroEr};
use em_perturb::{standard_suite, PerturbPlan};
use em_serve::FrozenSlm;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The clean baseline's column label.
const CLEAN: &str = "clean";

type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;

/// One matcher family: a stable row label plus a factory producing a
/// fresh instance per cell (cells run in parallel; matchers are stateful).
struct Family {
    label: &'static str,
    factory: Factory,
}

fn fmt_pct(v: f64) -> String {
    format!("{v:.2}")
}

fn run(smoke: bool, resume: bool, out_path: &str) {
    let t_all = Instant::now();

    // --- Workload: raw labelled pairs, balanced, unseen by training. ----
    let (n_side, n_pos) = if smoke { (1_000, 150) } else { (8_000, 800) };
    let rels = serve_relations(n_side, n_side, 0.4, 31);
    let pairs: Vec<LabeledPair> = raw_labeled_pairs(&rels, n_pos, n_pos, 13);
    let labels: Vec<bool> = pairs.iter().map(|lp| lp.label).collect();
    let names = serve_schema_names();
    let types = serve_attr_types();
    println!(
        "sensitivity workload: {} pairs ({} positive) from {}x{} relations",
        pairs.len(),
        labels.iter().filter(|&&y| y).count(),
        n_side,
        n_side
    );

    // --- Perturbation columns: clean + the standard suite. --------------
    let mut plans: Vec<PerturbPlan> = vec![PerturbPlan::new(CLEAN, 5)];
    let suite = standard_suite(5, &names);
    if smoke {
        // The tier-1 slice: 3 perturbations spanning both ablation kinds
        // (serialization: attr-shuffle, name-value; data error: typo-2).
        plans.extend(
            suite
                .into_iter()
                .filter(|p| matches!(p.name(), "attr-shuffle" | "name-value" | "typo-2")),
        );
    } else {
        plans.extend(suite);
    }
    let t_batch = Instant::now();
    let batches: Vec<EvalBatch> = plans.iter().map(|p| p.eval_batch(&pairs, &types)).collect();
    println!(
        "rendered {} perturbed batches in {:.1}s",
        batches.len(),
        t_batch.elapsed().as_secs_f64()
    );

    // --- Matcher rows. ---------------------------------------------------
    let mut families: Vec<Family> = vec![
        Family {
            label: "strsim",
            factory: Box::new(|| Box::new(StringSim::new())),
        },
        Family {
            label: "zeroer",
            factory: Box::new(|| Box::new(ZeroEr::new())),
        },
    ];
    if !smoke {
        let (slm, tokenizer) = train_serving_slm(SlmScale::full(), 17);
        families.push(Family {
            label: "slm-64d",
            factory: Box::new(move || {
                Box::new(FrozenSlm::new("slm-64d", slm.clone(), tokenizer.clone()))
            }),
        });
        let train_rels = serve_relations(5_000, 5_000, 0.6, 1_007);
        let corpus = PretrainCorpus {
            pairs: em_bench::robustness::hard_labeled_pairs(&train_rels, 2_500, 2_500, 23),
        };
        let t_tier = Instant::now();
        let gpt = Arc::new(pretrain_tier(LlmTier::Gpt4, &corpus, 5));
        println!(
            "hosted tier: {} pretrained in {:.1}s",
            LlmTier::Gpt4.label(),
            t_tier.elapsed().as_secs_f64()
        );
        families.push(Family {
            label: "gpt4",
            factory: Box::new(move || {
                Box::new(MatchGpt::with_resilience(
                    gpt.clone(),
                    DemoStrategy::None,
                    None,
                    Box::new(StringSim::new()),
                ))
            }),
        });
    }

    // --- Checkpoint: resume finished cells, log new ones as they land. --
    let ckpt_path = PathBuf::from(format!("{out_path}.ckpt.jsonl"));
    let plan_names: HashSet<&str> = plans.iter().map(|p| p.name()).collect();
    let family_names: HashSet<&str> = families.iter().map(|f| f.label).collect();
    let mut rows: Vec<SensitivityRow> = if resume && ckpt_path.exists() {
        em_core::read_sensitivity_rows(&ckpt_path).expect("unreadable sensitivity checkpoint")
    } else {
        Vec::new()
    };
    // Rows from a different grid (e.g. a smoke checkpoint before a full
    // run) are not resumable cells of *this* sweep.
    rows.retain(|r| {
        family_names.contains(r.matcher.as_str()) && plan_names.contains(r.perturbation.as_str())
    });
    if !rows.is_empty() {
        println!("resume: {} finished cells carried over", rows.len());
    }
    let retained: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
    let log = CheckpointLog::create_lines(&ckpt_path, &retained).expect("checkpoint create");
    let have: HashSet<(String, String)> = rows
        .iter()
        .map(|r| (r.matcher.clone(), r.perturbation.clone()))
        .collect();
    let todo: Vec<(usize, usize)> = (0..families.len())
        .flat_map(|mi| (0..plans.len()).map(move |pi| (mi, pi)))
        .filter(|&(mi, pi)| {
            !have.contains(&(families[mi].label.to_string(), plans[pi].name().to_string()))
        })
        .collect();

    // --- The sweep: every remaining cell through the workqueue. ---------
    let t_sweep = Instant::now();
    let computed: Vec<SensitivityRow> = run_chunks(&todo, |&(mi, pi)| {
        let mut matcher = (families[mi].factory)();
        let preds = matcher
            .predict(&batches[pi])
            .unwrap_or_else(|e| panic!("{} on {}: {e}", families[mi].label, plans[pi].name()));
        let conf = Confusion::from_predictions(&preds, &labels).expect("length mismatch");
        let row = SensitivityRow {
            matcher: families[mi].label.to_string(),
            perturbation: plans[pi].name().to_string(),
            precision: conf.precision() * 100.0,
            recall: conf.recall() * 100.0,
            f1: conf.f1() * 100.0,
        };
        log.append_line(&row.to_json()).expect("checkpoint append");
        row
    })
    .expect("sensitivity sweep");
    println!(
        "swept {} cells in {:.1}s ({} resumed)",
        computed.len(),
        t_sweep.elapsed().as_secs_f64(),
        rows.len()
    );
    rows.extend(computed);

    // --- Assemble the matrix: rows ordered, deltas vs clean. ------------
    let cell = |m: &str, p: &str| -> &SensitivityRow {
        rows.iter()
            .find(|r| r.matcher == m && r.perturbation == p)
            .unwrap_or_else(|| panic!("missing cell ({m}, {p})"))
    };
    let mut matrix_json: Vec<String> = Vec::new();
    println!(
        "\n{:<10} {:<14} {:>7} {:>7} {:>7} {:>8}",
        "matcher", "perturbation", "P", "R", "F1", "dF1"
    );
    for fam in &families {
        let clean = cell(fam.label, CLEAN);
        assert!(
            clean.f1 > 20.0,
            "{}: degenerate clean baseline (F1 {:.1})",
            fam.label,
            clean.f1
        );
        let mut cells_json: Vec<String> = Vec::new();
        for plan in &plans {
            let r = cell(fam.label, plan.name());
            assert!(
                r.precision.is_finite() && r.recall.is_finite() && r.f1.is_finite(),
                "non-finite cell ({}, {})",
                fam.label,
                plan.name()
            );
            println!(
                "{:<10} {:<14} {:>7.2} {:>7.2} {:>7.2} {:>+8.2}",
                fam.label,
                plan.name(),
                r.precision,
                r.recall,
                r.f1,
                r.f1 - clean.f1
            );
            cells_json.push(format!(
                "{{ \"perturbation\": \"{}\", \"precision\": {}, \"recall\": {}, \"f1\": {}, \"delta_precision\": {}, \"delta_recall\": {}, \"delta_f1\": {} }}",
                plan.name(),
                fmt_pct(r.precision),
                fmt_pct(r.recall),
                fmt_pct(r.f1),
                fmt_pct(r.precision - clean.precision),
                fmt_pct(r.recall - clean.recall),
                fmt_pct(r.f1 - clean.f1),
            ));
        }
        matrix_json.push(format!(
            "{{ \"matcher\": \"{}\", \"clean_f1\": {}, \"cells\": [\n      {}\n    ] }}",
            fam.label,
            fmt_pct(clean.f1),
            cells_json.join(",\n      ")
        ));
    }

    // Acceptance shape: the checked-in artifact covers >= 4 matcher
    // families x >= 5 perturbations (the clean column is the baseline,
    // not a perturbation).
    if !smoke {
        assert!(families.len() >= 4, "matrix needs >= 4 matcher families");
        assert!(plans.len() - 1 >= 5, "matrix needs >= 5 perturbations");
    }

    println!("\n{}", em_obs::report::render_metrics());

    let perturb_names: Vec<String> = plans.iter().map(|p| format!("\"{}\"", p.name())).collect();
    let json = format!(
        "{{\n  \"workload\": \"matcher x perturbation sensitivity on serve_relations raw pairs\",\n  \"shape\": {{ \"n_left\": {n_side}, \"n_right\": {n_side}, \"match_fraction\": 0.4, \"relation_seed\": 31, \"pairs\": {}, \"positives\": {}, \"perturb_seed\": 5 }},\n  \"threads\": {},\n  \"metric_units\": \"percent\",\n  \"perturbations\": [{}],\n  \"matrix\": [\n    {}\n  ]\n}}\n",
        pairs.len(),
        n_pos,
        threads_json(),
        perturb_names.join(", "),
        matrix_json.join(",\n    ")
    );
    std::fs::write(out_path, json).expect("failed to write sensitivity matrix");
    let _ = std::fs::remove_file(&ckpt_path);
    println!(
        "wrote {out_path} ({} matchers x {} columns, {:.1}s total)",
        families.len(),
        plans.len(),
        t_all.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let resume = args.iter().any(|a| a == "--resume");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "SENSITIVITY.json".to_string());
    // Counters feed the perturb.* profile greps (scripts/profile_serve.sh).
    em_obs::trace::set_capture(true);
    run(smoke, resume, &out_path);
}
