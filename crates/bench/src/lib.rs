//! # em-bench — experiment harnesses
//!
//! One bench target per table and figure of the paper (run with
//! `cargo bench`), built on the shared [`study`] harness and the paper's
//! transcribed reference numbers in [`paper`].
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_datasets` | Table 1 (dataset statistics) |
//! | `figure2_lodo` | Figure 2 (leave-one-dataset-out methodology) |
//! | `table3_f1` | Table 3 (main cross-dataset F1 study) + Findings 5/6 |
//! | `table4_demos` | Table 4 (demonstration strategies) |
//! | `table5_throughput` | Table 5 (throughput simulation) |
//! | `table6_cost` | Table 6 (cost per 1K tokens) |
//! | `figure3_cost_quality` | Figure 3 (cost vs. quality) |
//! | `figure4_size_quality` | Figure 4 (size vs. quality) |
//! | `ablation_anymatch` / `ablation_ditto` | data-centric pipeline ablations |
//! | `micro_*` | Criterion micro-benchmarks of the substrates |
//!
//! Scale knobs: `EM_SEEDS` (default 2; the paper uses 5) and `EM_TEST_CAP`
//! (default 1250, the paper's cap).

pub mod paper;
pub mod robustness;
pub mod study;

pub use paper::{paper_row, paper_table3, paper_table4_means, PaperRow};
pub use study::{
    finding5_domain_overlap, finding6_skew_correlation, format_row, matchgpt_from_env,
    parse_results_csv, parsed_mean, reports_to_csv, results_path, table3_header, Scale,
    StudyContext,
};
