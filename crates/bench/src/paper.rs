//! The paper's published numbers, transcribed from Tables 3 and 4, used by
//! the harnesses to print paper-vs-measured comparisons.

/// One Table 3 row: matcher label, claimed parameter count (millions, None
/// for parameter-free), the 11 per-dataset mean F1 scores (Table 1 order)
/// and the macro mean. `seen` marks the bracketed (non-cross-dataset)
/// entries.
#[derive(Debug, Clone)]
pub struct PaperRow {
    /// Matcher label as printed.
    pub label: &'static str,
    /// Claimed parameter count in millions.
    pub params_millions: Option<f64>,
    /// Per-dataset means, Table 1 order (ABT..WAAM).
    pub f1: [f64; 11],
    /// Bracket flags (Jellyfish's seen datasets).
    pub seen: [bool; 11],
    /// Macro mean.
    pub mean: f64,
}

const NO_BRACKETS: [bool; 11] = [false; 11];

/// Table 3 of the paper.
pub fn paper_table3() -> Vec<PaperRow> {
    vec![
        PaperRow {
            label: "StringSim",
            params_millions: None,
            f1: [
                32.2, 32.5, 73.7, 59.8, 22.5, 45.9, 36.9, 33.6, 50.9, 62.7, 28.0,
            ],
            seen: NO_BRACKETS,
            mean: 43.5,
        },
        PaperRow {
            label: "ZeroER",
            params_millions: None,
            f1: [
                37.6, 41.2, 93.7, 59.1, 93.9, 88.2, 23.3, 61.9, 10.8, 79.7, 38.7,
            ],
            seen: NO_BRACKETS,
            mean: 57.1,
        },
        PaperRow {
            label: "Ditto",
            params_millions: Some(110.0),
            f1: [
                67.8, 43.1, 94.4, 69.7, 92.5, 78.5, 59.4, 89.1, 65.7, 79.1, 62.4,
            ],
            seen: NO_BRACKETS,
            mean: 72.9,
        },
        PaperRow {
            label: "Unicorn",
            params_millions: Some(143.0),
            f1: [
                87.8, 71.9, 90.6, 86.4, 86.8, 95.2, 64.0, 80.2, 65.8, 90.1, 71.9,
            ],
            seen: NO_BRACKETS,
            mean: 81.0,
        },
        PaperRow {
            label: "AnyMatch [GPT-2]",
            params_millions: Some(124.0),
            f1: [
                76.5, 60.3, 95.2, 85.7, 96.4, 95.1, 55.9, 91.2, 85.0, 89.3, 66.0,
            ],
            seen: NO_BRACKETS,
            mean: 81.5,
        },
        PaperRow {
            label: "AnyMatch [T5]",
            params_millions: Some(220.0),
            f1: [
                76.0, 55.4, 96.4, 75.0, 95.4, 95.5, 64.4, 89.2, 79.6, 72.0, 65.5,
            ],
            seen: NO_BRACKETS,
            mean: 78.6,
        },
        PaperRow {
            label: "AnyMatch [LLaMA3.2]",
            params_millions: Some(1_300.0),
            f1: [
                89.3, 69.4, 96.5, 89.8, 99.6, 98.2, 69.3, 95.3, 82.3, 95.9, 77.2,
            ],
            seen: NO_BRACKETS,
            mean: 87.5,
        },
        PaperRow {
            label: "Jellyfish",
            params_millions: Some(13_000.0),
            f1: [
                79.2, 73.0, 97.7, 93.4, 97.3, 99.1, 72.1, 90.1, 51.4, 97.0, 81.4,
            ],
            seen: [
                false, false, true, true, true, false, true, true, true, false, false,
            ],
            mean: 84.7,
        },
        PaperRow {
            label: "MatchGPT [Mixtral-8x7B]",
            params_millions: Some(56_000.0),
            f1: [
                80.7, 69.5, 92.2, 71.4, 88.6, 91.0, 28.1, 75.9, 53.8, 86.0, 68.8,
            ],
            seen: NO_BRACKETS,
            mean: 73.3,
        },
        PaperRow {
            label: "MatchGPT [SOLAR]",
            params_millions: Some(70_000.0),
            f1: [
                76.4, 76.6, 93.9, 51.2, 85.4, 97.1, 31.4, 78.8, 67.3, 81.8, 74.6,
            ],
            seen: NO_BRACKETS,
            mean: 74.0,
        },
        PaperRow {
            label: "MatchGPT [Beluga2]",
            params_millions: Some(70_000.0),
            f1: [
                79.9, 78.6, 91.4, 79.1, 86.5, 96.0, 47.6, 83.5, 55.6, 90.8, 77.1,
            ],
            seen: NO_BRACKETS,
            mean: 78.7,
        },
        PaperRow {
            label: "MatchGPT [GPT-4o-Mini]",
            params_millions: Some(8_000.0),
            f1: [
                87.2, 88.4, 94.3, 87.4, 90.8, 98.1, 60.7, 67.5, 69.6, 95.7, 82.9,
            ],
            seen: NO_BRACKETS,
            mean: 83.9,
        },
        PaperRow {
            label: "MatchGPT [GPT-3.5-Turbo]",
            params_millions: Some(175_000.0),
            f1: [
                75.8, 81.9, 82.8, 62.0, 76.0, 86.6, 39.8, 46.6, 38.2, 70.7, 66.0,
            ],
            seen: NO_BRACKETS,
            mean: 66.0,
        },
        PaperRow {
            label: "MatchGPT [GPT-4]",
            params_millions: Some(1_760_000.0),
            f1: [
                92.4, 89.1, 96.0, 87.9, 95.1, 97.9, 75.0, 82.5, 62.9, 97.2, 85.1,
            ],
            seen: NO_BRACKETS,
            mean: 87.4,
        },
    ]
}

/// Table 4 of the paper: per-model, per-strategy macro means
/// (none / hand-picked / random-selected).
pub fn paper_table4_means() -> Vec<(&'static str, [f64; 3])> {
    vec![
        ("GPT-4o-mini", [83.9, 82.6, 83.8]),
        ("GPT-3.5-Turbo", [66.0, 58.8, 67.1]),
        ("GPT-4", [87.4, 88.3, 88.4]),
    ]
}

/// Looks up a paper Table 3 row by its label.
pub fn paper_row(label: &str) -> Option<PaperRow> {
    paper_table3().into_iter().find(|r| r.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::macro_average;

    #[test]
    fn fourteen_rows() {
        assert_eq!(paper_table3().len(), 14);
    }

    #[test]
    fn transcribed_means_are_consistent() {
        // The macro average of the transcribed per-dataset scores must
        // reproduce the paper's Mean column (±0.15 for rounding).
        for row in paper_table3() {
            let mean = macro_average(&row.f1);
            assert!(
                (mean - row.mean).abs() < 0.15,
                "{}: recomputed {mean:.2} vs printed {}",
                row.label,
                row.mean
            );
        }
    }

    #[test]
    fn jellyfish_brackets_six_datasets() {
        let j = paper_row("Jellyfish").unwrap();
        assert_eq!(j.seen.iter().filter(|&&s| s).count(), 6);
    }

    #[test]
    fn anymatch_llama_edges_out_gpt4() {
        // The paper's headline: 87.5 vs 87.4.
        let any = paper_row("AnyMatch [LLaMA3.2]").unwrap();
        let gpt4 = paper_row("MatchGPT [GPT-4]").unwrap();
        assert!(any.mean > gpt4.mean);
    }

    #[test]
    fn table4_shows_demo_harm_except_gpt4() {
        for (model, [none, hand, random]) in paper_table4_means() {
            if model == "GPT-4" {
                assert!(hand > none && random > none);
            } else {
                assert!(hand < none, "{model}");
                let _ = random;
            }
        }
    }
}
