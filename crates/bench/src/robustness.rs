//! Shared plumbing for the perturbation-robustness harnesses
//! (`sensitivity` and `drift_serve` bins).
//!
//! Both bins evaluate matchers on `em_datagen::serve_relations` workloads
//! under `em-perturb` plans. What they share lives here: the workload
//! schema, a *raw* labelled-pair sampler (perturbation operates on
//! records, so the usual pre-serialized `labeled_pairs` view is useless
//! to it), the hard-negative miner, and the serving SLM fine-tune.

use em_blocking::{Blocker, CandidatePair, TokenBlocker};
use em_core::{LabeledPair, SerializedPair, Serializer};
use em_datagen::{serve_relations, ServeRelations};
use em_lm::config::ModelConfig;
use em_lm::model::EncoderClassifier;
use em_lm::tokenizer::{encode_pair, Encoded, HashTokenizer};
use em_lm::{predict_proba, train, TrainConfig};
use em_nn::threadpool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::Instant;

use em_core::record::AttrType;

/// Attribute names of the `serve_relations` schema, in column order —
/// what the `name-value` serialization ablation renders.
pub fn serve_schema_names() -> Vec<String> {
    vec!["title".into(), "category".into(), "price".into()]
}

/// Attribute types of the `serve_relations` schema (ZeroER reads these).
pub fn serve_attr_types() -> Vec<AttrType> {
    vec![AttrType::ShortText, AttrType::ShortText, AttrType::Numeric]
}

/// The serving blocker shared with `bench_serve` (also used here to mine
/// hard training negatives).
pub fn serve_blocker() -> TokenBlocker {
    TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    }
}

/// Labelled *raw* record pairs: positives are true matches, negatives are
/// *hard* — non-matching candidates that survive blocking (they share
/// identity tokens) — topped up with uniform random cross pairs.
/// Perturbation plans consume records, not serializations, so this is the
/// sampler the sensitivity matrix is built on. Deterministic in `seed`.
pub fn raw_labeled_pairs(
    rels: &ServeRelations,
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> Vec<LabeledPair> {
    let truth: HashSet<(usize, usize)> = rels.matches.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_7770_6169_7273);
    let mut pos: Vec<&(usize, usize)> = rels.matches.iter().collect();
    pos.shuffle(&mut rng);
    let mut out: Vec<LabeledPair> = pos
        .iter()
        .take(n_pos)
        .map(|&&(i, j)| LabeledPair::new(rels.left[i].clone(), rels.right[j].clone(), true))
        .collect();
    let mut hard: Vec<CandidatePair> = serve_blocker()
        .candidates(&rels.left, &rels.right)
        .into_iter()
        .filter(|c| !truth.contains(c))
        .collect();
    hard.shuffle(&mut rng);
    hard.truncate(n_neg);
    let mut drawn = hard.len();
    out.extend(
        hard.into_iter()
            .map(|(i, j)| LabeledPair::new(rels.left[i].clone(), rels.right[j].clone(), false)),
    );
    while drawn < n_neg {
        let i = rng.gen_range(0..rels.left.len());
        let j = rng.gen_range(0..rels.right.len());
        if truth.contains(&(i, j)) {
            continue;
        }
        out.push(LabeledPair::new(
            rels.left[i].clone(),
            rels.right[j].clone(),
            false,
        ));
        drawn += 1;
    }
    out.shuffle(&mut rng);
    out
}

/// Labelled serialized pairs with *hard* negatives — non-matching
/// candidates that survive blocking — mirroring `bench_serve`'s training
/// distribution for the cascade models.
pub fn hard_labeled_pairs(
    rels: &ServeRelations,
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> Vec<(SerializedPair, bool)> {
    let ser = Serializer::identity(rels.arity());
    let truth: HashSet<CandidatePair> = rels.matches.iter().copied().collect();
    let mut hard: Vec<CandidatePair> = serve_blocker()
        .candidates(&rels.left, &rels.right)
        .into_iter()
        .filter(|c| !truth.contains(c))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6861_7264);
    hard.shuffle(&mut rng);
    hard.truncate(n_neg);
    let mut out = em_datagen::labeled_pairs(rels, n_pos, n_neg - hard.len(), seed);
    out.extend(hard.into_iter().map(|(i, j)| {
        (
            SerializedPair {
                left: ser.record(&rels.left[i]).into(),
                right: ser.record(&rels.right[j]).into(),
            },
            false,
        )
    }));
    out.shuffle(&mut rng);
    out
}

/// How much work [`train_serving_slm`] does; the smoke profiles keep
/// tier-1 fast, the full profile matches `bench_serve`'s quality bar.
#[derive(Debug, Clone, Copy)]
pub struct SlmScale {
    /// Records per side of the training relations.
    pub relation_size: usize,
    /// Positives (and negatives) in the fine-tune set.
    pub train_pairs: usize,
    /// Fine-tune epochs.
    pub epochs: usize,
    /// Holdout accuracy the model must clear before it may serve.
    pub accuracy_gate: f64,
}

impl SlmScale {
    /// The `bench_serve` profile.
    pub fn full() -> Self {
        SlmScale {
            relation_size: 5_000,
            train_pairs: 1_500,
            epochs: 3,
            accuracy_gate: 0.8,
        }
    }

    /// A reduced profile for `--smoke` runs.
    pub fn smoke() -> Self {
        SlmScale {
            relation_size: 2_000,
            train_pairs: 700,
            epochs: 2,
            accuracy_gate: 0.75,
        }
    }
}

/// Fine-tunes the serving SLM on a separately-seeded relations instance
/// (seed 1 007 — never a serving seed) and gates it on held-out accuracy.
pub fn train_serving_slm(scale: SlmScale, seed: u64) -> (EncoderClassifier, HashTokenizer) {
    let cfg = ModelConfig {
        vocab: 4096,
        d_model: 64,
        n_layers: 2,
        n_heads: 4,
        ff_mult: 2,
        max_seq: 48,
        dropout: 0.0,
        claimed_params_millions: 0.5,
    };
    let tokenizer = HashTokenizer::new(cfg.vocab);
    let rels = serve_relations(scale.relation_size, scale.relation_size, 0.6, 1_007);
    let train_pairs = hard_labeled_pairs(&rels, scale.train_pairs, scale.train_pairs, 11);
    let holdout = hard_labeled_pairs(&rels, 300, 300, 97);
    let encode = |pairs: &[(SerializedPair, bool)]| -> Vec<(Encoded, bool)> {
        pairs
            .iter()
            .map(|(p, y)| (encode_pair(&tokenizer, p, cfg.max_seq), *y))
            .collect()
    };
    let mut model = EncoderClassifier::new(cfg, seed);
    let t0 = Instant::now();
    let report = train(
        &mut model,
        &encode(&train_pairs),
        &TrainConfig {
            epochs: scale.epochs,
            seed,
            ..Default::default()
        },
    );
    let held: Vec<(Encoded, bool)> = encode(&holdout);
    let encoded: Vec<Encoded> = held.iter().map(|(e, _)| e.clone()).collect();
    let scores = predict_proba(&model, &encoded, 64);
    let correct = scores
        .iter()
        .zip(&held)
        .filter(|(s, (_, y))| (**s >= 0.5) == *y)
        .count();
    let acc = correct as f64 / held.len() as f64;
    println!(
        "SLM fine-tune: {} examples, {} steps, final loss {:.4}, holdout accuracy {:.3} ({:.1}s)",
        train_pairs.len(),
        report.steps,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        acc,
        t0.elapsed().as_secs_f64()
    );
    assert!(
        acc > scale.accuracy_gate,
        "fine-tuned SLM failed its holdout gate: accuracy {acc:.3}"
    );
    (model, tokenizer)
}

/// The `threads` JSON block shared by all bench bins.
pub fn threads_json() -> String {
    let s = threadpool::budget_snapshot();
    format!(
        "{{ \"em_num_threads\": {}, \"available_parallelism\": {}, \"effective_budget\": {}, \"reservation_probe_extra\": {} }}",
        s.env_threads.map_or_else(|| "null".to_string(), |v| v.to_string()),
        s.available_parallelism,
        s.effective,
        s.probe_grant
    )
}

/// Precision/recall/F1 of predicted match positions against ground truth.
pub fn prf(matches: &[(usize, usize)], truth: &HashSet<(usize, usize)>) -> (f64, f64, f64) {
    let tp = matches.iter().filter(|m| truth.contains(m)).count();
    let p = tp as f64 / matches.len().max(1) as f64;
    let r = tp as f64 / truth.len().max(1) as f64;
    let f1 = if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    };
    (p, r, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_pairs_are_labeled_and_deterministic() {
        let rels = serve_relations(200, 200, 0.5, 3);
        let a = raw_labeled_pairs(&rels, 30, 30, 9);
        let b = raw_labeled_pairs(&rels, 30, 30, 9);
        assert_eq!(a.len(), 60);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|lp| lp.label).count(), 30);
        let truth: HashSet<(usize, usize)> = rels.matches.iter().copied().collect();
        // Positives really are matches: their record ids correspond to a
        // truth pair (right ids carry the datagen offset).
        assert!(!truth.is_empty());
    }

    #[test]
    fn schema_matches_relations_arity() {
        let rels = serve_relations(10, 10, 0.5, 1);
        assert_eq!(serve_schema_names().len(), rels.arity());
        assert_eq!(serve_attr_types().len(), rels.arity());
    }
}
