//! The study harness: benchmark/corpus construction, the full matcher
//! roster, the Table 3 / Table 4 runners, and the Findings 5/6 statistics.

use em_core::stats::{spearman, welch_t_test, TTest};
use em_core::{
    evaluate_matcher, macro_average, spec_of, DatasetId, EvalConfig, EvalReport, Matcher, MeanStd,
};
use em_lm::{pretrain_tier, LlmTier, PretrainCorpus, PretrainedLlm};
use em_matchers::{
    AnyMatch, AnyMatchBackbone, DemoStrategy, Ditto, Jellyfish, MatchGpt, StringSim, Unicorn,
    ZeroEr,
};
use std::sync::Arc;

/// Scale of a study run. The paper uses five seeds and a 1,250-pair test
/// cap; the default harness scale trades seeds for single-core wall-clock
/// and is overridable via the `EM_SEEDS` / `EM_TEST_CAP` environment
/// variables.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Repetition seeds.
    pub seeds: u64,
    /// Test-set cap per dataset.
    pub test_cap: usize,
    /// Pretraining corpus size for the frozen tiers and backbones.
    pub corpus_size: usize,
}

impl Scale {
    /// Default harness scale (2 seeds; paper protocol uses 5).
    pub fn default_scale() -> Scale {
        Scale {
            seeds: 2,
            test_cap: 1_250,
            corpus_size: 14_000,
        }
    }

    /// Reads the scale from the environment (`EM_SEEDS`, `EM_TEST_CAP`).
    pub fn from_env() -> Scale {
        let mut s = Scale::default_scale();
        if let Ok(v) = std::env::var("EM_SEEDS") {
            if let Ok(n) = v.parse() {
                s.seeds = n;
            }
        }
        if let Ok(v) = std::env::var("EM_TEST_CAP") {
            if let Ok(n) = v.parse() {
                s.test_cap = n;
            }
        }
        s
    }

    /// Evaluation configuration for this scale.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig::quick(self.seeds, self.test_cap)
    }
}

/// Everything a study run needs: the generated benchmark suite, the
/// pretraining corpus, and lazily constructed frozen tiers.
pub struct StudyContext {
    /// The 11 generated benchmarks.
    pub suite: Vec<em_core::Benchmark>,
    /// Pretraining corpus for tiers and backbones.
    pub corpus: PretrainCorpus,
    /// Run scale.
    pub scale: Scale,
}

impl StudyContext {
    /// Builds the context: generates the 11 benchmarks (seed 0 — the data
    /// itself is fixed across repetitions, like the real benchmark files)
    /// and the disjoint pretraining corpus.
    pub fn new(scale: Scale) -> StudyContext {
        StudyContext {
            suite: em_datagen::generate_suite(0),
            corpus: PretrainCorpus {
                pairs: em_datagen::pretrain_corpus(scale.corpus_size, 0),
            },
            scale,
        }
    }

    /// Pretrains one frozen tier (expensive; share the result).
    pub fn tier(&self, tier: LlmTier) -> Arc<PretrainedLlm> {
        Arc::new(pretrain_tier(tier, &self.corpus, 0))
    }

    /// The full Table 3 roster in the paper's row order.
    pub fn table3_roster(&self) -> Vec<Box<dyn Matcher>> {
        let mut roster: Vec<Box<dyn Matcher>> = vec![
            Box::new(StringSim::new()),
            Box::new(ZeroEr::new()),
            Box::new(Ditto::pretrained(&self.corpus)),
            Box::new(Unicorn::pretrained(&self.corpus)),
            Box::new(AnyMatch::pretrained(AnyMatchBackbone::Gpt2, &self.corpus)),
            Box::new(AnyMatch::pretrained(AnyMatchBackbone::T5, &self.corpus)),
            Box::new(AnyMatch::pretrained(
                AnyMatchBackbone::Llama32,
                &self.corpus,
            )),
            Box::new(Jellyfish::pretrained(&self.corpus)),
        ];
        for tier in LlmTier::ALL {
            roster.push(Box::new(matchgpt_from_env(
                self.tier(tier),
                DemoStrategy::None,
            )));
        }
        roster
    }

    /// Runs one matcher over the full LODO protocol.
    pub fn run(&self, matcher: &mut dyn Matcher) -> EvalReport {
        evaluate_matcher(matcher, &self.suite, &self.scale.eval_config())
            .expect("evaluation failed")
    }
}

/// Builds a MatchGPT instance honouring the `EM_FAULTS` environment
/// contract: when a fault plan is configured the matcher goes through the
/// resilient hosted client (retry/backoff/circuit-breaker, with the
/// string-similarity tier registered as degradation fallback); without
/// `EM_FAULTS` it uses the historical direct path. Every study harness
/// that constructs MatchGPT should come through here so a chaos run needs
/// nothing but the environment variable.
pub fn matchgpt_from_env(llm: Arc<PretrainedLlm>, strategy: DemoStrategy) -> MatchGpt {
    match em_faults::FaultPlan::from_env() {
        Some(plan) => {
            MatchGpt::with_resilience(llm, strategy, Some(plan), Box::new(StringSim::new()))
        }
        None => MatchGpt::with_llm(llm, strategy),
    }
}

/// Renders a Table 3-style row: per-dataset `mean±std` cells (bracketed
/// when seen during training) plus the Mean column.
pub fn format_row(report: &EvalReport) -> String {
    let mut cells = Vec::with_capacity(report.scores.len() + 1);
    for s in &report.scores {
        let cell = format!("{}", s.summary());
        cells.push(if s.seen_in_training {
            format!("({cell})")
        } else {
            cell
        });
    }
    cells.push(format!("{}", report.mean_column()));
    format!(
        "{:<26} {:>10} {}",
        report.matcher,
        report
            .params_millions
            .map(|p| format!("{p:.0}"))
            .unwrap_or_else(|| "-".into()),
        cells.iter().map(|c| format!("{c:>12}")).collect::<String>()
    )
}

/// Table 3 header line.
pub fn table3_header() -> String {
    let mut cells: Vec<String> = DatasetId::ALL.iter().map(|d| d.code().to_owned()).collect();
    cells.push("Mean".into());
    format!(
        "{:<26} {:>10} {}",
        "Matcher",
        "#params(M)",
        cells.iter().map(|c| format!("{c:>12}")).collect::<String>()
    )
}

/// Finding 5: Welch t-test of normalized F1 between datasets with and
/// without a same-domain sibling. Normalization subtracts a reference
/// matcher's per-dataset mean (the paper uses MatchGPT [GPT-3.5-Turbo]).
pub fn finding5_domain_overlap(reports: &[EvalReport], reference: &EvalReport) -> Option<TTest> {
    let ref_means: Vec<f64> = reference.scores.iter().map(|s| s.summary().mean).collect();
    let mut with_sibling = Vec::new();
    let mut without = Vec::new();
    for report in reports {
        for (i, score) in report.scores.iter().enumerate() {
            if score.seen_in_training {
                continue;
            }
            let norm = score.summary().mean - ref_means[i];
            if score.dataset.has_domain_sibling() {
                with_sibling.push(norm);
            } else {
                without.push(norm);
            }
        }
    }
    welch_t_test(&with_sibling, &without)
}

/// Finding 6: Spearman correlation between per-dataset F1 and the label
/// imbalance rate, for one matcher.
pub fn finding6_skew_correlation(report: &EvalReport) -> Option<f64> {
    let f1: Vec<f64> = report.scores.iter().map(|s| s.summary().mean).collect();
    let skew: Vec<f64> = report
        .scores
        .iter()
        .map(|s| spec_of(s.dataset).positive_rate())
        .collect();
    spearman(&f1, &skew)
}

/// Serializes Table 3 results to a simple CSV (matcher, params, dataset,
/// mean, std, seen) so the figure harnesses can reuse an expensive run.
pub fn reports_to_csv(reports: &[EvalReport]) -> String {
    let mut out = String::from("matcher,params_millions,dataset,mean,std,seen\n");
    for r in reports {
        for s in &r.scores {
            let m = s.summary();
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4},{}\n",
                r.matcher,
                r.params_millions.unwrap_or(f64::NAN),
                s.dataset.code(),
                m.mean,
                m.std,
                s.seen_in_training
            ));
        }
    }
    out
}

/// One parsed per-dataset result: `(dataset, mean F1, seen-in-training)`.
pub type ParsedRow = (DatasetId, f64, bool);

/// Parses the CSV written by [`reports_to_csv`] into
/// `(matcher, params, per-dataset rows)` tuples.
pub fn parse_results_csv(csv: &str) -> Vec<(String, Option<f64>, Vec<ParsedRow>)> {
    let mut by_matcher: Vec<(String, Option<f64>, Vec<ParsedRow>)> = Vec::new();
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            continue;
        }
        let matcher = fields[0].to_owned();
        let params = fields[1].parse::<f64>().ok().filter(|p| p.is_finite());
        let Some(ds) = DatasetId::parse(fields[2]) else {
            continue;
        };
        let Ok(mean) = fields[3].parse::<f64>() else {
            continue;
        };
        let seen = fields[5] == "true";
        match by_matcher.iter_mut().find(|(m, _, _)| *m == matcher) {
            Some((_, _, rows)) => rows.push((ds, mean, seen)),
            None => by_matcher.push((matcher, params, vec![(ds, mean, seen)])),
        }
    }
    by_matcher
}

/// Macro mean over a parsed matcher's rows, excluding seen datasets when
/// `fair` is set.
pub fn parsed_mean(rows: &[ParsedRow], fair: bool) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|(_, _, seen)| !fair || !seen)
        .map(|(_, m, _)| *m)
        .collect();
    macro_average(&vals)
}

/// Location of the Table 3 results CSV shared between harnesses.
pub fn results_path() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("EM_RESULTS_DIR").unwrap_or_else(|_| "target/em-results".into()),
    )
    .join("table3.csv")
}

/// Pretty mean±std helper for Table 4 cells.
pub fn fmt_ms(ms: MeanStd) -> String {
    format!("{:>9}", format!("{ms}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{DatasetScore, EvalReport};

    fn fake_report(name: &str, base: f64) -> EvalReport {
        EvalReport {
            matcher: name.into(),
            params_millions: Some(100.0),
            scores: DatasetId::ALL
                .iter()
                .enumerate()
                .map(|(i, &d)| DatasetScore {
                    dataset: d,
                    per_seed_f1: vec![base + i as f64, base + i as f64 + 1.0],
                    seen_in_training: false,
                    degraded: false,
                })
                .collect(),
        }
    }

    #[test]
    fn scale_env_parsing_defaults() {
        let s = Scale::default_scale();
        assert_eq!(s.test_cap, 1_250);
        assert!(s.seeds >= 1);
    }

    #[test]
    fn csv_round_trips() {
        let reports = vec![fake_report("A", 50.0), fake_report("B", 70.0)];
        let csv = reports_to_csv(&reports);
        let parsed = parse_results_csv(&csv);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "A");
        assert_eq!(parsed[0].2.len(), 11);
        let mean_a = parsed_mean(&parsed[0].2, false);
        assert!((mean_a - reports[0].mean_column().mean).abs() < 0.01);
    }

    #[test]
    fn finding6_detects_no_strong_skew_link() {
        // A synthetic report whose F1 is unrelated to skew.
        let r = fake_report("X", 60.0);
        let rho = finding6_skew_correlation(&r).unwrap();
        assert!(rho.abs() <= 1.0);
    }

    #[test]
    fn finding5_runs_on_fake_reports() {
        let reports = vec![fake_report("A", 50.0), fake_report("B", 70.0)];
        let reference = fake_report("ref", 60.0);
        let t = finding5_domain_overlap(&reports, &reference).unwrap();
        assert!(t.p_two_sided >= 0.0 && t.p_two_sided <= 1.0);
    }

    #[test]
    fn header_and_rows_align() {
        let header = table3_header();
        let row = format_row(&fake_report("SomeMatcher", 55.0));
        // Both carry 14 whitespace-separated fields (matcher, params, 11
        // datasets, mean). `±` is multi-byte, so compare char counts.
        assert_eq!(header.split_whitespace().count(), 14);
        assert_eq!(row.split_whitespace().count(), 14);
        assert_eq!(header.chars().count(), row.chars().count());
    }
}
