//! The reusable blocking index.
//!
//! Blocking was the serving pipeline's bottleneck after PR 7: tokenizing
//! 200k records, building a `HashMap<String, Vec<usize>>` inverted index
//! and accumulating shared-feature counts in a global
//! `HashMap<(i, j), usize>` ran single-threaded in ~21s at 100k×100k —
//! half the cold run — and ran *again* on every warm run. This module
//! replaces that path with a persistent, relation-scoped
//! [`RelationIndex`]:
//!
//! * **Parallel build.** Text rendering, tokenization and q-gram
//!   extraction fan out in fixed 512-record chunks over the shared
//!   `em_nn::threadpool` budget via [`em_core::run_chunks`] (results are
//!   collected in item order, so the extracted features are identical at
//!   any thread count). Features are interned to dense `u32` ids in
//!   record order and postings are laid out flat with a counting sort —
//!   no per-token allocation, postings ascending by construction.
//! * **Banded parallel probe.** The candidate loop partitions the left
//!   relation into fixed 1024-record bands; each band counts shared
//!   features in a dense `Vec<u32>` accumulator (a touched-list reset
//!   keeps it O(work), not O(n_right) per record) and emits its pairs
//!   already sorted. Band outputs are concatenated in band order, so the
//!   result is bitwise-identical to the sequential reference at 1, 2 or
//!   8 threads — the same equivalence discipline as the GEMM, attention
//!   and optimizer kernels (DESIGN.md §5/§8).
//! * **Reuse.** An index depends only on its relation's records (plus the
//!   feature configuration), so callers — notably
//!   `em_serve::ServePipeline` — build it once per store generation and
//!   probe it on every run.
//!
//! Observability: `block.index_build` / `block.probe` spans,
//! `block.postings` (posting entries built), `block.stopped_tokens`
//! (features cut by the document-frequency threshold) and
//! `block.candidates_raw` (pairs sharing ≥ 1 feature, before the
//! `min_shared` filter) counters.

use crate::{record_text, stop_threshold, CandidatePair};
use em_core::{run_chunks, Record};
use std::collections::HashMap;

/// Fixed record-chunk size for parallel feature extraction.
const EXTRACT_CHUNK: usize = 512;

/// Fixed left-relation band width for the parallel probe. Band boundaries
/// are independent of the thread count, and band outputs merge in band
/// order, so the candidate vector never depends on the worker budget.
const PROBE_BAND: usize = 1024;

/// Which features a [`RelationIndex`] must extract for a blocker family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexConfig {
    /// Keep the full-text rendering (sorted-neighbourhood sort keys).
    pub texts: bool,
    /// Build word-token postings (token blocking).
    pub tokens: bool,
    /// Build q-gram postings over the key attribute, for this `q`.
    pub qgrams: Option<usize>,
}

impl IndexConfig {
    /// No features at all (for blockers that ignore the index).
    pub fn none() -> Self {
        IndexConfig::default()
    }

    /// `true` when an index built with `self` satisfies `needed`.
    pub fn covers(&self, needed: &IndexConfig) -> bool {
        (!needed.texts || self.texts)
            && (!needed.tokens || self.tokens)
            && match needed.qgrams {
                None => true,
                Some(q) => self.qgrams == Some(q),
            }
    }
}

/// Interned per-record features plus flat inverted postings for one
/// relation. Postings are ascending record indices; per-record feature
/// lists hold each feature once (extraction dedups).
pub struct FeatureTable {
    /// Feature string → dense id, assigned first-seen in record order.
    ids: HashMap<String, u32>,
    /// Per-record feature-id ranges into `rec_feats` (len `n + 1`).
    rec_offsets: Vec<u32>,
    /// Flattened per-record feature ids.
    rec_feats: Vec<u32>,
    /// Per-feature posting ranges into `postings` (len `vocab + 1`).
    post_offsets: Vec<u32>,
    /// Flattened postings: ascending record indices per feature.
    postings: Vec<u32>,
}

impl FeatureTable {
    /// Builds the table from per-record (sorted, deduped) feature strings.
    fn build(per_record: Vec<Vec<String>>) -> Self {
        let n = per_record.len();
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut rec_offsets = Vec::with_capacity(n + 1);
        rec_offsets.push(0u32);
        let mut rec_feats: Vec<u32> = Vec::new();
        for feats in per_record {
            for f in feats {
                let next = ids.len() as u32;
                let id = *ids.entry(f).or_insert(next);
                rec_feats.push(id);
            }
            rec_offsets.push(rec_feats.len() as u32);
        }
        // Counting sort of (feature, record) into flat postings; records
        // are visited in order, so every posting list ends up ascending.
        let vocab = ids.len();
        let mut counts = vec![0u32; vocab];
        for &id in &rec_feats {
            counts[id as usize] += 1;
        }
        let mut post_offsets = vec![0u32; vocab + 1];
        for v in 0..vocab {
            post_offsets[v + 1] = post_offsets[v] + counts[v];
        }
        let mut cursor: Vec<u32> = post_offsets[..vocab].to_vec();
        let mut postings = vec![0u32; rec_feats.len()];
        for rec in 0..n {
            for k in rec_offsets[rec] as usize..rec_offsets[rec + 1] as usize {
                let id = rec_feats[k] as usize;
                postings[cursor[id] as usize] = rec as u32;
                cursor[id] += 1;
            }
        }
        FeatureTable {
            ids,
            rec_offsets,
            rec_feats,
            post_offsets,
            postings,
        }
    }

    /// Number of distinct features.
    pub fn vocab(&self) -> usize {
        self.ids.len()
    }

    /// Total posting entries (== total per-record feature occurrences).
    pub fn n_postings(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency of feature `id` in this relation.
    #[inline]
    pub fn df(&self, id: u32) -> usize {
        (self.post_offsets[id as usize + 1] - self.post_offsets[id as usize]) as usize
    }

    /// Dense id of `feature`, if present.
    #[inline]
    pub fn lookup(&self, feature: &str) -> Option<u32> {
        self.ids.get(feature).copied()
    }

    /// Feature ids of record `i`.
    #[inline]
    fn record_features(&self, i: usize) -> &[u32] {
        &self.rec_feats[self.rec_offsets[i] as usize..self.rec_offsets[i + 1] as usize]
    }

    /// Ascending record indices containing feature `id`.
    #[inline]
    fn posting(&self, id: u32) -> &[u32] {
        &self.postings[self.post_offsets[id as usize] as usize
            ..self.post_offsets[id as usize + 1] as usize]
    }
}

/// A relation's blocking features, built once and probed many times.
pub struct RelationIndex {
    n: usize,
    texts: Option<Vec<String>>,
    tokens: Option<FeatureTable>,
    qgrams: Option<(usize, FeatureTable)>,
    config: IndexConfig,
}

impl RelationIndex {
    /// Builds the configured features, fanning extraction out over the
    /// shared threadpool budget in fixed chunks.
    pub fn build(records: &[Record], cfg: &IndexConfig) -> Self {
        let _span = em_obs::span!("block.index_build", records = records.len());
        let need_texts = cfg.texts || cfg.tokens;
        let texts: Option<Vec<String>> = if need_texts {
            let chunks: Vec<&[Record]> = records.chunks(EXTRACT_CHUNK).collect();
            Some(
                run_chunks(&chunks, |c| {
                    c.iter().map(record_text).collect::<Vec<_>>()
                })
                .expect("blocking text-render worker panicked")
                .into_iter()
                .flatten()
                .collect(),
            )
        } else {
            None
        };
        let tokens = if cfg.tokens {
            let ts = texts.as_deref().unwrap();
            let chunks: Vec<&[String]> = ts.chunks(EXTRACT_CHUNK).collect();
            let per_record: Vec<Vec<String>> = run_chunks(&chunks, |c| {
                c.iter()
                    .map(|t| {
                        let mut w = em_text::words(t);
                        w.sort_unstable();
                        w.dedup();
                        w
                    })
                    .collect::<Vec<_>>()
            })
            .expect("blocking tokenize worker panicked")
            .into_iter()
            .flatten()
            .collect();
            Some(FeatureTable::build(per_record))
        } else {
            None
        };
        let qgrams = cfg.qgrams.map(|q| {
            let chunks: Vec<&[Record]> = records.chunks(EXTRACT_CHUNK).collect();
            let per_record: Vec<Vec<String>> = run_chunks(&chunks, |c| {
                c.iter()
                    .map(|r| crate::qgram::key_grams(r, q))
                    .collect::<Vec<_>>()
            })
            .expect("blocking q-gram worker panicked")
            .into_iter()
            .flatten()
            .collect();
            (q, FeatureTable::build(per_record))
        });
        let built_postings = tokens.as_ref().map_or(0, FeatureTable::n_postings)
            + qgrams.as_ref().map_or(0, |(_, t)| t.n_postings());
        em_obs::metrics::counter("block.postings").add(built_postings as u64);
        RelationIndex {
            n: records.len(),
            texts: if cfg.texts { texts } else { None },
            tokens,
            qgrams,
            config: *cfg,
        }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the index covers zero records.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Full-text sort keys (present when built with `texts`).
    pub fn texts(&self) -> Option<&[String]> {
        self.texts.as_deref()
    }

    /// Word-token features (present when built with `tokens`).
    pub fn tokens(&self) -> Option<&FeatureTable> {
        self.tokens.as_ref()
    }

    /// Q-gram features, if built with exactly this `q`.
    pub fn qgrams(&self, q: usize) -> Option<&FeatureTable> {
        match &self.qgrams {
            Some((built_q, table)) if *built_q == q => Some(table),
            _ => None,
        }
    }
}

/// Join-table markers: the left feature does not exist on the right, or
/// was cut by the document-frequency threshold.
const FEAT_NONE: u32 = u32::MAX;
const FEAT_STOP: u32 = u32::MAX - 1;

/// Shared-feature candidate generation over two feature tables: the
/// engine behind both token and q-gram blocking.
///
/// Semantics are exactly the sequential reference's: document frequency
/// is counted over *both* relations, features past
/// `stop_threshold(n_left + n_right, max_frequency)` are cut before any
/// posting expansion, and a pair is a candidate when it shares at least
/// `min_shared` surviving features.
pub(crate) fn overlap_candidates(
    left: &FeatureTable,
    right: &FeatureTable,
    n_left: usize,
    n_right: usize,
    min_shared: usize,
    max_frequency: f64,
) -> Vec<CandidatePair> {
    let _span = em_obs::span!("block.probe", left = n_left, right = n_right);
    let max_df = stop_threshold(n_left + n_right, max_frequency);

    // Resolve every left feature id to its right-relation counterpart
    // once, applying the df cut here so the banded loop below is pure
    // integer work. Slot writes are independent, so the (unordered)
    // HashMap iteration cannot affect the result.
    let mut join = vec![FEAT_NONE; left.vocab()];
    let mut stopped = 0u64;
    for (feat, &lid) in &left.ids {
        if let Some(rid) = right.lookup(feat) {
            if left.df(lid) + right.df(rid) > max_df {
                join[lid as usize] = FEAT_STOP;
                stopped += 1;
            } else {
                join[lid as usize] = rid;
            }
        } else if left.df(lid) > max_df {
            // Left-only features past the cut produce no candidates either
            // way; counted for the stop-token telemetry only.
            stopped += 1;
        }
    }
    em_obs::metrics::counter("block.stopped_tokens").add(stopped);

    // Banded probe: fixed-width left bands, dense per-band accumulators,
    // outputs concatenated in band order (run_chunks preserves item
    // order) — sorted by construction, bitwise-stable across thread
    // counts.
    let bands: Vec<(usize, usize)> = (0..n_left)
        .step_by(PROBE_BAND)
        .map(|s| (s, (s + PROBE_BAND).min(n_left)))
        .collect();
    let per_band: Vec<(Vec<CandidatePair>, u64)> = run_chunks(&bands, |&(start, end)| {
        let mut counts = vec![0u32; n_right];
        let mut touched: Vec<u32> = Vec::new();
        let mut out: Vec<CandidatePair> = Vec::new();
        let mut raw = 0u64;
        for i in start..end {
            for &lf in left.record_features(i) {
                let rid = join[lf as usize];
                if rid == FEAT_NONE || rid == FEAT_STOP {
                    continue;
                }
                for &j in right.posting(rid) {
                    if counts[j as usize] == 0 {
                        touched.push(j);
                    }
                    counts[j as usize] += 1;
                }
            }
            raw += touched.len() as u64;
            touched.sort_unstable();
            for &j in &touched {
                if counts[j as usize] as usize >= min_shared {
                    out.push((i, j as usize));
                }
                counts[j as usize] = 0;
            }
            touched.clear();
        }
        (out, raw)
    })
    .expect("blocking probe worker panicked");

    let mut raw_total = 0u64;
    let mut out = Vec::with_capacity(per_band.iter().map(|(v, _)| v.len()).sum());
    for (band, raw) in per_band {
        out.extend(band);
        raw_total += raw;
    }
    em_obs::metrics::counter("block.candidates_raw").add(raw_total);
    em_obs::metrics::counter("block.probes").inc();
    out
}

/// Sorted-neighbourhood candidate generation over two text indexes: merge
/// the pre-rendered sort keys, interleave equal-key runs, then sweep the
/// window in fixed position bands fanned out over the threadpool.
pub(crate) fn sorted_candidates(
    window: usize,
    left: &RelationIndex,
    right: &RelationIndex,
) -> Vec<CandidatePair> {
    let lt = left.texts().expect("left index built without texts");
    let rt = right.texts().expect("right index built without texts");
    let _span = em_obs::span!("block.probe", left = lt.len(), right = rt.len());

    // (sort key, relation, index); `&str` orders exactly like `String`.
    let mut entries: Vec<(&str, bool, usize)> = Vec::with_capacity(lt.len() + rt.len());
    for (i, t) in lt.iter().enumerate() {
        entries.push((t.as_str(), false, i));
    }
    for (j, t) in rt.iter().enumerate() {
        entries.push((t.as_str(), true, j));
    }
    entries.sort();
    // Interleave mixed equal-key runs L,R,L,R,… (the PR 7 duplicate fix),
    // preserving relative idx order inside each relation.
    let mut run_start = 0;
    while run_start < entries.len() {
        let mut run_end = run_start + 1;
        while run_end < entries.len() && entries[run_end].0 == entries[run_start].0 {
            run_end += 1;
        }
        let run = &mut entries[run_start..run_end];
        let split = run.iter().position(|e| e.1).unwrap_or(run.len());
        if run.len() > 2 && split > 0 && split < run.len() {
            let lefts: Vec<_> = run[..split].to_vec();
            let rights: Vec<_> = run[split..].to_vec();
            let (mut li, mut ri) = (0, 0);
            for slot in run.iter_mut() {
                let take_left = if li < lefts.len() && ri < rights.len() {
                    li <= ri
                } else {
                    li < lefts.len()
                };
                if take_left {
                    *slot = lefts[li];
                    li += 1;
                } else {
                    *slot = rights[ri];
                    ri += 1;
                }
            }
        }
        run_start = run_end;
    }

    // Fixed position bands; each position's window may read past the band
    // end (read-only), so banding partitions the emitted pairs exactly.
    let bands: Vec<(usize, usize)> = (0..entries.len())
        .step_by(PROBE_BAND)
        .map(|s| (s, (s + PROBE_BAND).min(entries.len())))
        .collect();
    let per_band: Vec<Vec<CandidatePair>> = run_chunks(&bands, |&(start, end)| {
        let mut out = Vec::new();
        for pos in start..end {
            let (_, is_right, idx) = entries[pos];
            let wend = (pos + window).min(entries.len());
            for &(_, other_right, other_idx) in &entries[pos + 1..wend] {
                match (is_right, other_right) {
                    (false, true) => out.push((idx, other_idx)),
                    (true, false) => out.push((other_idx, idx)),
                    _ => {} // same relation: not a candidate
                }
            }
        }
        out
    })
    .expect("sorted-neighbourhood probe worker panicked");

    let merged: Vec<CandidatePair> = per_band.into_iter().flatten().collect();
    em_obs::metrics::counter("block.candidates_raw").add(merged.len() as u64);
    em_obs::metrics::counter("block.probes").inc();
    // Windows overlap band boundaries unordered; normalize like the
    // sequential path (which sorts + dedups its raw pair list too).
    crate::normalize(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn feature_table_postings_are_ascending_and_complete() {
        let t = FeatureTable::build(vec![
            vec!["b".into(), "c".into()],
            vec!["a".into(), "b".into()],
            vec!["b".into()],
        ]);
        assert_eq!(t.vocab(), 3);
        let b = t.lookup("b").unwrap();
        assert_eq!(t.posting(b), &[0, 1, 2]);
        assert_eq!(t.df(b), 3);
        let a = t.lookup("a").unwrap();
        assert_eq!(t.posting(a), &[1]);
        assert_eq!(t.n_postings(), 5);
        assert_eq!(t.record_features(1).len(), 2);
    }

    #[test]
    fn config_covers_is_componentwise() {
        let full = IndexConfig {
            texts: true,
            tokens: true,
            qgrams: Some(3),
        };
        assert!(full.covers(&IndexConfig::none()));
        assert!(full.covers(&IndexConfig {
            tokens: true,
            ..IndexConfig::none()
        }));
        assert!(!full.covers(&IndexConfig {
            qgrams: Some(2),
            ..IndexConfig::none()
        }));
        assert!(!IndexConfig::none().covers(&full));
    }

    #[test]
    fn build_respects_configuration() {
        let records = vec![rec(0, "sony tv"), rec(1, "canon camera")];
        let ix = RelationIndex::build(
            &records,
            &IndexConfig {
                texts: true,
                tokens: true,
                qgrams: Some(3),
            },
        );
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.texts().unwrap()[0], "sony tv");
        assert!(ix.tokens().is_some());
        assert!(ix.qgrams(3).is_some());
        assert!(ix.qgrams(2).is_none(), "q mismatch must not alias");

        let bare = RelationIndex::build(&records, &IndexConfig::none());
        assert!(bare.texts().is_none());
        assert!(bare.tokens().is_none());
    }

    #[test]
    fn empty_relation_builds_an_empty_index() {
        let ix = RelationIndex::build(
            &[],
            &IndexConfig {
                texts: true,
                tokens: true,
                qgrams: Some(3),
            },
        );
        assert!(ix.is_empty());
        assert_eq!(ix.tokens().unwrap().vocab(), 0);
    }
}
