//! # em-blocking — candidate-set generation
//!
//! "Real-world entity matching systems typically first apply a blocking
//! function to the set R_l × R_r to form smaller candidate sets as input to
//! the matcher" (Section 2.1). The study evaluates matchers only, noting
//! they "can be easily plugged into existing matching systems"; this crate
//! provides that surrounding system: token blocking, q-gram blocking,
//! sorted neighbourhood, and the quality metrics (pair completeness /
//! reduction ratio) used to evaluate blockers.

pub mod metrics;
pub mod qgram;
pub mod sorted;
pub mod token;

pub use metrics::{pair_completeness, reduction_ratio, BlockingQuality};
pub use qgram::QGramBlocker;
pub use sorted::SortedNeighbourhood;
pub use token::TokenBlocker;

use em_core::Record;
use std::collections::HashSet;

/// A candidate pair referenced by indices into the two input relations.
pub type CandidatePair = (usize, usize);

/// Common interface of blocking techniques: produce candidate pairs from
/// two relations (deduplicated, sorted).
pub trait Blocker {
    /// Generates candidate pairs `(left index, right index)`.
    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair>;
}

/// Sorts and deduplicates a raw candidate list (shared by implementations).
pub(crate) fn normalize(mut pairs: Vec<CandidatePair>) -> Vec<CandidatePair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Renders a record to the lowercase concatenation of its values (blockers
/// observe the same value-only view as cross-dataset matchers).
pub(crate) fn record_text(record: &Record) -> String {
    let mut parts = Vec::with_capacity(record.values.len());
    for v in &record.values {
        let s = v.render().to_lowercase();
        if !s.is_empty() {
            parts.push(s);
        }
    }
    parts.join(" ")
}

/// Exhaustive cross product (the baseline blockers are compared against).
pub fn full_cross_product(left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for i in 0..left.len() {
        for j in 0..right.len() {
            out.push((i, j));
        }
    }
    out
}

/// Set view of candidate pairs for metric computation.
pub fn pair_set(pairs: &[CandidatePair]) -> HashSet<CandidatePair> {
    pairs.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn cross_product_size() {
        let left = vec![rec(0, "a"), rec(1, "b")];
        let right = vec![rec(10, "c"), rec(11, "d"), rec(12, "e")];
        assert_eq!(full_cross_product(&left, &right).len(), 6);
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let pairs = vec![(2, 1), (0, 0), (2, 1), (1, 5)];
        assert_eq!(normalize(pairs), vec![(0, 0), (1, 5), (2, 1)]);
    }

    #[test]
    fn record_text_joins_lowercased_values() {
        let r = Record::new(
            0,
            vec![
                AttrValue::from("Sony TV"),
                AttrValue::Number(42.0),
                AttrValue::Missing,
            ],
        );
        assert_eq!(record_text(&r), "sony tv 42");
    }
}
