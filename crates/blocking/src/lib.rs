//! # em-blocking — candidate-set generation
//!
//! "Real-world entity matching systems typically first apply a blocking
//! function to the set R_l × R_r to form smaller candidate sets as input to
//! the matcher" (Section 2.1). The study evaluates matchers only, noting
//! they "can be easily plugged into existing matching systems"; this crate
//! provides that surrounding system: token blocking, q-gram blocking,
//! sorted neighbourhood, and the quality metrics (pair completeness /
//! reduction ratio) used to evaluate blockers.

pub mod index;
pub mod metrics;
pub mod qgram;
pub mod reference;
pub mod sorted;
pub mod token;

pub use index::{FeatureTable, IndexConfig, RelationIndex};
pub use metrics::{pair_completeness, reduction_ratio, BlockingQuality};
pub use qgram::QGramBlocker;
pub use sorted::SortedNeighbourhood;
pub use token::TokenBlocker;

use em_core::Record;
use std::collections::HashSet;

/// A candidate pair referenced by indices into the two input relations.
pub type CandidatePair = (usize, usize);

/// Common interface of blocking techniques: produce candidate pairs from
/// two relations (deduplicated, sorted).
///
/// Every blocker declares the [`IndexConfig`] it needs and generates
/// candidates from two prebuilt [`RelationIndex`]es; the record-slice
/// entry point is a convenience that builds throwaway indexes. Systems
/// that run blocking repeatedly (the serving pipeline) keep the indexes
/// and call [`Blocker::candidates_indexed`] directly — the index build is
/// the expensive half of blocking, and it only depends on the relation.
pub trait Blocker {
    /// The features [`Blocker::candidates_indexed`] reads from its
    /// indexes.
    fn required_features(&self) -> IndexConfig {
        IndexConfig::none()
    }

    /// Generates candidate pairs `(left index, right index)` from
    /// prebuilt indexes. The indexes must cover
    /// [`Blocker::required_features`].
    fn candidates_indexed(
        &self,
        left: &RelationIndex,
        right: &RelationIndex,
    ) -> Vec<CandidatePair>;

    /// Generates candidate pairs `(left index, right index)`, building
    /// single-use indexes for both relations.
    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        let cfg = self.required_features();
        let li = RelationIndex::build(left, &cfg);
        let ri = RelationIndex::build(right, &cfg);
        self.candidates_indexed(&li, &ri)
    }
}

/// Sorts and deduplicates a raw candidate list (shared by implementations).
pub(crate) fn normalize(mut pairs: Vec<CandidatePair>) -> Vec<CandidatePair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Renders a record to the lowercase concatenation of its values (blockers
/// observe the same value-only view as cross-dataset matchers).
pub(crate) fn record_text(record: &Record) -> String {
    let mut parts = Vec::with_capacity(record.values.len());
    for v in &record.values {
        let s = v.render().to_lowercase();
        if !s.is_empty() {
            parts.push(s);
        }
    }
    parts.join(" ")
}

/// The stop cut threshold shared by the indexed and reference paths: a
/// feature present in more than `max_fraction` of all records (both
/// relations) is a stop feature. The `max(2.0)` floor keeps tiny
/// relations from stopping everything.
pub(crate) fn stop_threshold(total_records: usize, max_fraction: f64) -> usize {
    (total_records as f64 * max_fraction).max(2.0) as usize
}

/// Exhaustive cross product (the baseline blockers are compared against).
pub fn full_cross_product(left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for i in 0..left.len() {
        for j in 0..right.len() {
            out.push((i, j));
        }
    }
    out
}

/// Set view of candidate pairs for metric computation.
pub fn pair_set(pairs: &[CandidatePair]) -> HashSet<CandidatePair> {
    pairs.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn cross_product_size() {
        let left = vec![rec(0, "a"), rec(1, "b")];
        let right = vec![rec(10, "c"), rec(11, "d"), rec(12, "e")];
        assert_eq!(full_cross_product(&left, &right).len(), 6);
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let pairs = vec![(2, 1), (0, 0), (2, 1), (1, 5)];
        assert_eq!(normalize(pairs), vec![(0, 0), (1, 5), (2, 1)]);
    }

    #[test]
    fn record_text_joins_lowercased_values() {
        let r = Record::new(
            0,
            vec![
                AttrValue::from("Sony TV"),
                AttrValue::Number(42.0),
                AttrValue::Missing,
            ],
        );
        assert_eq!(record_text(&r), "sony tv 42");
    }
}
