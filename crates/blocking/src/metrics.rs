//! Blocking quality metrics: pair completeness (recall of true matches)
//! and reduction ratio (fraction of the cross product pruned).

use crate::CandidatePair;
use std::collections::HashSet;

/// Quality summary of a blocking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of true matching pairs retained, in `[0, 1]`.
    pub pair_completeness: f64,
    /// Fraction of the cross product pruned, in `[0, 1]`.
    pub reduction_ratio: f64,
}

/// Pair completeness: `|candidates ∩ true matches| / |true matches|`;
/// defined as 1 when there are no true matches.
pub fn pair_completeness(
    candidates: &HashSet<CandidatePair>,
    true_matches: &[CandidatePair],
) -> f64 {
    if true_matches.is_empty() {
        return 1.0;
    }
    let found = true_matches
        .iter()
        .filter(|p| candidates.contains(p))
        .count();
    found as f64 / true_matches.len() as f64
}

/// Reduction ratio: `1 - |candidates| / (|left| · |right|)`;
/// defined as 0 for an empty cross product.
///
/// The cross-product size is computed in `f64`: web-scale tables (WDC has
/// millions of offers per side) make `left * right` overflow a `usize` on
/// 32-bit targets — and even on 64-bit the product of two `u64`-sized
/// sides can wrap, silently reporting a nonsense ratio. `f64` loses at
/// most relative rounding error `2^-52`, invisible at the four decimal
/// places the paper reports.
pub fn reduction_ratio(n_candidates: usize, left: usize, right: usize) -> f64 {
    let total = left as f64 * right as f64;
    if total == 0.0 {
        return 0.0;
    }
    1.0 - n_candidates as f64 / total
}

/// Computes both metrics.
pub fn quality(
    candidates: &[CandidatePair],
    true_matches: &[CandidatePair],
    left: usize,
    right: usize,
) -> BlockingQuality {
    let set: HashSet<CandidatePair> = candidates.iter().copied().collect();
    BlockingQuality {
        pair_completeness: pair_completeness(&set, true_matches),
        reduction_ratio: reduction_ratio(candidates.len(), left, right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness_counts_retained_matches() {
        let candidates: HashSet<CandidatePair> = [(0, 0), (1, 1), (2, 5)].into();
        let matches = [(0, 0), (1, 1), (3, 3)];
        assert!((pair_completeness(&candidates, &matches) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_of_no_matches_is_one() {
        let candidates: HashSet<CandidatePair> = HashSet::new();
        assert_eq!(pair_completeness(&candidates, &[]), 1.0);
    }

    #[test]
    fn reduction_ratio_formula() {
        assert!((reduction_ratio(10, 10, 10) - 0.9).abs() < 1e-12);
        assert_eq!(reduction_ratio(0, 0, 10), 0.0);
        assert_eq!(reduction_ratio(100, 10, 10), 0.0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn reduction_ratio_survives_huge_cross_products() {
        // Regression: `left * right` as usize wraps to 0 here (2^33 · 2^33
        // = 2^66 ≡ 0 mod 2^64), which used to take the `total == 0` branch
        // and report 0.0 for an astronomically selective blocker.
        let side = 1usize << 33;
        let rr = reduction_ratio(1000, side, side);
        assert!(rr > 0.999_999, "rr = {rr}");
        assert!(rr <= 1.0);
    }

    #[test]
    fn quality_combines_both() {
        let q = quality(&[(0, 0)], &[(0, 0), (1, 1)], 10, 10);
        assert!((q.pair_completeness - 0.5).abs() < 1e-12);
        assert!((q.reduction_ratio - 0.99).abs() < 1e-12);
    }
}
