//! Q-gram blocking: candidates share at least `min_shared` character
//! q-grams of their key value — robust to typos that break token blocking.

use crate::index::{overlap_candidates, IndexConfig, RelationIndex};
use crate::{Blocker, CandidatePair};
use em_core::Record;

/// Q-gram blocker over the first attribute (the key value).
#[derive(Debug, Clone, Copy)]
pub struct QGramBlocker {
    /// Gram length.
    pub q: usize,
    /// Minimum shared grams.
    pub min_shared: usize,
    /// Grams occurring in more than this fraction of records (document
    /// frequency over both relations, same semantics as
    /// `TokenBlocker::max_token_frequency`) are cut. Without this, a
    /// common gram ("the", " 20") indexes a posting list covering most
    /// of the right relation and the probe loop goes quadratic.
    pub max_gram_frequency: f64,
}

impl Default for QGramBlocker {
    fn default() -> Self {
        QGramBlocker {
            q: 3,
            min_shared: 3,
            max_gram_frequency: 0.2,
        }
    }
}

/// Sorted, deduped q-grams of a record's key (first) attribute — the
/// feature extraction shared by the index build and the reference path.
pub(crate) fn key_grams(record: &Record, q: usize) -> Vec<String> {
    let key = record
        .values
        .first()
        .map(|v| v.render().to_lowercase())
        .unwrap_or_default();
    let mut grams = em_text::qgrams(&key, q);
    grams.sort_unstable();
    grams.dedup();
    grams
}

impl Blocker for QGramBlocker {
    fn required_features(&self) -> IndexConfig {
        IndexConfig {
            qgrams: Some(self.q),
            ..IndexConfig::none()
        }
    }

    /// Shared-gram candidates over prebuilt indexes; the df cut runs
    /// before any posting expansion, and the banded parallel probe is
    /// bitwise-identical to [`crate::reference::qgram_candidates`].
    fn candidates_indexed(
        &self,
        left: &RelationIndex,
        right: &RelationIndex,
    ) -> Vec<CandidatePair> {
        let lg = left
            .qgrams(self.q)
            .expect("left index built without matching q-grams");
        let rg = right
            .qgrams(self.q)
            .expect("right index built without matching q-grams");
        overlap_candidates(
            lg,
            rg,
            left.len(),
            right.len(),
            self.min_shared,
            self.max_gram_frequency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn survives_typos_that_break_token_blocking() {
        let left = vec![rec(0, "powershot")];
        let right = vec![rec(10, "powershoot"), rec(11, "different")];
        let c = QGramBlocker::default().candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]);
    }

    #[test]
    fn disjoint_keys_are_not_candidates() {
        let left = vec![rec(0, "aaaa")];
        let right = vec![rec(10, "zzzz")];
        assert!(QGramBlocker::default().candidates(&left, &right).is_empty());
    }

    #[test]
    fn min_shared_controls_strictness() {
        let left = vec![rec(0, "abcdef")];
        let right = vec![rec(10, "abcxyz")];
        // They share grams around "abc" only.
        let loose = QGramBlocker {
            q: 3,
            min_shared: 1,
            ..Default::default()
        };
        assert_eq!(loose.candidates(&left, &right).len(), 1);
        let strict = QGramBlocker {
            q: 3,
            min_shared: 5,
            ..Default::default()
        };
        assert!(strict.candidates(&left, &right).is_empty());
    }

    #[test]
    fn frequent_grams_are_cut_before_the_posting_loop() {
        // Every key shares the long prefix "the 2020 widget ", whose grams
        // have df = 60 out of 60 records — far past max(60·0.2, 2) = 12.
        // Pre-fix each of those grams carried a 30-long posting list and
        // every one of the 900 cross pairs shared ≥ 3 grams. With the cut
        // only the distinct suffixes remain, which share at most 2 grams.
        let left: Vec<Record> = (0..30)
            .map(|i| rec(i, &format!("the 2020 widget l{i:02}")))
            .collect();
        let right: Vec<Record> = (0..30)
            .map(|j| rec(j + 100, &format!("the 2020 widget r{j:02}")))
            .collect();
        let c = QGramBlocker::default().candidates(&left, &right);
        assert!(
            c.is_empty(),
            "ubiquitous prefix grams must be cut, got {} candidates",
            c.len()
        );
        // Disabling the cut restores the (pathological) pre-fix behaviour,
        // pinning that the cut — not some other change — removed them.
        let uncut = QGramBlocker {
            max_gram_frequency: 1.0,
            ..Default::default()
        };
        assert_eq!(uncut.candidates(&left, &right).len(), 900);
    }
}
