//! Q-gram blocking: candidates share at least `min_shared` character
//! q-grams of their key value — robust to typos that break token blocking.

use crate::{normalize, Blocker, CandidatePair};
use em_core::Record;
use std::collections::HashMap;

/// Q-gram blocker over the first attribute (the key value).
#[derive(Debug, Clone, Copy)]
pub struct QGramBlocker {
    /// Gram length.
    pub q: usize,
    /// Minimum shared grams.
    pub min_shared: usize,
}

impl Default for QGramBlocker {
    fn default() -> Self {
        QGramBlocker {
            q: 3,
            min_shared: 3,
        }
    }
}

fn key_grams(record: &Record, q: usize) -> Vec<String> {
    let key = record
        .values
        .first()
        .map(|v| v.render().to_lowercase())
        .unwrap_or_default();
    let mut grams = em_text::qgrams(&key, q);
    grams.sort_unstable();
    grams.dedup();
    grams
}

impl Blocker for QGramBlocker {
    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, r) in right.iter().enumerate() {
            for g in key_grams(r, self.q) {
                index.entry(g).or_default().push(j);
            }
        }
        let mut shared: HashMap<CandidatePair, usize> = HashMap::new();
        for (i, l) in left.iter().enumerate() {
            for g in key_grams(l, self.q) {
                if let Some(matches) = index.get(&g) {
                    for &j in matches {
                        *shared.entry((i, j)).or_insert(0) += 1;
                    }
                }
            }
        }
        normalize(
            shared
                .into_iter()
                .filter_map(|(p, c)| (c >= self.min_shared).then_some(p))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn survives_typos_that_break_token_blocking() {
        let left = vec![rec(0, "powershot")];
        let right = vec![rec(10, "powershoot"), rec(11, "different")];
        let c = QGramBlocker::default().candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]);
    }

    #[test]
    fn disjoint_keys_are_not_candidates() {
        let left = vec![rec(0, "aaaa")];
        let right = vec![rec(10, "zzzz")];
        assert!(QGramBlocker::default().candidates(&left, &right).is_empty());
    }

    #[test]
    fn min_shared_controls_strictness() {
        let left = vec![rec(0, "abcdef")];
        let right = vec![rec(10, "abcxyz")];
        // They share grams around "abc" only.
        let loose = QGramBlocker {
            q: 3,
            min_shared: 1,
        };
        assert_eq!(loose.candidates(&left, &right).len(), 1);
        let strict = QGramBlocker {
            q: 3,
            min_shared: 5,
        };
        assert!(strict.candidates(&left, &right).is_empty());
    }
}
