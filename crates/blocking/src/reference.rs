//! Sequential reference blockers — the pre-index implementations kept as
//! naive oracles, following the repo's equivalence discipline (the fused
//! GEMM/attention/optimizer kernels all keep their seed path in an
//! `em_nn::reference`-style module).
//!
//! The indexed paths in [`crate::index`] must return candidate vectors
//! **bitwise-identical** to these functions at every thread count; the
//! proptest suite `tests/parallel_equivalence.rs` enforces it. Nothing in
//! the serving system calls these — they exist to be compared against.

use crate::{normalize, record_text, stop_threshold, CandidatePair, QGramBlocker, SortedNeighbourhood, TokenBlocker};
use em_core::Record;
use std::collections::HashMap;

/// Sequential token blocking, exactly as shipped before the index: one
/// `HashMap<String, Vec<usize>>` inverted index over the right relation, a
/// document-frequency census over both relations, and a global
/// `HashMap<(i, j), count>` accumulator.
pub fn token_candidates(
    b: &TokenBlocker,
    left: &[Record],
    right: &[Record],
) -> Vec<CandidatePair> {
    let left_tokens: Vec<Vec<String>> = left
        .iter()
        .map(|r| {
            let mut toks = em_text::words(&record_text(r));
            toks.sort_unstable();
            toks.dedup();
            toks
        })
        .collect();
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        let mut toks = em_text::words(&record_text(r));
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            index.entry(t).or_default().push(j);
        }
    }
    // Document frequency over *both* relations (PR 7's stop-cut fix).
    let mut df: HashMap<&str, usize> = index
        .iter()
        .map(|(t, postings)| (t.as_str(), postings.len()))
        .collect();
    for toks in &left_tokens {
        for t in toks {
            *df.entry(t.as_str()).or_insert(0) += 1;
        }
    }
    let max_df = stop_threshold(left.len() + right.len(), b.max_token_frequency);
    let mut shared_counts: HashMap<CandidatePair, usize> = HashMap::new();
    for (i, toks) in left_tokens.iter().enumerate() {
        for t in toks {
            if df.get(t.as_str()).copied().unwrap_or(0) > max_df {
                continue; // stop word
            }
            if let Some(matches) = index.get(t.as_str()) {
                for &j in matches {
                    *shared_counts.entry((i, j)).or_insert(0) += 1;
                }
            }
        }
    }
    normalize(
        shared_counts
            .into_iter()
            .filter_map(|(p, c)| (c >= b.min_shared).then_some(p))
            .collect(),
    )
}

/// Sequential q-gram blocking over the key (first) attribute, with the df
/// cut applied before posting-list expansion (PR 7's fix).
pub fn qgram_candidates(
    b: &QGramBlocker,
    left: &[Record],
    right: &[Record],
) -> Vec<CandidatePair> {
    let left_grams: Vec<Vec<String>> = left.iter().map(|r| crate::qgram::key_grams(r, b.q)).collect();
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        for g in crate::qgram::key_grams(r, b.q) {
            index.entry(g).or_default().push(j);
        }
    }
    let mut df: HashMap<&str, usize> = index
        .iter()
        .map(|(g, postings)| (g.as_str(), postings.len()))
        .collect();
    for grams in &left_grams {
        for g in grams {
            *df.entry(g.as_str()).or_insert(0) += 1;
        }
    }
    let max_df = stop_threshold(left.len() + right.len(), b.max_gram_frequency);
    let mut shared: HashMap<CandidatePair, usize> = HashMap::new();
    for (i, grams) in left_grams.iter().enumerate() {
        for g in grams {
            if df.get(g.as_str()).copied().unwrap_or(0) > max_df {
                continue; // stop gram
            }
            if let Some(matches) = index.get(g.as_str()) {
                for &j in matches {
                    *shared.entry((i, j)).or_insert(0) += 1;
                }
            }
        }
    }
    normalize(
        shared
            .into_iter()
            .filter_map(|(p, c)| (c >= b.min_shared).then_some(p))
            .collect(),
    )
}

/// Sequential sorted-neighbourhood blocking: merge both relations, sort by
/// the full-text key, interleave equal-key runs, slide the window.
pub fn sorted_candidates(
    b: &SortedNeighbourhood,
    left: &[Record],
    right: &[Record],
) -> Vec<CandidatePair> {
    assert!(b.window >= 2, "window must be at least 2");
    // (sort key, relation, index)
    let mut entries: Vec<(String, bool, usize)> = Vec::with_capacity(left.len() + right.len());
    for (i, r) in left.iter().enumerate() {
        entries.push((record_text(r), false, i));
    }
    for (j, r) in right.iter().enumerate() {
        entries.push((record_text(r), true, j));
    }
    entries.sort();
    // Interleave mixed equal-key runs L,R,L,R,… so duplicates sit adjacent
    // (PR 7's fix); relative idx order inside each relation is preserved.
    let mut run_start = 0;
    while run_start < entries.len() {
        let mut run_end = run_start + 1;
        while run_end < entries.len() && entries[run_end].0 == entries[run_start].0 {
            run_end += 1;
        }
        let run = &mut entries[run_start..run_end];
        let split = run.iter().position(|e| e.1).unwrap_or(run.len());
        if run.len() > 2 && split > 0 && split < run.len() {
            let lefts: Vec<_> = run[..split].to_vec();
            let rights: Vec<_> = run[split..].to_vec();
            let (mut li, mut ri) = (0, 0);
            for slot in run.iter_mut() {
                let take_left = if li < lefts.len() && ri < rights.len() {
                    li <= ri
                } else {
                    li < lefts.len()
                };
                if take_left {
                    *slot = lefts[li].clone();
                    li += 1;
                } else {
                    *slot = rights[ri].clone();
                    ri += 1;
                }
            }
        }
        run_start = run_end;
    }
    let mut out = Vec::new();
    for (pos, (_, is_right, idx)) in entries.iter().enumerate() {
        let end = (pos + b.window).min(entries.len());
        for (_, other_right, other_idx) in &entries[pos + 1..end] {
            match (is_right, other_right) {
                (false, true) => out.push((*idx, *other_idx)),
                (true, false) => out.push((*other_idx, *idx)),
                _ => {} // same relation: not a candidate
            }
        }
    }
    normalize(out)
}
