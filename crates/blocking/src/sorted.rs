//! Sorted-neighbourhood blocking: both relations are merged, sorted by a
//! key rendering, and a sliding window pairs nearby records.

use crate::{normalize, record_text, Blocker, CandidatePair};
use em_core::Record;

/// Sorted-neighbourhood blocker.
#[derive(Debug, Clone, Copy)]
pub struct SortedNeighbourhood {
    /// Sliding window size (≥ 2).
    pub window: usize,
}

impl Default for SortedNeighbourhood {
    fn default() -> Self {
        SortedNeighbourhood { window: 10 }
    }
}

impl Blocker for SortedNeighbourhood {
    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        assert!(self.window >= 2, "window must be at least 2");
        // (sort key, relation, index)
        let mut entries: Vec<(String, bool, usize)> = Vec::with_capacity(left.len() + right.len());
        for (i, r) in left.iter().enumerate() {
            entries.push((record_text(r), false, i));
        }
        for (j, r) in right.iter().enumerate() {
            entries.push((record_text(r), true, j));
        }
        entries.sort();
        // The sort key is (text, is_right, idx), so an equal-key run
        // groups every left record before every right record. When the
        // run is longer than the window, a left record's window fills up
        // with other lefts and bit-identical left/right duplicates — the
        // highest-confidence matches — never pair. Rewrite each mixed
        // equal-key run interleaved L,R,L,R,… so duplicates sit adjacent
        // while relative idx order inside each relation is preserved.
        let mut run_start = 0;
        while run_start < entries.len() {
            let mut run_end = run_start + 1;
            while run_end < entries.len() && entries[run_end].0 == entries[run_start].0 {
                run_end += 1;
            }
            let run = &mut entries[run_start..run_end];
            let split = run.iter().position(|e| e.1).unwrap_or(run.len());
            if run.len() > 2 && split > 0 && split < run.len() {
                let lefts: Vec<_> = run[..split].to_vec();
                let rights: Vec<_> = run[split..].to_vec();
                let (mut li, mut ri) = (0, 0);
                for slot in run.iter_mut() {
                    let take_left = if li < lefts.len() && ri < rights.len() {
                        li <= ri
                    } else {
                        li < lefts.len()
                    };
                    if take_left {
                        *slot = lefts[li].clone();
                        li += 1;
                    } else {
                        *slot = rights[ri].clone();
                        ri += 1;
                    }
                }
            }
            run_start = run_end;
        }
        let mut out = Vec::new();
        for (pos, (_, is_right, idx)) in entries.iter().enumerate() {
            let end = (pos + self.window).min(entries.len());
            for (_, other_right, other_idx) in &entries[pos + 1..end] {
                match (is_right, other_right) {
                    (false, true) => out.push((*idx, *other_idx)),
                    (true, false) => out.push((*other_idx, *idx)),
                    _ => {} // same relation: not a candidate
                }
            }
        }
        normalize(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn nearby_keys_become_candidates() {
        let left = vec![rec(0, "apple pie"), rec(1, "zebra crossing")];
        let right = vec![rec(10, "apple tart"), rec(11, "yak wool")];
        let c = SortedNeighbourhood { window: 2 }.candidates(&left, &right);
        assert!(c.contains(&(0, 0)), "{c:?}"); // apple* sort adjacently
        assert!(!c.contains(&(0, 1)));
    }

    #[test]
    fn window_covers_everything_when_large() {
        let left = vec![rec(0, "a"), rec(1, "m")];
        let right = vec![rec(10, "b"), rec(11, "z")];
        let c = SortedNeighbourhood { window: 100 }.candidates(&left, &right);
        assert_eq!(c.len(), 4); // all cross pairs
    }

    #[test]
    fn same_relation_neighbours_are_skipped() {
        let left = vec![rec(0, "aa"), rec(1, "ab")];
        let right = vec![rec(10, "zz")];
        let c = SortedNeighbourhood { window: 2 }.candidates(&left, &right);
        // aa-ab are adjacent but both in the left relation.
        assert!(c.iter().all(|&(i, j)| i < 2 && j == 0));
    }

    #[test]
    #[should_panic(expected = "window must be at least 2")]
    fn tiny_window_rejected() {
        let _ = SortedNeighbourhood { window: 1 }.candidates(&[], &[]);
    }

    #[test]
    fn equal_key_runs_longer_than_window_still_pair_duplicates() {
        // window + 1 = 5 bit-identical records on each side. Pre-fix the
        // sorted run was L0..L4 R0..R4, so L0's window held only other
        // lefts and the exact duplicate (0,0) — the surest match in the
        // data — was never produced. Interleaved, Li and Ri are adjacent.
        let n = 5;
        let left: Vec<Record> = (0..n).map(|i| rec(i as u64, "acme widget 3000")).collect();
        let right: Vec<Record> = (0..n)
            .map(|i| rec(100 + i as u64, "acme widget 3000"))
            .collect();
        let c = SortedNeighbourhood { window: 4 }.candidates(&left, &right);
        for i in 0..n {
            assert!(
                c.contains(&(i, i)),
                "exact duplicate ({i},{i}) missing from {c:?}"
            );
        }
    }
}
