//! Sorted-neighbourhood blocking: both relations are merged, sorted by a
//! key rendering, and a sliding window pairs nearby records.

use crate::index::{IndexConfig, RelationIndex};
use crate::{Blocker, CandidatePair};

/// Sorted-neighbourhood blocker.
#[derive(Debug, Clone, Copy)]
pub struct SortedNeighbourhood {
    /// Sliding window size (≥ 2).
    pub window: usize,
}

impl Default for SortedNeighbourhood {
    fn default() -> Self {
        SortedNeighbourhood { window: 10 }
    }
}

impl Blocker for SortedNeighbourhood {
    fn required_features(&self) -> IndexConfig {
        IndexConfig {
            texts: true,
            ..IndexConfig::none()
        }
    }

    /// Sliding-window candidates over the indexes' pre-rendered sort
    /// keys: equal-key runs interleave L,R,L,R,… so duplicates pair (the
    /// PR 7 fix), and the window sweep fans out in fixed position bands —
    /// bitwise-identical to [`crate::reference::sorted_candidates`].
    fn candidates_indexed(
        &self,
        left: &RelationIndex,
        right: &RelationIndex,
    ) -> Vec<CandidatePair> {
        assert!(self.window >= 2, "window must be at least 2");
        crate::index::sorted_candidates(self.window, left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{AttrValue, Record};

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn nearby_keys_become_candidates() {
        let left = vec![rec(0, "apple pie"), rec(1, "zebra crossing")];
        let right = vec![rec(10, "apple tart"), rec(11, "yak wool")];
        let c = SortedNeighbourhood { window: 2 }.candidates(&left, &right);
        assert!(c.contains(&(0, 0)), "{c:?}"); // apple* sort adjacently
        assert!(!c.contains(&(0, 1)));
    }

    #[test]
    fn window_covers_everything_when_large() {
        let left = vec![rec(0, "a"), rec(1, "m")];
        let right = vec![rec(10, "b"), rec(11, "z")];
        let c = SortedNeighbourhood { window: 100 }.candidates(&left, &right);
        assert_eq!(c.len(), 4); // all cross pairs
    }

    #[test]
    fn same_relation_neighbours_are_skipped() {
        let left = vec![rec(0, "aa"), rec(1, "ab")];
        let right = vec![rec(10, "zz")];
        let c = SortedNeighbourhood { window: 2 }.candidates(&left, &right);
        // aa-ab are adjacent but both in the left relation.
        assert!(c.iter().all(|&(i, j)| i < 2 && j == 0));
    }

    #[test]
    #[should_panic(expected = "window must be at least 2")]
    fn tiny_window_rejected() {
        let _ = SortedNeighbourhood { window: 1 }.candidates(&[], &[]);
    }

    #[test]
    fn equal_key_runs_longer_than_window_still_pair_duplicates() {
        // window + 1 = 5 bit-identical records on each side. Pre-fix the
        // sorted run was L0..L4 R0..R4, so L0's window held only other
        // lefts and the exact duplicate (0,0) — the surest match in the
        // data — was never produced. Interleaved, Li and Ri are adjacent.
        let n = 5;
        let left: Vec<Record> = (0..n).map(|i| rec(i as u64, "acme widget 3000")).collect();
        let right: Vec<Record> = (0..n)
            .map(|i| rec(100 + i as u64, "acme widget 3000"))
            .collect();
        let c = SortedNeighbourhood { window: 4 }.candidates(&left, &right);
        for i in 0..n {
            assert!(
                c.contains(&(i, i)),
                "exact duplicate ({i},{i}) missing from {c:?}"
            );
        }
    }
}
