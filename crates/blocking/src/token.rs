//! Token blocking: two records become a candidate pair when they share at
//! least `min_shared` word tokens. The classic high-recall baseline.

use crate::{normalize, record_text, Blocker, CandidatePair};
use em_core::Record;
use std::collections::HashMap;

/// Token (word-overlap) blocker.
#[derive(Debug, Clone, Copy)]
pub struct TokenBlocker {
    /// Minimum number of shared tokens for a candidate.
    pub min_shared: usize,
    /// Tokens occurring in more than this fraction of records are treated
    /// as stop words and ignored (prevents quadratic blowup on "the").
    pub max_token_frequency: f64,
}

impl Default for TokenBlocker {
    fn default() -> Self {
        TokenBlocker {
            min_shared: 1,
            max_token_frequency: 0.2,
        }
    }
}

impl Blocker for TokenBlocker {
    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        // Tokenize every left record once; the token lists feed both the
        // document-frequency census and the probe loop below.
        let left_tokens: Vec<Vec<String>> = left
            .iter()
            .map(|r| {
                let mut toks = em_text::words(&record_text(r));
                toks.sort_unstable();
                toks.dedup();
                toks
            })
            .collect();
        // Inverted index over right-relation tokens.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, r) in right.iter().enumerate() {
            let mut toks = em_text::words(&record_text(r));
            toks.sort_unstable();
            toks.dedup();
            for t in toks {
                index.entry(t).or_default().push(j);
            }
        }
        // Document frequency over *both* relations, matching the documented
        // stop-word semantics ("fraction of records"). The seed compared
        // the right-only posting length against a threshold derived from
        // left+right, so a token present in every right record slipped
        // under the cut whenever the left relation was large — quadratic
        // candidate blowup on skewed relation sizes.
        let mut df: HashMap<&str, usize> = index
            .iter()
            .map(|(t, postings)| (t.as_str(), postings.len()))
            .collect();
        for toks in &left_tokens {
            for t in toks {
                *df.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let max_df =
            ((left.len() + right.len()) as f64 * self.max_token_frequency).max(2.0) as usize;
        let mut shared_counts: HashMap<CandidatePair, usize> = HashMap::new();
        for (i, toks) in left_tokens.iter().enumerate() {
            for t in toks {
                if df.get(t.as_str()).copied().unwrap_or(0) > max_df {
                    continue; // stop word
                }
                if let Some(matches) = index.get(t.as_str()) {
                    for &j in matches {
                        *shared_counts.entry((i, j)).or_insert(0) += 1;
                    }
                }
            }
        }
        normalize(
            shared_counts
                .into_iter()
                .filter_map(|(p, c)| (c >= self.min_shared).then_some(p))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn shared_token_produces_candidate() {
        let left = vec![rec(0, "sony camera"), rec(1, "nikon lens")];
        let right = vec![rec(10, "sony tv"), rec(11, "canon printer")];
        let c = TokenBlocker::default().candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]); // "sony"
    }

    #[test]
    fn min_shared_two_requires_two_tokens() {
        let left = vec![rec(0, "sony alpha camera")];
        let right = vec![rec(10, "sony camera bag"), rec(11, "sony tv")];
        let blocker = TokenBlocker {
            min_shared: 2,
            // Three records total, so at the default 0.2 every token hits
            // the stop cut; disable it — this test is about min_shared.
            max_token_frequency: 1.0,
        };
        let c = blocker.candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]); // shares "sony" + "camera"
    }

    #[test]
    fn stop_cut_uses_both_relations_document_frequency() {
        // Skewed sizes: 20 left records all containing "brand", 4 right
        // records all containing "brand". Combined df = 24 out of 24
        // records, way past max_df = max(24 * 0.2, 2) = 4 — but the
        // right-only posting list is exactly 4, which slipped under the
        // pre-fix cut (`4 > 4` is false) and produced all 80 pairs.
        let left: Vec<Record> = (0..20).map(|i| rec(i, &format!("brand u{i}"))).collect();
        let right: Vec<Record> = (0..4)
            .map(|j| rec(j + 100, &format!("brand v{j}")))
            .collect();
        let c = TokenBlocker::default().candidates(&left, &right);
        assert!(
            c.is_empty(),
            "token present in every record must be stopped, got {} candidates",
            c.len()
        );
    }

    #[test]
    fn frequent_tokens_are_stopped() {
        // "item" appears everywhere; without the stop-word cut every pair
        // would be a candidate.
        let left: Vec<Record> = (0..20).map(|i| rec(i, &format!("item l{i}"))).collect();
        let right: Vec<Record> = (0..20)
            .map(|i| rec(i + 100, &format!("item r{i}")))
            .collect();
        let c = TokenBlocker::default().candidates(&left, &right);
        assert!(
            c.is_empty(),
            "stop word must not create {} candidates",
            c.len()
        );
    }

    #[test]
    fn no_shared_tokens_no_candidates() {
        let left = vec![rec(0, "alpha beta")];
        let right = vec![rec(10, "gamma delta")];
        assert!(TokenBlocker::default().candidates(&left, &right).is_empty());
    }
}
