//! Token blocking: two records become a candidate pair when they share at
//! least `min_shared` word tokens. The classic high-recall baseline.

use crate::index::{overlap_candidates, IndexConfig, RelationIndex};
use crate::{Blocker, CandidatePair};

/// Token (word-overlap) blocker.
#[derive(Debug, Clone, Copy)]
pub struct TokenBlocker {
    /// Minimum number of shared tokens for a candidate.
    pub min_shared: usize,
    /// Tokens occurring in more than this fraction of records are treated
    /// as stop words and ignored (prevents quadratic blowup on "the").
    pub max_token_frequency: f64,
}

impl Default for TokenBlocker {
    fn default() -> Self {
        TokenBlocker {
            min_shared: 1,
            max_token_frequency: 0.2,
        }
    }
}

impl Blocker for TokenBlocker {
    fn required_features(&self) -> IndexConfig {
        IndexConfig {
            tokens: true,
            ..IndexConfig::none()
        }
    }

    /// Shared-token candidates over prebuilt indexes. Document frequency
    /// spans *both* relations (the PR 7 stop-cut semantics) and the cut
    /// runs before any posting expansion; the banded parallel probe is
    /// bitwise-identical to [`crate::reference::token_candidates`].
    fn candidates_indexed(
        &self,
        left: &RelationIndex,
        right: &RelationIndex,
    ) -> Vec<CandidatePair> {
        let lt = left.tokens().expect("left index built without tokens");
        let rt = right.tokens().expect("right index built without tokens");
        overlap_candidates(
            lt,
            rt,
            left.len(),
            right.len(),
            self.min_shared,
            self.max_token_frequency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{AttrValue, Record};

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![AttrValue::from(text)])
    }

    #[test]
    fn shared_token_produces_candidate() {
        let left = vec![rec(0, "sony camera"), rec(1, "nikon lens")];
        let right = vec![rec(10, "sony tv"), rec(11, "canon printer")];
        let c = TokenBlocker::default().candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]); // "sony"
    }

    #[test]
    fn min_shared_two_requires_two_tokens() {
        let left = vec![rec(0, "sony alpha camera")];
        let right = vec![rec(10, "sony camera bag"), rec(11, "sony tv")];
        let blocker = TokenBlocker {
            min_shared: 2,
            // Three records total, so at the default 0.2 every token hits
            // the stop cut; disable it — this test is about min_shared.
            max_token_frequency: 1.0,
        };
        let c = blocker.candidates(&left, &right);
        assert_eq!(c, vec![(0, 0)]); // shares "sony" + "camera"
    }

    #[test]
    fn stop_cut_uses_both_relations_document_frequency() {
        // Skewed sizes: 20 left records all containing "brand", 4 right
        // records all containing "brand". Combined df = 24 out of 24
        // records, way past max_df = max(24 * 0.2, 2) = 4 — but the
        // right-only posting list is exactly 4, which slipped under the
        // pre-fix cut (`4 > 4` is false) and produced all 80 pairs.
        let left: Vec<Record> = (0..20).map(|i| rec(i, &format!("brand u{i}"))).collect();
        let right: Vec<Record> = (0..4)
            .map(|j| rec(j + 100, &format!("brand v{j}")))
            .collect();
        let c = TokenBlocker::default().candidates(&left, &right);
        assert!(
            c.is_empty(),
            "token present in every record must be stopped, got {} candidates",
            c.len()
        );
    }

    #[test]
    fn frequent_tokens_are_stopped() {
        // "item" appears everywhere; without the stop-word cut every pair
        // would be a candidate.
        let left: Vec<Record> = (0..20).map(|i| rec(i, &format!("item l{i}"))).collect();
        let right: Vec<Record> = (0..20)
            .map(|i| rec(i + 100, &format!("item r{i}")))
            .collect();
        let c = TokenBlocker::default().candidates(&left, &right);
        assert!(
            c.is_empty(),
            "stop word must not create {} candidates",
            c.len()
        );
    }

    #[test]
    fn no_shared_tokens_no_candidates() {
        let left = vec![rec(0, "alpha beta")];
        let right = vec![rec(10, "gamma delta")];
        assert!(TokenBlocker::default().candidates(&left, &right).is_empty());
    }
}
