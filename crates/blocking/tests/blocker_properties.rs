//! Property suite for the three blockers: every output is sorted,
//! deduplicated, and a subset of the cross product; the serving-relevant
//! configurations keep pair completeness high on generated relations
//! (where `full_cross_product` is by construction complete).

use em_blocking::metrics::pair_completeness;
use em_blocking::{
    full_cross_product, pair_set, Blocker, QGramBlocker, SortedNeighbourhood, TokenBlocker,
};
use em_core::Record;
use proptest::prelude::*;

/// All three blocker families under a spread of configurations.
fn zoo() -> Vec<(&'static str, Box<dyn Blocker>)> {
    vec![
        ("token-default", Box::new(TokenBlocker::default())),
        (
            "token-strict",
            Box::new(TokenBlocker {
                min_shared: 2,
                max_token_frequency: 0.05,
            }),
        ),
        (
            "token-uncut",
            Box::new(TokenBlocker {
                min_shared: 1,
                max_token_frequency: 1.0,
            }),
        ),
        ("qgram-default", Box::new(QGramBlocker::default())),
        (
            "qgram-loose",
            Box::new(QGramBlocker {
                q: 2,
                min_shared: 1,
                max_gram_frequency: 1.0,
            }),
        ),
        ("sorted-w2", Box::new(SortedNeighbourhood { window: 2 })),
        ("sorted-w10", Box::new(SortedNeighbourhood { window: 10 })),
    ]
}

fn is_sorted_dedup(pairs: &[(usize, usize)]) -> bool {
    pairs.windows(2).all(|w| w[0] < w[1])
}

proptest! {
    /// Structural contract of `Blocker::candidates` for every family, on
    /// relations of varying shape (including empty and heavily skewed).
    #[test]
    fn outputs_are_sorted_deduped_subsets(
        seed in 0u64..12,
        n_left in 0usize..45,
        n_right in 0usize..45,
        tenths in 0usize..=10,
    ) {
        let rels = em_datagen::serve_relations(n_left, n_right, tenths as f64 / 10.0, seed);
        for (name, blocker) in zoo() {
            let c = blocker.candidates(&rels.left, &rels.right);
            prop_assert!(is_sorted_dedup(&c), "{name}: unsorted/duplicated output");
            prop_assert!(
                c.iter().all(|&(i, j)| i < rels.left.len() && j < rels.right.len()),
                "{name}: candidate outside the cross product"
            );
        }
    }

    /// The structural contract also holds on adversarial single-token
    /// records (empty strings, shared tokens everywhere).
    #[test]
    fn degenerate_records_do_not_break_the_contract(
        texts in proptest::collection::vec("[ab ]{0,6}", 10),
    ) {
        let make = |offset: u64, texts: &[String]| -> Vec<Record> {
            texts
                .iter()
                .enumerate()
                .map(|(i, t)| Record::new(offset + i as u64, vec![em_core::AttrValue::from(t.as_str())]))
                .collect()
        };
        let left = make(0, &texts);
        let right = make(1000, &texts);
        for (name, blocker) in zoo() {
            let c = blocker.candidates(&left, &right);
            prop_assert!(is_sorted_dedup(&c), "{name}");
            prop_assert!(c.iter().all(|&(i, j)| i < left.len() && j < right.len()), "{name}");
        }
    }

    /// Pair completeness on the serving workload: the cross product is
    /// complete by definition, and the serving blocker configurations
    /// must stay close while pruning hard.
    #[test]
    fn serving_configs_keep_pair_completeness(seed in 0u64..6) {
        let rels = em_datagen::serve_relations(150, 150, 0.3, seed);
        let truth = &rels.matches;

        let full = pair_set(&full_cross_product(&rels.left, &rels.right));
        prop_assert_eq!(pair_completeness(&full, truth), 1.0);

        let token = TokenBlocker { min_shared: 2, max_token_frequency: 0.05 };
        let c = token.candidates(&rels.left, &rels.right);
        let pc = pair_completeness(&pair_set(&c), truth);
        prop_assert!(pc > 0.85, "token completeness {pc} at seed {seed}");
        prop_assert!(
            (c.len() as f64) < 0.2 * (rels.left.len() * rels.right.len()) as f64,
            "token blocker stopped pruning: {} candidates",
            c.len()
        );

        // Sorted neighbourhood with a generous window: sanity floor only —
        // single-key sorting is the weakest family on noisy titles.
        let sn = SortedNeighbourhood { window: 12 };
        let pc_sn = pair_completeness(&pair_set(&sn.candidates(&rels.left, &rels.right)), truth);
        prop_assert!(pc_sn > 0.2, "sorted-neighbourhood completeness {pc_sn}");
    }
}

/// Exact-duplicate relations: every blocker must retain the identity
/// pairing regardless of configuration quirks (the SortedNeighbourhood
/// regression generalized).
#[test]
fn exact_duplicates_always_survive() {
    let rels = em_datagen::serve_relations(40, 0, 0.0, 3);
    let left = rels.left;
    let mut right = left.clone();
    for (j, r) in right.iter_mut().enumerate() {
        r.id = 500_000 + j as u64;
    }
    let truth: Vec<(usize, usize)> = (0..left.len()).map(|i| (i, i)).collect();
    for (name, blocker) in [
        (
            "token",
            Box::new(TokenBlocker {
                min_shared: 2,
                max_token_frequency: 0.1,
            }) as Box<dyn Blocker>,
        ),
        ("sorted", Box::new(SortedNeighbourhood { window: 4 })),
    ] {
        let c = pair_set(&blocker.candidates(&left, &right));
        let pc = pair_completeness(&c, &truth);
        assert_eq!(pc, 1.0, "{name} dropped exact duplicates: {pc}");
    }
}
