//! Blocking-equivalence suite: the indexed, banded-parallel candidate
//! generation must be **bitwise identical** to the sequential reference
//! implementations in [`em_blocking::reference`] for every family, every
//! relation shape, and every thread count — and a prebuilt index reused
//! across runs (including after the other side changed) must answer
//! exactly like a fresh build.
//!
//! This lives in its own integration binary because the thread-count
//! parity tests mutate the process-global worker budget via
//! [`em_nn::threadpool::set_max_threads`]; tests that do so serialize on
//! [`THREAD_CAP`].

use em_blocking::{
    reference, Blocker, CandidatePair, QGramBlocker, RelationIndex, SortedNeighbourhood,
    TokenBlocker,
};
use em_core::Record;
use em_nn::threadpool;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Thread caps the parity tests sweep: inline, two workers, oversubscribed.
const THREAD_CAPS: [usize; 3] = [1, 2, 8];

/// One blocker family with its pre-index sequential oracle.
struct Family {
    name: &'static str,
    blocker: Box<dyn Blocker>,
    oracle: Box<dyn Fn(&[Record], &[Record]) -> Vec<CandidatePair>>,
}

fn families() -> Vec<Family> {
    fn fam(
        name: &'static str,
        blocker: Box<dyn Blocker>,
        oracle: impl Fn(&[Record], &[Record]) -> Vec<CandidatePair> + 'static,
    ) -> Family {
        Family {
            name,
            blocker,
            oracle: Box::new(oracle),
        }
    }
    let token_default = TokenBlocker::default();
    let token_serving = TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    };
    let token_uncut = TokenBlocker {
        min_shared: 1,
        max_token_frequency: 1.0,
    };
    let qgram_default = QGramBlocker::default();
    let qgram_loose = QGramBlocker {
        q: 2,
        min_shared: 1,
        max_gram_frequency: 1.0,
    };
    let sn_small = SortedNeighbourhood { window: 2 };
    let sn_wide = SortedNeighbourhood { window: 10 };
    vec![
        fam("token-default", Box::new(token_default), move |l, r| {
            reference::token_candidates(&token_default, l, r)
        }),
        fam("token-serving", Box::new(token_serving), move |l, r| {
            reference::token_candidates(&token_serving, l, r)
        }),
        fam("token-uncut", Box::new(token_uncut), move |l, r| {
            reference::token_candidates(&token_uncut, l, r)
        }),
        fam("qgram-default", Box::new(qgram_default), move |l, r| {
            reference::qgram_candidates(&qgram_default, l, r)
        }),
        fam("qgram-loose", Box::new(qgram_loose), move |l, r| {
            reference::qgram_candidates(&qgram_loose, l, r)
        }),
        fam("sorted-w2", Box::new(sn_small), move |l, r| {
            reference::sorted_candidates(&sn_small, l, r)
        }),
        fam("sorted-w10", Box::new(sn_wide), move |l, r| {
            reference::sorted_candidates(&sn_wide, l, r)
        }),
    ]
}

/// Runs `f` under each swept thread cap, restoring the default after.
fn at_each_cap(mut f: impl FnMut(usize)) {
    let _g = THREAD_CAP.lock().unwrap();
    for cap in THREAD_CAPS {
        threadpool::set_max_threads(Some(cap));
        f(cap);
    }
    threadpool::set_max_threads(None);
}

proptest! {
    /// Indexed candidates equal the sequential oracle exactly — same
    /// pairs, same order — for every family at 1, 2, and 8 threads.
    #[test]
    fn indexed_path_matches_reference_at_every_thread_count(
        seed in 0u64..10,
        n_left in 0usize..60,
        n_right in 0usize..60,
        tenths in 0usize..=10,
    ) {
        let rels = em_datagen::serve_relations(n_left, n_right, tenths as f64 / 10.0, seed);
        for family in families() {
            let expect = (family.oracle)(&rels.left, &rels.right);
            let mut failure: Option<String> = None;
            at_each_cap(|cap| {
                let got = family.blocker.candidates(&rels.left, &rels.right);
                if got != expect && failure.is_none() {
                    failure = Some(format!(
                        "{} at {} threads: {} candidates vs {} reference",
                        family.name, cap, got.len(), expect.len()
                    ));
                }
            });
            prop_assert!(failure.is_none(), "{}", failure.unwrap());
        }
    }

    /// A relation index built once answers identically when reused against
    /// a *different* other side — the pipeline's reuse-after-append path.
    /// Document frequencies live per relation and combine at probe time,
    /// so a stale side's index stays exact.
    #[test]
    fn prebuilt_index_reused_after_other_side_grows(
        seed in 0u64..8,
        n in 4usize..40,
        extra in 1usize..12,
    ) {
        let rels = em_datagen::serve_relations(n, n + extra, 0.4, seed);
        let (right_before, right_grown) = (&rels.right[..n], &rels.right[..]);
        for family in families() {
            let cfg = family.blocker.required_features();
            let left_index = RelationIndex::build(&rels.left, &cfg);

            for right in [right_before, right_grown] {
                let fresh_left = RelationIndex::build(&rels.left, &cfg);
                let right_index = RelationIndex::build(right, &cfg);
                let reused = family.blocker.candidates_indexed(&left_index, &right_index);
                let fresh = family.blocker.candidates_indexed(&fresh_left, &right_index);
                prop_assert_eq!(
                    &reused, &fresh,
                    "{}: reused left index diverged at |right|={}", family.name, right.len()
                );
                let oracle = (family.oracle)(&rels.left, right);
                prop_assert_eq!(
                    &reused, &oracle,
                    "{}: indexed path diverged from reference at |right|={}",
                    family.name, right.len()
                );
            }
        }
    }
}

/// The serving configuration at a deterministic, non-trivial scale: one
/// straight pin that the banded probe is exact where it matters most.
#[test]
fn serving_blocker_parity_at_scale() {
    let rels = em_datagen::serve_relations(400, 400, 0.3, 7);
    let blocker = TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    };
    let expect = reference::token_candidates(&blocker, &rels.left, &rels.right);
    assert!(!expect.is_empty(), "degenerate workload: no candidates");
    at_each_cap(|cap| {
        let got = blocker.candidates(&rels.left, &rels.right);
        assert_eq!(
            got, expect,
            "token serving config diverged at {cap} threads"
        );
    });
}
