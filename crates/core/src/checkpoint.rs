//! Streaming JSONL checkpoints for resumable LODO evaluation.
//!
//! [`crate::eval::evaluate_all_resumable`] appends one line per completed
//! (matcher × target) item as soon as the item finishes, so an interrupted
//! sweep loses at most the items that were in flight. A resumed run reads
//! the log back, pre-fills the corresponding result slots and only
//! schedules the remaining items — reproducing the uninterrupted run
//! bit-identically, because the per-seed F1 values round-trip through
//! Rust's shortest-roundtrip float formatting.
//!
//! The format is deliberately tiny: one flat JSON object per line, written
//! and parsed by this module alone (no external JSON dependency). A run
//! killed mid-write may leave a partial final line; the reader tolerates
//! exactly that and rejects corruption anywhere else.

use crate::dataset::DatasetId;
use crate::error::{EmError, Result};
use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// One completed (matcher × target) evaluation item.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRow {
    /// The caller-chosen factory label — the stable identity of the
    /// matcher across runs (display names may collide between configs).
    pub label: String,
    /// Display name of the matcher, as reported by [`crate::Matcher::name`].
    pub name: String,
    /// Parameter count in millions, if any.
    pub params_millions: Option<f64>,
    /// The LODO target dataset.
    pub dataset: DatasetId,
    /// Per-seed F1 scores in percent, in `EvalConfig::seeds` order.
    pub per_seed_f1: Vec<f64>,
    /// Whether the matcher saw the target during its own training.
    pub seen_in_training: bool,
    /// Whether any seed's predictions came from a degraded fallback path
    /// (hosted-LLM circuit breaker open).
    pub degraded: bool,
}

impl CheckpointRow {
    /// Serializes the row as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"label\":");
        push_json_string(&mut out, &self.label);
        out.push_str(",\"name\":");
        push_json_string(&mut out, &self.name);
        out.push_str(",\"params\":");
        match self.params_millions {
            Some(p) => out.push_str(&fmt_f64(p)),
            None => out.push_str("null"),
        }
        out.push_str(",\"dataset\":\"");
        out.push_str(self.dataset.code());
        out.push_str("\",\"f1\":[");
        for (i, v) in self.per_seed_f1.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("],\"seen\":");
        out.push_str(if self.seen_in_training { "true" } else { "false" });
        out.push_str(",\"degraded\":");
        out.push_str(if self.degraded { "true" } else { "false" });
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`CheckpointRow::to_json`].
    pub fn from_json(line: &str) -> Result<CheckpointRow> {
        let obj = parse_object(line)?;
        let get = |key: &str| -> Result<&JsonValue> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| bad(format!("missing key `{key}`")))
        };
        let label = get("label")?.as_string()?;
        let name = get("name")?.as_string()?;
        let params_millions = match get("params")? {
            JsonValue::Null => None,
            v => Some(v.as_number()?),
        };
        let code = get("dataset")?.as_string()?;
        let dataset = DatasetId::parse(&code)
            .ok_or_else(|| bad(format!("unknown dataset code `{code}`")))?;
        let per_seed_f1 = get("f1")?.as_number_array()?;
        let seen_in_training = get("seen")?.as_bool()?;
        let degraded = get("degraded")?.as_bool()?;
        Ok(CheckpointRow {
            label,
            name,
            params_millions,
            dataset,
            per_seed_f1,
            seen_in_training,
            degraded,
        })
    }
}

/// One completed (matcher × perturbation) cell of a sensitivity sweep.
///
/// The perturbation-robustness harness (`sensitivity` bin in `em-bench`)
/// checkpoints each finished cell through the same JSONL machinery as the
/// LODO sweep, so an interrupted matrix run resumes without re-scoring
/// completed cells — and resumes bit-identically, because precision,
/// recall and F1 round-trip through the shortest-roundtrip float format.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Stable matcher label (factory identity across runs).
    pub matcher: String,
    /// Perturbation name, or `"clean"` for the unperturbed baseline.
    pub perturbation: String,
    /// Precision in percent on the perturbed pairs.
    pub precision: f64,
    /// Recall in percent on the perturbed pairs.
    pub recall: f64,
    /// F1 in percent on the perturbed pairs.
    pub f1: f64,
}

impl SensitivityRow {
    /// Serializes the row as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"matcher\":");
        push_json_string(&mut out, &self.matcher);
        out.push_str(",\"perturbation\":");
        push_json_string(&mut out, &self.perturbation);
        out.push_str(",\"precision\":");
        out.push_str(&fmt_f64(self.precision));
        out.push_str(",\"recall\":");
        out.push_str(&fmt_f64(self.recall));
        out.push_str(",\"f1\":");
        out.push_str(&fmt_f64(self.f1));
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`SensitivityRow::to_json`].
    pub fn from_json(line: &str) -> Result<SensitivityRow> {
        let obj = parse_object(line)?;
        let get = |key: &str| -> Result<&JsonValue> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| bad(format!("missing key `{key}`")))
        };
        Ok(SensitivityRow {
            matcher: get("matcher")?.as_string()?,
            perturbation: get("perturbation")?.as_string()?,
            precision: get("precision")?.as_number()?,
            recall: get("recall")?.as_number()?,
            f1: get("f1")?.as_number()?,
        })
    }
}

/// Formats an `f64` so that parsing the text recovers the exact same bits
/// (Rust's `Display` emits the shortest decimal that round-trips; the
/// non-finite spellings below are accepted by `str::parse::<f64>`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "inf".to_owned() } else { "-inf".to_owned() }
    } else {
        format!("{v}")
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn bad(msg: String) -> EmError {
    EmError::Checkpoint(format!("malformed checkpoint row: {msg}"))
}

/// The subset of JSON the checkpoint format uses: flat objects whose
/// values are strings, numbers, booleans, `null` or arrays of numbers.
#[derive(Debug)]
enum JsonValue {
    String(String),
    Number(f64),
    Bool(bool),
    Null,
    Numbers(Vec<f64>),
}

impl JsonValue {
    fn as_string(&self) -> Result<String> {
        match self {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(bad(format!("expected string, got {other:?}"))),
        }
    }
    fn as_number(&self) -> Result<f64> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(bad(format!("expected number, got {other:?}"))),
        }
    }
    fn as_bool(&self) -> Result<bool> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(bad(format!("expected bool, got {other:?}"))),
        }
    }
    fn as_number_array(&self) -> Result<Vec<f64>> {
        match self {
            JsonValue::Numbers(v) => Ok(v.clone()),
            other => Err(bad(format!("expected number array, got {other:?}"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                other => return Err(bad(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(bad("trailing bytes after object".into()));
    }
    Ok(pairs)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }
    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }
    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| bad("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| bad("non-ascii \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| bad("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| bad("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(bad(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are valid UTF-8 (the whole line is a &str);
                    // copy the full multi-byte sequence at once.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| bad("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(bad("unterminated string".into())),
            }
        }
    }
    fn number(&mut self) -> Result<f64> {
        // Accepts JSON numbers plus the `NaN` / `inf` / `-inf` spellings
        // `fmt_f64` emits; all are understood by `str::parse::<f64>`.
        let start = self.pos;
        if self.literal("NaN") || self.literal("inf") || self.literal("-inf") {
        } else {
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| bad(format!("bad number `{text}`")))
    }
    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Numbers(out));
                }
                loop {
                    self.skip_ws();
                    out.push(self.number()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Numbers(out));
                        }
                        other => {
                            return Err(bad(format!("expected `,` or `]`, got {other:?}")))
                        }
                    }
                }
            }
            _ => Ok(JsonValue::Number(self.number()?)),
        }
    }
}

/// Reads every complete row from a checkpoint file.
///
/// A partial **final** line (the run was killed mid-write) is silently
/// dropped; a malformed line anywhere else is reported as
/// [`EmError::Checkpoint`], because it indicates corruption rather than
/// interruption.
pub fn read_rows(path: &Path) -> Result<Vec<CheckpointRow>> {
    read_jsonl(path, CheckpointRow::from_json)
}

/// Reads every complete [`SensitivityRow`] from a sensitivity checkpoint,
/// with the same torn-final-line tolerance as [`read_rows`].
pub fn read_sensitivity_rows(path: &Path) -> Result<Vec<SensitivityRow>> {
    read_jsonl(path, SensitivityRow::from_json)
}

fn read_jsonl<T>(path: &Path, parse: impl Fn(&str) -> Result<T>) -> Result<Vec<T>> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| EmError::Checkpoint(format!("read {}: {e}", path.display())))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut rows = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse(line) {
            Ok(row) => rows.push(row),
            Err(_) if i + 1 == lines.len() => break, // torn final write
            Err(e) => {
                return Err(EmError::Checkpoint(format!(
                    "{} line {}: {e}",
                    path.display(),
                    i + 1
                )))
            }
        }
    }
    Ok(rows)
}

/// Append-only checkpoint writer shared by the evaluation workers.
///
/// Each [`CheckpointLog::append`] writes one line and flushes, so a row is
/// durable as soon as the item that produced it completes.
pub struct CheckpointLog {
    writer: Mutex<BufWriter<File>>,
}

impl CheckpointLog {
    /// Creates (truncates) the checkpoint file and seeds it with `retained`
    /// rows — the valid rows carried over from a previous interrupted run.
    /// Rewriting instead of appending keeps a torn final line from a killed
    /// run out of the resumed file.
    pub fn create(path: &Path, retained: &[CheckpointRow]) -> Result<CheckpointLog> {
        let file = File::create(path)
            .map_err(|e| EmError::Checkpoint(format!("create {}: {e}", path.display())))?;
        let log = CheckpointLog {
            writer: Mutex::new(BufWriter::new(file)),
        };
        for row in retained {
            log.append(row)?;
        }
        Ok(log)
    }

    /// Creates (truncates) the checkpoint file and seeds it with already
    /// serialized lines — the row-type-agnostic twin of
    /// [`CheckpointLog::create`], used by checkpoints whose rows are not
    /// [`CheckpointRow`] (e.g. the sensitivity matrix).
    pub fn create_lines(path: &Path, retained: &[String]) -> Result<CheckpointLog> {
        let file = File::create(path)
            .map_err(|e| EmError::Checkpoint(format!("create {}: {e}", path.display())))?;
        let log = CheckpointLog {
            writer: Mutex::new(BufWriter::new(file)),
        };
        for line in retained {
            log.append_line(line)?;
        }
        Ok(log)
    }

    /// Appends one completed row and flushes it to disk.
    pub fn append(&self, row: &CheckpointRow) -> Result<()> {
        self.append_line(&row.to_json())
    }

    /// Appends one pre-serialized JSON line and flushes it to disk.
    pub fn append_line(&self, line: &str) -> Result<()> {
        let mut w = self.writer.lock().unwrap();
        writeln!(w, "{line}")
            .and_then(|()| w.flush())
            .map_err(|e| EmError::Checkpoint(format!("append: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> CheckpointRow {
        CheckpointRow {
            label: "gpt4 \"quoted\"\\slash\n".into(),
            name: "MatchGPT [GPT-4]".into(),
            params_millions: Some(1760.0),
            dataset: DatasetId::Beer,
            per_seed_f1: vec![72.5, 0.1 + 0.2, 100.0 / 3.0],
            seen_in_training: false,
            degraded: true,
        }
    }

    #[test]
    fn row_round_trips_bit_exactly() {
        let r = row();
        let back = CheckpointRow::from_json(&r.to_json()).unwrap();
        assert_eq!(back.label, r.label);
        assert_eq!(back.name, r.name);
        assert_eq!(back.params_millions, r.params_millions);
        assert_eq!(back.dataset, r.dataset);
        assert_eq!(back.seen_in_training, r.seen_in_training);
        assert_eq!(back.degraded, r.degraded);
        for (a, b) in back.per_seed_f1.iter().zip(&r.per_seed_f1) {
            assert_eq!(a.to_bits(), b.to_bits(), "f64 must round-trip exactly");
        }
    }

    #[test]
    fn none_params_round_trip() {
        let mut r = row();
        r.params_millions = None;
        let back = CheckpointRow::from_json(&r.to_json()).unwrap();
        assert_eq!(back.params_millions, None);
    }

    #[test]
    fn non_finite_f1_round_trips() {
        let mut r = row();
        r.per_seed_f1 = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let back = CheckpointRow::from_json(&r.to_json()).unwrap();
        assert!(back.per_seed_f1[0].is_nan());
        assert_eq!(back.per_seed_f1[1], f64::INFINITY);
        assert_eq!(back.per_seed_f1[2], f64::NEG_INFINITY);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        for line in [
            "",
            "{",
            "{}",
            "not json",
            r#"{"label":"x"}"#,
            r#"{"label":"x","name":"y","params":null,"dataset":"NOPE","f1":[],"seen":false,"degraded":false}"#,
        ] {
            assert!(CheckpointRow::from_json(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn reader_tolerates_torn_final_line_only() {
        let dir = std::env::temp_dir().join(format!("em-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = row().to_json();

        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, format!("{good}\n{}", &good[..good.len() / 2])).unwrap();
        let rows = read_rows(&torn).unwrap();
        assert_eq!(rows.len(), 1);

        let corrupt = dir.join("corrupt.jsonl");
        std::fs::write(&corrupt, format!("garbage\n{good}\n")).unwrap();
        assert!(matches!(
            read_rows(&corrupt).unwrap_err(),
            EmError::Checkpoint(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn srow() -> SensitivityRow {
        SensitivityRow {
            matcher: "strsim".into(),
            perturbation: "misfield-2".into(),
            precision: 91.0 + 1.0 / 3.0,
            recall: 0.1 + 0.2,
            f1: 55.5,
        }
    }

    #[test]
    fn sensitivity_row_round_trips_bit_exactly() {
        let r = srow();
        let back = SensitivityRow::from_json(&r.to_json()).unwrap();
        assert_eq!(back.matcher, r.matcher);
        assert_eq!(back.perturbation, r.perturbation);
        assert_eq!(back.precision.to_bits(), r.precision.to_bits());
        assert_eq!(back.recall.to_bits(), r.recall.to_bits());
        assert_eq!(back.f1.to_bits(), r.f1.to_bits());
    }

    #[test]
    fn sensitivity_reader_tolerates_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("em-sens-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = srow().to_json();

        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, format!("{good}\n{}", &good[..good.len() / 2])).unwrap();
        assert_eq!(read_sensitivity_rows(&torn).unwrap(), vec![srow()]);

        let corrupt = dir.join("corrupt.jsonl");
        std::fs::write(&corrupt, format!("garbage\n{good}\n")).unwrap();
        assert!(read_sensitivity_rows(&corrupt).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn line_level_log_cycle() {
        let dir = std::env::temp_dir().join(format!("em-sens-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sens.jsonl");
        let r1 = srow();
        let mut r2 = srow();
        r2.perturbation = "null-1".into();

        let log = CheckpointLog::create_lines(&path, &[r1.to_json()]).unwrap();
        log.append_line(&r2.to_json()).unwrap();
        drop(log);

        assert_eq!(read_sensitivity_rows(&path).unwrap(), vec![r1, r2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_create_append_read_cycle() {
        let dir = std::env::temp_dir().join(format!("em-ckpt-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let r1 = row();
        let mut r2 = row();
        r2.dataset = DatasetId::Abt;
        r2.degraded = false;

        let log = CheckpointLog::create(&path, &[r1.clone()]).unwrap();
        log.append(&r2).unwrap();
        drop(log);

        let rows = read_rows(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], r1);
        assert_eq!(rows[1], r2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
