//! Benchmark datasets and their identities.
//!
//! The study evaluates on the 11 benchmark datasets of Table 1. Each dataset
//! is a labelled set of record pairs `(r_l, r_r, y)` drawn from two relations
//! with `k` aligned attributes.

use crate::pair::LabeledPair;
use crate::record::AttrType;
use std::fmt;

/// Identifiers of the 11 benchmark datasets (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// Abt-Buy (web product).
    Abt,
    /// Web Data Commons (web product).
    Wdc,
    /// DBLP-ACM (citation).
    Dbac,
    /// DBLP-Google (citation).
    Dbgo,
    /// Fodors-Zagats (restaurant).
    Foza,
    /// Zomato-Yelp (restaurant).
    Zoye,
    /// Amazon-Google (software).
    Amgo,
    /// Beer (drink).
    Beer,
    /// iTunes-Amazon (music).
    Itam,
    /// RottenTomato-IMDB (movie).
    Roim,
    /// Walmart-Amazon (electronics).
    Waam,
}

impl DatasetId {
    /// All 11 datasets in Table 1 order.
    pub const ALL: [DatasetId; 11] = [
        DatasetId::Abt,
        DatasetId::Wdc,
        DatasetId::Dbac,
        DatasetId::Dbgo,
        DatasetId::Foza,
        DatasetId::Zoye,
        DatasetId::Amgo,
        DatasetId::Beer,
        DatasetId::Itam,
        DatasetId::Roim,
        DatasetId::Waam,
    ];

    /// The four-letter code used in the paper's tables.
    pub fn code(&self) -> &'static str {
        match self {
            DatasetId::Abt => "ABT",
            DatasetId::Wdc => "WDC",
            DatasetId::Dbac => "DBAC",
            DatasetId::Dbgo => "DBGO",
            DatasetId::Foza => "FOZA",
            DatasetId::Zoye => "ZOYE",
            DatasetId::Amgo => "AMGO",
            DatasetId::Beer => "BEER",
            DatasetId::Itam => "ITAM",
            DatasetId::Roim => "ROIM",
            DatasetId::Waam => "WAAM",
        }
    }

    /// Full dataset name as listed in Table 1.
    pub fn full_name(&self) -> &'static str {
        match self {
            DatasetId::Abt => "Abt-Buy",
            DatasetId::Wdc => "Web Data Commons",
            DatasetId::Dbac => "DBLP-ACM",
            DatasetId::Dbgo => "DBLP-Google",
            DatasetId::Foza => "Fodors-Zagats",
            DatasetId::Zoye => "Zomato-Yelp",
            DatasetId::Amgo => "Amazon-Google",
            DatasetId::Beer => "Beer",
            DatasetId::Itam => "iTunes-Amazon",
            DatasetId::Roim => "RottenTomato-IMDB",
            DatasetId::Waam => "Walmart-Amazon",
        }
    }

    /// Domain of the dataset (Table 1 column "Domain").
    pub fn domain(&self) -> Domain {
        match self {
            DatasetId::Abt | DatasetId::Wdc => Domain::WebProduct,
            DatasetId::Dbac | DatasetId::Dbgo => Domain::Citation,
            DatasetId::Foza | DatasetId::Zoye => Domain::Restaurant,
            DatasetId::Amgo => Domain::Software,
            DatasetId::Beer => Domain::Drink,
            DatasetId::Itam => Domain::Music,
            DatasetId::Roim => Domain::Movie,
            DatasetId::Waam => Domain::Electronics,
        }
    }

    /// Parses a four-letter code (case-insensitive).
    pub fn parse(code: &str) -> Option<DatasetId> {
        let up = code.to_ascii_uppercase();
        DatasetId::ALL.iter().copied().find(|d| d.code() == up)
    }

    /// `true` if another dataset in the benchmark shares this dataset's
    /// domain (used for Finding 5's overlapping-domain analysis).
    pub fn has_domain_sibling(&self) -> bool {
        DatasetId::ALL
            .iter()
            .any(|other| other != self && other.domain() == self.domain())
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Entity domains covered by the benchmark (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Web products with free-text titles and descriptions.
    WebProduct,
    /// Academic citations (titles, authors, venues, years).
    Citation,
    /// Restaurants (names, addresses, phone numbers, cuisine).
    Restaurant,
    /// Software products.
    Software,
    /// Beers (name, brewery, style, ABV).
    Drink,
    /// Music tracks (song, artist, album, genre, ...).
    Music,
    /// Movies (title, director, actors, year, rating).
    Movie,
    /// Consumer electronics (title, category, brand, model, price).
    Electronics,
}

impl Domain {
    /// Label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::WebProduct => "web product",
            Domain::Citation => "citation",
            Domain::Restaurant => "restaurant",
            Domain::Software => "software",
            Domain::Drink => "drink",
            Domain::Music => "music",
            Domain::Movie => "movie",
            Domain::Electronics => "electronics",
        }
    }
}

/// Expected statistics for one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset identity.
    pub id: DatasetId,
    /// Number of aligned attributes.
    pub attrs: usize,
    /// Number of positive (matching) pairs.
    pub positives: usize,
    /// Number of negative (non-matching) pairs.
    pub negatives: usize,
}

impl DatasetSpec {
    /// Total number of labelled pairs.
    pub fn total(&self) -> usize {
        self.positives + self.negatives
    }

    /// Positive rate (label imbalance), in `(0, 1)`.
    pub fn positive_rate(&self) -> f64 {
        self.positives as f64 / self.total() as f64
    }
}

/// Table 1 of the paper, verbatim.
pub const TABLE1: [DatasetSpec; 11] = [
    DatasetSpec {
        id: DatasetId::Abt,
        attrs: 3,
        positives: 1028,
        negatives: 8547,
    },
    DatasetSpec {
        id: DatasetId::Wdc,
        attrs: 3,
        positives: 2250,
        negatives: 7992,
    },
    DatasetSpec {
        id: DatasetId::Dbac,
        attrs: 4,
        positives: 2220,
        negatives: 10143,
    },
    DatasetSpec {
        id: DatasetId::Dbgo,
        attrs: 4,
        positives: 5347,
        negatives: 23360,
    },
    DatasetSpec {
        id: DatasetId::Foza,
        attrs: 6,
        positives: 110,
        negatives: 836,
    },
    DatasetSpec {
        id: DatasetId::Zoye,
        attrs: 7,
        positives: 90,
        negatives: 354,
    },
    DatasetSpec {
        id: DatasetId::Amgo,
        attrs: 3,
        positives: 1167,
        negatives: 10293,
    },
    DatasetSpec {
        id: DatasetId::Beer,
        attrs: 4,
        positives: 68,
        negatives: 382,
    },
    DatasetSpec {
        id: DatasetId::Itam,
        attrs: 8,
        positives: 132,
        negatives: 407,
    },
    DatasetSpec {
        id: DatasetId::Roim,
        attrs: 5,
        positives: 190,
        negatives: 410,
    },
    DatasetSpec {
        id: DatasetId::Waam,
        attrs: 5,
        positives: 962,
        negatives: 9280,
    },
];

/// Looks up the Table 1 specification of a dataset.
pub fn spec_of(id: DatasetId) -> DatasetSpec {
    TABLE1
        .iter()
        .copied()
        .find(|s| s.id == id)
        .expect("every DatasetId has a Table 1 row")
}

/// A materialized benchmark dataset: labelled record pairs plus metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Dataset identity.
    pub id: DatasetId,
    /// Column types, aligned with record values. Only consumed by components
    /// documented to violate cross-dataset Restriction 2 (ZeroER).
    pub attr_types: Vec<AttrType>,
    /// Labelled pairs.
    pub pairs: Vec<LabeledPair>,
}

impl Benchmark {
    /// Number of aligned attributes.
    pub fn arity(&self) -> usize {
        self.attr_types.len()
    }

    /// Count of positive pairs.
    pub fn positives(&self) -> usize {
        self.pairs.iter().filter(|p| p.label).count()
    }

    /// Count of negative pairs.
    pub fn negatives(&self) -> usize {
        self.pairs.len() - self.positives()
    }

    /// Positive rate of the labelled pairs.
    pub fn positive_rate(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.positives() as f64 / self.pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_datasets_once() {
        let mut seen = std::collections::HashSet::new();
        for spec in TABLE1 {
            assert!(seen.insert(spec.id));
        }
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn table1_statistics_match_the_paper() {
        // Spot-check rows quoted in the paper text.
        let abt = spec_of(DatasetId::Abt);
        assert_eq!((abt.attrs, abt.positives, abt.negatives), (3, 1028, 8547));
        let dbgo = spec_of(DatasetId::Dbgo);
        assert_eq!(
            (dbgo.attrs, dbgo.positives, dbgo.negatives),
            (4, 5347, 23360)
        );
        let beer = spec_of(DatasetId::Beer);
        assert_eq!((beer.attrs, beer.positives, beer.negatives), (4, 68, 382));
    }

    #[test]
    fn dbgo_is_the_largest_dataset() {
        // Section 4.2.1 uses DBGO "since it is the largest dataset".
        let max = TABLE1.iter().max_by_key(|s| s.total()).unwrap();
        assert_eq!(max.id, DatasetId::Dbgo);
    }

    #[test]
    fn codes_round_trip_through_parse() {
        for id in DatasetId::ALL {
            assert_eq!(DatasetId::parse(id.code()), Some(id));
            assert_eq!(DatasetId::parse(&id.code().to_lowercase()), Some(id));
        }
        assert_eq!(DatasetId::parse("NOPE"), None);
    }

    #[test]
    fn six_datasets_share_a_domain() {
        // Finding 5: "six datasets share the same domain with at least one
        // other dataset" (ABT+WDC, DBAC+DBGO, FOZA+ZOYE).
        let siblings: Vec<_> = DatasetId::ALL
            .iter()
            .filter(|d| d.has_domain_sibling())
            .collect();
        assert_eq!(siblings.len(), 6);
    }

    #[test]
    fn positive_rates_are_imbalanced() {
        for spec in TABLE1 {
            let rate = spec.positive_rate();
            assert!(rate > 0.0 && rate < 0.5, "{}: {rate}", spec.id);
        }
    }

    #[test]
    fn display_uses_code() {
        assert_eq!(format!("{}", DatasetId::Itam), "ITAM");
    }

    #[test]
    fn domain_labels_match_table1() {
        assert_eq!(DatasetId::Abt.domain().label(), "web product");
        assert_eq!(DatasetId::Waam.domain().label(), "electronics");
        assert_eq!(DatasetId::Beer.domain().label(), "drink");
    }
}
