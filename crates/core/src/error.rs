//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by the evaluation framework and the matchers built on it.
#[derive(Debug, Clone, PartialEq)]
pub enum EmError {
    /// A matcher was asked to predict before [`crate::Matcher::fit`] succeeded.
    NotFitted { matcher: String },
    /// The input to an operation was structurally invalid (empty dataset,
    /// mismatched lengths, attribute-count mismatch, ...).
    InvalidInput(String),
    /// A numeric routine failed to converge or produced a non-finite value.
    Numeric(String),
    /// A dataset with the requested identifier is not part of the benchmark.
    UnknownDataset(String),
    /// Configuration error (bad hyper-parameter, impossible model shape, ...).
    Config(String),
    /// Two slices that must align element-wise have different lengths
    /// (e.g. predictions vs. labels in [`crate::Confusion`]).
    LengthMismatch {
        /// Length of the prediction-side slice.
        predictions: usize,
        /// Length of the label-side slice.
        labels: usize,
    },
    /// A worker thread panicked while evaluating one (matcher × target)
    /// item; the panic was caught and converted into this per-item error
    /// instead of aborting the whole run.
    WorkerPanic(String),
    /// Reading or writing the evaluation checkpoint log failed, or the log
    /// itself is corrupt (a torn *final* line is tolerated, not reported).
    Checkpoint(String),
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::NotFitted { matcher } => {
                write!(f, "matcher `{matcher}` used before fit() completed")
            }
            EmError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            EmError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            EmError::UnknownDataset(name) => write!(f, "unknown dataset: {name}"),
            EmError::Config(msg) => write!(f, "configuration error: {msg}"),
            EmError::LengthMismatch {
                predictions,
                labels,
            } => write!(
                f,
                "length mismatch: {predictions} predictions vs {labels} labels"
            ),
            EmError::WorkerPanic(msg) => write!(f, "evaluation worker panicked: {msg}"),
            EmError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
        }
    }
}

impl std::error::Error for EmError {}

/// Convenience result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, EmError>;

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces) for an [`EmError::WorkerPanic`] message. Shared by every
/// join site that contains worker panics instead of aborting.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmError::NotFitted {
            matcher: "ditto".into(),
        };
        assert!(e.to_string().contains("ditto"));
        let e = EmError::UnknownDataset("XYZ".into());
        assert!(e.to_string().contains("XYZ"));
        let e = EmError::InvalidInput("empty".into());
        assert!(e.to_string().contains("empty"));
        let e = EmError::Numeric("nan".into());
        assert!(e.to_string().contains("nan"));
        let e = EmError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = EmError::LengthMismatch {
            predictions: 3,
            labels: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = EmError::WorkerPanic("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = EmError::Checkpoint("torn".into());
        assert!(e.to_string().contains("torn"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EmError::InvalidInput("x".into()),
            EmError::InvalidInput("x".into())
        );
        assert_ne!(
            EmError::InvalidInput("x".into()),
            EmError::Numeric("x".into())
        );
    }
}
