//! The evaluation driver implementing the experimental protocol of
//! Section 2.2 / 4.1:
//!
//! * test sets are down-sampled to at most 1,250 pairs (the MatchGPT
//!   protocol) with a sample that is **identical across all baselines**
//!   (seeded only by the dataset identity, not the repetition seed);
//! * five repetition seeds vary the serialization column order and all
//!   stochastic matcher choices;
//! * per dataset we report mean ± std of F1 over the seeds; the "Mean"
//!   column is the macro-average over datasets computed per seed and then
//!   aggregated.

use crate::dataset::{Benchmark, DatasetId};
use crate::error::{panic_message, EmError, Result};
use crate::lodo::{lodo_split, LodoSplit};
use crate::matcher::{EvalBatch, Matcher};
use crate::metrics::{f1_percent, macro_average, MeanStd};
use crate::pair::LabeledPair;
use crate::serialize::Serializer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Mutex;

/// Maximum test-set size, following the down-sampling protocol adopted from
/// the MatchGPT study (Section 4.1, "Data preparation").
pub const TEST_CAP: usize = 1250;

/// Number of repetition seeds (Section 2.2, "Repetitions").
pub const DEFAULT_SEEDS: u64 = 5;

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Repetition seeds; the paper uses five distinct seeds.
    pub seeds: Vec<u64>,
    /// Maximum number of test pairs per dataset.
    pub test_cap: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            seeds: (0..DEFAULT_SEEDS).collect(),
            test_cap: TEST_CAP,
        }
    }
}

impl EvalConfig {
    /// A reduced configuration for fast tests: fewer seeds, smaller cap.
    pub fn quick(seeds: u64, cap: usize) -> Self {
        EvalConfig {
            seeds: (0..seeds).collect(),
            test_cap: cap,
        }
    }
}

/// Draws the deterministic test sample for a dataset.
///
/// The sample depends only on the dataset identity and the cap — not on the
/// repetition seed or the matcher — so that "the test sets used for
/// evaluation remain identical across all compared baselines".
pub fn test_sample(bench: &Benchmark, cap: usize) -> Vec<&LabeledPair> {
    let mut idx: Vec<usize> = (0..bench.pairs.len()).collect();
    if bench.pairs.len() > cap {
        // Stable per-dataset seed: hash of the four-letter code.
        let seed = bench
            .id
            .code()
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.truncate(cap);
        idx.sort_unstable(); // deterministic order after sampling
    }
    idx.into_iter().map(|i| &bench.pairs[i]).collect()
}

/// Builds the evaluation batch for one (dataset, seed) combination: the
/// fixed test sample serialized under the seed's column permutation.
pub fn build_batch(bench: &Benchmark, cap: usize, seed: u64) -> (EvalBatch, Vec<bool>) {
    let sample = test_sample(bench, cap);
    let ser = Serializer::shuffled(bench.arity(), seed);
    let mut serialized = Vec::with_capacity(sample.len());
    let mut raw = Vec::with_capacity(sample.len());
    let mut labels = Vec::with_capacity(sample.len());
    for lp in sample {
        serialized.push(ser.pair(&lp.pair));
        raw.push(lp.pair.clone());
        labels.push(lp.label);
    }
    (
        EvalBatch {
            serialized,
            raw,
            attr_types: bench.attr_types.clone(),
        },
        labels,
    )
}

/// F1 results of one matcher on one target dataset, over all seeds.
#[derive(Debug, Clone)]
pub struct DatasetScore {
    /// The target dataset.
    pub dataset: DatasetId,
    /// Per-seed F1 scores in percent.
    pub per_seed_f1: Vec<f64>,
    /// `true` if the matcher saw this dataset during its own training
    /// (bracketed in Table 3).
    pub seen_in_training: bool,
    /// `true` if any seed's predictions came from a degraded fallback path
    /// (the hosted-LLM circuit breaker was open and a registered fallback
    /// matcher answered instead).
    pub degraded: bool,
}

impl DatasetScore {
    /// Mean ± std over the seeds.
    pub fn summary(&self) -> MeanStd {
        MeanStd::of(&self.per_seed_f1)
    }
}

/// Full LODO evaluation result of one matcher across all datasets.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Matcher display name.
    pub matcher: String,
    /// Parameter count in millions (None for parameter-free).
    pub params_millions: Option<f64>,
    /// Per-dataset scores, in the order the benchmark suite was given.
    pub scores: Vec<DatasetScore>,
}

impl EvalReport {
    /// Looks up the score for one dataset.
    pub fn score_for(&self, id: DatasetId) -> Option<&DatasetScore> {
        self.scores.iter().find(|s| s.dataset == id)
    }

    /// Macro-averaged F1 per seed (over datasets), then aggregated —
    /// the "Mean" column of Tables 3/4.
    pub fn mean_column(&self) -> MeanStd {
        if self.scores.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n_seeds = self.scores[0].per_seed_f1.len();
        let per_seed_macro: Vec<f64> = (0..n_seeds)
            .map(|s| {
                let per_ds: Vec<f64> = self.scores.iter().map(|d| d.per_seed_f1[s]).collect();
                macro_average(&per_ds)
            })
            .collect();
        MeanStd::of(&per_seed_macro)
    }

    /// Macro-average over datasets *excluding* any the matcher saw during
    /// training — the fair cross-dataset mean (used when discussing
    /// Jellyfish, which cannot be fairly averaged).
    pub fn fair_mean_column(&self) -> MeanStd {
        let fair: Vec<&DatasetScore> = self.scores.iter().filter(|s| !s.seen_in_training).collect();
        if fair.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n_seeds = fair[0].per_seed_f1.len();
        let per_seed_macro: Vec<f64> = (0..n_seeds)
            .map(|s| {
                let per_ds: Vec<f64> = fair.iter().map(|d| d.per_seed_f1[s]).collect();
                macro_average(&per_ds)
            })
            .collect();
        MeanStd::of(&per_seed_macro)
    }
}

/// Evaluates one matcher on one LODO target over all seeds.
///
/// Emits one `eval.item` span per call (with nested `eval.fit` /
/// `eval.predict` spans per seed) and feeds the `eval.pairs_scored`
/// counter and the per-(matcher × target) latency histograms when
/// [`em_obs`] capture is on.
pub fn evaluate_on_target(
    matcher: &mut dyn Matcher,
    split: &LodoSplit<'_>,
    cfg: &EvalConfig,
) -> Result<DatasetScore> {
    let target = split.target_id();
    let _span = em_obs::span!("eval.item", matcher = matcher.name(), target = target.code());
    let t0 = em_obs::capture_enabled().then(std::time::Instant::now);
    let mut per_seed_f1 = Vec::with_capacity(cfg.seeds.len());
    let mut degraded = false;
    for &seed in &cfg.seeds {
        {
            let _fit = em_obs::span!("eval.fit", seed = seed);
            matcher.fit(split, seed)?;
        }
        let (batch, labels) = build_batch(split.target, cfg.test_cap, seed);
        let preds = {
            let _predict = em_obs::span!("eval.predict", seed = seed, pairs = labels.len());
            matcher.predict(&batch)?
        };
        degraded |= matcher.was_degraded();
        if em_obs::capture_enabled() {
            em_obs::metrics::counter("eval.pairs_scored").add(labels.len() as u64);
        }
        per_seed_f1.push(f1_percent(&preds, &labels)?);
    }
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        em_obs::metrics::histogram("eval.item_ns").record(ns);
        em_obs::metrics::histogram(&format!(
            "eval.item_ns.{}.{}",
            matcher.name(),
            target.code()
        ))
        .record(ns);
    }
    Ok(DatasetScore {
        dataset: target,
        per_seed_f1,
        seen_in_training: matcher.saw_during_training(target),
        degraded,
    })
}

/// Evaluates one matcher across every LODO split of the suite.
pub fn evaluate_matcher(
    matcher: &mut dyn Matcher,
    benchmarks: &[Benchmark],
    cfg: &EvalConfig,
) -> Result<EvalReport> {
    let mut scores = Vec::with_capacity(benchmarks.len());
    for bench in benchmarks {
        let split = lodo_split(benchmarks, bench.id)?;
        scores.push(evaluate_on_target(matcher, &split, cfg)?);
    }
    Ok(EvalReport {
        matcher: matcher.name(),
        params_millions: matcher.params_millions(),
        scores,
    })
}

/// Evaluates many matchers across the whole suite using a bounded
/// work-stealing pool over (matcher × LODO-target) work items.
///
/// The seed implementation spawned one thread per matcher, which both
/// oversubscribed the machine for large studies (a caller with 100
/// factories got 100 threads) and serialized each matcher's eleven LODO
/// targets behind one another. Here the cross product of matchers and
/// targets becomes the unit of scheduling: items are spread over a
/// [`crate::workqueue::WorkQueue`] and drained by at most
/// `em_nn::threadpool::max_threads()` workers (the budget shared with the
/// GEMM row-band parallelism, so nested parallel regions never
/// oversubscribe). Idle workers steal targets from the busiest matcher.
///
/// Each worker constructs its own matcher instances via the factories —
/// hence `Fn` rather than the seed's `FnOnce` — and every item runs
/// `fit` + `predict` from scratch per seed, exactly as
/// [`evaluate_on_target`] always has, so results are identical to the
/// sequential order regardless of worker count or steal pattern.
pub fn evaluate_all<F>(
    factories: Vec<(String, F)>,
    benchmarks: &[Benchmark],
    cfg: &EvalConfig,
) -> Result<Vec<EvalReport>>
where
    F: Fn() -> Box<dyn Matcher> + Send + Sync,
{
    evaluate_all_inner(factories, benchmarks, cfg, None)
}

/// Like [`evaluate_all`], but streams every completed (matcher × target)
/// item to a JSONL checkpoint file as soon as it finishes.
///
/// With `resume = true` an existing checkpoint is read back first and the
/// items it covers are served from the log instead of being re-evaluated —
/// the per-seed F1 values round-trip bit-identically (see
/// [`crate::checkpoint`]), so a killed-and-resumed sweep produces exactly
/// the reports of an uninterrupted one. Rows are matched by (factory
/// label × dataset) and must carry one F1 value per configured seed;
/// stale rows (changed seed count, unknown label) are discarded and their
/// items re-run. With `resume = false` any existing file is overwritten.
pub fn evaluate_all_resumable<F>(
    factories: Vec<(String, F)>,
    benchmarks: &[Benchmark],
    cfg: &EvalConfig,
    checkpoint_path: &std::path::Path,
    resume: bool,
) -> Result<Vec<EvalReport>>
where
    F: Fn() -> Box<dyn Matcher> + Send + Sync,
{
    evaluate_all_inner(factories, benchmarks, cfg, Some((checkpoint_path, resume)))
}

fn evaluate_all_inner<F>(
    factories: Vec<(String, F)>,
    benchmarks: &[Benchmark],
    cfg: &EvalConfig,
    checkpoint: Option<(&std::path::Path, bool)>,
) -> Result<Vec<EvalReport>>
where
    F: Fn() -> Box<dyn Matcher> + Send + Sync,
{
    use crate::checkpoint::{read_rows, CheckpointLog, CheckpointRow};

    // Resume: load completed rows keyed by (factory label, dataset) and
    // keep only those that still describe a scheduled item under the
    // current configuration.
    let mut done: Vec<Option<CheckpointRow>> = (0..factories.len() * benchmarks.len())
        .map(|_| None)
        .collect();
    if let Some((path, true)) = checkpoint {
        if path.exists() {
            for row in read_rows(path)? {
                let (Some(mi), Some(bi)) = (
                    factories.iter().position(|(label, _)| *label == row.label),
                    benchmarks.iter().position(|b| b.id == row.dataset),
                ) else {
                    continue;
                };
                if row.per_seed_f1.len() == cfg.seeds.len() {
                    em_obs::event!(
                        info,
                        "eval.resume_skip",
                        matcher = row.label.as_str(),
                        target = row.dataset.code()
                    );
                    done[mi * benchmarks.len() + bi] = Some(row);
                }
            }
        }
    }
    let log = match checkpoint {
        Some((path, _)) => {
            let retained: Vec<CheckpointRow> = done.iter().flatten().cloned().collect();
            Some(CheckpointLog::create(path, &retained)?)
        }
        None => None,
    };

    let items: Vec<(usize, usize)> = (0..factories.len())
        .flat_map(|mi| (0..benchmarks.len()).map(move |bi| (mi, bi)))
        .filter(|&(mi, bi)| done[mi * benchmarks.len() + bi].is_none())
        .collect();
    // Bounded concurrency: the calling thread plus however many extra
    // workers the shared budget grants (never more than there are items,
    // and never more than available parallelism).
    let reservation = em_nn::threadpool::reserve_workers(items.len().saturating_sub(1));
    let nworkers = reservation.total().min(items.len()).max(1);
    let queue = crate::workqueue::WorkQueue::new(nworkers, items);

    // One result slot per (matcher, target); each is written exactly once —
    // resumed items are pre-filled from the checkpoint before any worker
    // starts, the rest by whichever worker drains them.
    let slots: Vec<Mutex<Option<Result<DatasetScore>>>> = done
        .iter()
        .map(|row| {
            Mutex::new(row.as_ref().map(|r| {
                Ok(DatasetScore {
                    dataset: r.dataset,
                    per_seed_f1: r.per_seed_f1.clone(),
                    seen_in_training: r.seen_in_training,
                    degraded: r.degraded,
                })
            }))
        })
        .collect();
    // Display name and parameter count, recorded by whichever worker
    // constructs an instance of the matcher first — or carried over from
    // the checkpoint for matchers whose items were all resumed.
    let meta: Vec<Mutex<Option<(String, Option<f64>)>>> = (0..factories.len())
        .map(|mi| {
            Mutex::new(
                done[mi * benchmarks.len()..(mi + 1) * benchmarks.len()]
                    .iter()
                    .flatten()
                    .next()
                    .map(|r| (r.name.clone(), r.params_millions)),
            )
        })
        .collect();
    // First checkpoint-append failure, surfaced after the sweep (a lost
    // checkpoint must not silently break a later `--resume`).
    let ckpt_err: Mutex<Option<EmError>> = Mutex::new(None);

    let worker = |id: usize| {
        // Matcher instances are per worker and lazily built, so a worker
        // that processes several targets of one matcher reuses its
        // instance, while matchers it never touches are never built.
        let mut matchers: Vec<Option<Box<dyn Matcher>>> =
            (0..factories.len()).map(|_| None).collect();
        while let Some((mi, bi)) = queue.next(id) {
            // A panicking matcher (construction, fit, or predict) used to
            // kill this worker thread and abort the whole run via the
            // scope join; catch it and record a per-item error instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let matcher = matchers[mi].get_or_insert_with(|| {
                    let m = (factories[mi].1)();
                    meta[mi]
                        .lock()
                        .unwrap()
                        .get_or_insert_with(|| (m.name(), m.params_millions()));
                    m
                });
                lodo_split(benchmarks, benchmarks[bi].id)
                    .and_then(|split| evaluate_on_target(matcher.as_mut(), &split, cfg))
            }));
            let result = outcome.unwrap_or_else(|payload| {
                // The instance's internal state is unknown after a panic;
                // drop it so later items rebuild from the factory.
                matchers[mi] = None;
                em_obs::event!(
                    error,
                    "eval.worker_panic",
                    matcher = factories[mi].0.as_str(),
                    target = benchmarks[bi].id.code()
                );
                Err(EmError::WorkerPanic(panic_message(payload.as_ref())))
            });
            if let (Some(log), Ok(score)) = (&log, &result) {
                let (name, params) = meta[mi]
                    .lock()
                    .unwrap()
                    .clone()
                    .unwrap_or_else(|| (factories[mi].0.clone(), None));
                let row = crate::checkpoint::CheckpointRow {
                    label: factories[mi].0.clone(),
                    name,
                    params_millions: params,
                    dataset: benchmarks[bi].id,
                    per_seed_f1: score.per_seed_f1.clone(),
                    seen_in_training: score.seen_in_training,
                    degraded: score.degraded,
                };
                if let Err(e) = log.append(&row) {
                    ckpt_err.lock().unwrap().get_or_insert(e);
                }
            }
            *slots[mi * benchmarks.len() + bi].lock().unwrap() = Some(result);
        }
    };

    // A panic inside matcher code is already contained per item by the
    // catch_unwind above; a panic in the worker loop itself (poisoned
    // lock, queue bug) is collected at the join and surfaced as an error
    // instead of aborting the caller via the old `.expect` on join.
    let join_panics: Vec<String> = if nworkers <= 1 {
        worker(0);
        Vec::new()
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let mut handles = Vec::new();
            for id in 1..nworkers {
                handles.push(scope.spawn(move || worker(id)));
            }
            worker(0);
            handles
                .into_iter()
                .filter_map(|h| h.join().err())
                .map(|payload| panic_message(payload.as_ref()))
                .collect()
        })
    };
    drop(reservation);
    if let Some(e) = ckpt_err.into_inner().unwrap() {
        return Err(e);
    }
    if !join_panics.is_empty() {
        return Err(EmError::WorkerPanic(join_panics.join("; ")));
    }

    let mut slots = slots.into_iter();
    factories
        .iter()
        .zip(meta)
        .map(|((_, factory), meta)| {
            let scores = benchmarks
                .iter()
                .map(|_| {
                    slots
                        .next()
                        .expect("one slot per (matcher, target)")
                        .into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .unwrap_or_else(|| {
                            Err(EmError::WorkerPanic(
                                "work item was never completed".into(),
                            ))
                        })
                })
                .collect::<Result<Vec<DatasetScore>>>()?;
            // With an empty suite no worker ever built the matcher; probe
            // an instance just for its metadata.
            let (name, params) = meta
                .into_inner()
                .unwrap()
                .unwrap_or_else(|| {
                    let probe = factory();
                    (probe.name(), probe.params_millions())
                });
            Ok(EvalReport {
                matcher: name,
                params_millions: params,
                scores,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttrType, AttrValue, Record};

    fn bench_with_pairs(id: DatasetId, n: usize) -> Benchmark {
        let pairs = (0..n)
            .map(|i| {
                let l = Record::new(
                    i as u64,
                    vec![
                        AttrValue::Text(format!("item {i}")),
                        AttrValue::Number(i as f64),
                    ],
                );
                let r = if i % 3 == 0 {
                    l.clone()
                } else {
                    Record::new(
                        i as u64 + 10_000,
                        vec![
                            AttrValue::Text(format!("other {i}")),
                            AttrValue::Number(i as f64 + 1.0),
                        ],
                    )
                };
                LabeledPair::new(l, r, i % 3 == 0)
            })
            .collect();
        Benchmark {
            id,
            attr_types: vec![AttrType::ShortText, AttrType::Numeric],
            pairs,
        }
    }

    fn suite() -> Vec<Benchmark> {
        DatasetId::ALL
            .iter()
            .map(|&id| bench_with_pairs(id, 30))
            .collect()
    }

    /// Matcher that predicts "match" iff both serialized sides are equal.
    struct ExactMatch;
    impl Matcher for ExactMatch {
        fn name(&self) -> String {
            "ExactMatch".into()
        }
        fn fit(&mut self, _: &LodoSplit<'_>, _: u64) -> Result<()> {
            Ok(())
        }
        fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
            Ok(batch.serialized.iter().map(|p| p.left == p.right).collect())
        }
    }

    #[test]
    fn test_sample_caps_and_is_deterministic() {
        let b = bench_with_pairs(DatasetId::Dbgo, 5000);
        let s1 = test_sample(&b, 1250);
        let s2 = test_sample(&b, 1250);
        assert_eq!(s1.len(), 1250);
        assert_eq!(
            s1.iter().map(|p| p.pair.left.id).collect::<Vec<_>>(),
            s2.iter().map(|p| p.pair.left.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn small_datasets_are_not_sampled() {
        let b = bench_with_pairs(DatasetId::Beer, 100);
        assert_eq!(test_sample(&b, 1250).len(), 100);
    }

    #[test]
    fn different_datasets_sample_differently() {
        let a = bench_with_pairs(DatasetId::Abt, 3000);
        let b = bench_with_pairs(DatasetId::Wdc, 3000);
        let sa: Vec<u64> = test_sample(&a, 10).iter().map(|p| p.pair.left.id).collect();
        let sb: Vec<u64> = test_sample(&b, 10).iter().map(|p| p.pair.left.id).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn batch_labels_align_with_pairs() {
        let b = bench_with_pairs(DatasetId::Abt, 30);
        let (batch, labels) = build_batch(&b, 1250, 0);
        assert_eq!(batch.len(), labels.len());
        assert_eq!(batch.raw.len(), labels.len());
    }

    #[test]
    fn exact_matcher_scores_perfectly_on_exact_data() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let mut m = ExactMatch;
        let score = evaluate_on_target(&mut m, &split, &EvalConfig::quick(2, 1250)).unwrap();
        for f1 in &score.per_seed_f1 {
            assert!((*f1 - 100.0).abs() < 1e-9, "f1 = {f1}");
        }
    }

    #[test]
    fn full_report_has_all_datasets_and_mean() {
        let s = suite();
        let mut m = ExactMatch;
        let report = evaluate_matcher(&mut m, &s, &EvalConfig::quick(2, 1250)).unwrap();
        assert_eq!(report.scores.len(), 11);
        assert!((report.mean_column().mean - 100.0).abs() < 1e-9);
        assert!(report.score_for(DatasetId::Waam).is_some());
    }

    #[test]
    fn fair_mean_excludes_seen_datasets() {
        let s = suite();
        struct HalfSeen;
        impl Matcher for HalfSeen {
            fn name(&self) -> String {
                "HalfSeen".into()
            }
            fn fit(&mut self, _: &LodoSplit<'_>, _: u64) -> Result<()> {
                Ok(())
            }
            fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
                Ok(batch.serialized.iter().map(|p| p.left == p.right).collect())
            }
            fn saw_during_training(&self, d: DatasetId) -> bool {
                d == DatasetId::Abt
            }
        }
        let mut m = HalfSeen;
        let report = evaluate_matcher(&mut m, &s, &EvalConfig::quick(1, 100)).unwrap();
        assert!(report.score_for(DatasetId::Abt).unwrap().seen_in_training);
        // fair mean over 10 datasets only
        let fair = report.fair_mean_column();
        assert!((fair.mean - 100.0).abs() < 1e-9);
    }

    type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;

    fn exact_factory() -> Factory {
        Box::new(|| Box::new(ExactMatch) as Box<dyn Matcher>)
    }

    #[test]
    fn evaluate_all_runs_matchers_in_parallel() {
        let s = suite();
        let factories: Vec<(String, Factory)> =
            vec![("a".into(), exact_factory()), ("b".into(), exact_factory())];
        let reports = evaluate_all(factories, &s, &EvalConfig::quick(1, 50)).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.matcher, "ExactMatch");
            assert_eq!(r.scores.len(), s.len());
        }
    }

    #[test]
    fn evaluate_all_matches_sequential_evaluation_exactly() {
        let s = suite();
        let cfg = EvalConfig::quick(2, 50);
        let factories: Vec<(String, Factory)> = vec![("a".into(), exact_factory())];
        let parallel = evaluate_all(factories, &s, &cfg).unwrap();
        let mut m = ExactMatch;
        let sequential = evaluate_matcher(&mut m, &s, &cfg).unwrap();
        assert_eq!(parallel.len(), 1);
        for (p, q) in parallel[0].scores.iter().zip(&sequential.scores) {
            assert_eq!(p.dataset, q.dataset);
            assert_eq!(p.per_seed_f1, q.per_seed_f1);
        }
    }

    #[test]
    fn evaluate_all_with_many_factories_stays_bounded() {
        // The seed spawned one thread per factory; the work-stealing pool
        // must stay within the shared budget no matter how many factories
        // are passed, and still return every report in order.
        let s = suite();
        let factories: Vec<(String, Factory)> = (0..40)
            .map(|i| (format!("m{i}"), exact_factory()))
            .collect();
        let reports = evaluate_all(factories, &s, &EvalConfig::quick(1, 20)).unwrap();
        assert_eq!(reports.len(), 40);
        assert!(reports
            .iter()
            .all(|r| (r.mean_column().mean - 100.0).abs() < 1e-9));
    }

    /// Matcher whose `predict` panics — simulates the latent bugs that
    /// used to kill a worker thread and wedge/abort `evaluate_all`.
    struct Bomb;
    impl Matcher for Bomb {
        fn name(&self) -> String {
            "Bomb".into()
        }
        fn fit(&mut self, _: &LodoSplit<'_>, _: u64) -> Result<()> {
            Ok(())
        }
        fn predict(&mut self, _: &EvalBatch) -> Result<Vec<bool>> {
            panic!("bomb matcher detonated");
        }
    }

    #[test]
    fn panicking_matcher_becomes_a_per_item_error_not_an_abort() {
        // Regression: before the catch_unwind in the worker loop this
        // test itself panicked (the worker's panic propagated through the
        // scope join and took the whole evaluation down).
        let s = suite();
        let factories: Vec<(String, Factory)> = vec![
            ("good".into(), exact_factory()),
            ("bomb".into(), Box::new(|| Box::new(Bomb) as Box<dyn Matcher>)),
        ];
        let err = evaluate_all(factories, &s, &EvalConfig::quick(1, 20)).unwrap_err();
        match err {
            EmError::WorkerPanic(msg) => assert!(msg.contains("detonated"), "{msg}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    /// Matcher that returns one prediction too few — the length-mismatch
    /// latent bug (previously an `assert_eq!` panic inside the metric).
    struct ShortPredictions;
    impl Matcher for ShortPredictions {
        fn name(&self) -> String {
            "ShortPredictions".into()
        }
        fn fit(&mut self, _: &LodoSplit<'_>, _: u64) -> Result<()> {
            Ok(())
        }
        fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
            Ok(vec![false; batch.len().saturating_sub(1)])
        }
    }

    #[test]
    fn wrong_length_predictions_surface_as_length_mismatch_error() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let mut m = ShortPredictions;
        let err = evaluate_on_target(&mut m, &split, &EvalConfig::quick(1, 30)).unwrap_err();
        assert!(
            matches!(err, EmError::LengthMismatch { .. }),
            "expected LengthMismatch, got {err:?}"
        );
    }

    #[test]
    fn evaluate_all_on_empty_suite_probes_matcher_metadata() {
        let factories: Vec<(String, Factory)> = vec![("a".into(), exact_factory())];
        let reports = evaluate_all(factories, &[], &EvalConfig::quick(1, 20)).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].matcher, "ExactMatch");
        assert!(reports[0].scores.is_empty());
    }
}
