//! # em-core — cross-dataset entity matching: task, methodology, metrics
//!
//! Core abstractions for the reproduction of *"A Deep Dive Into
//! Cross-Dataset Entity Matching with Large and Small Language Models"*
//! (EDBT 2025):
//!
//! * records, attribute values, labelled pairs ([`record`], [`pair`]);
//! * the 11 benchmark datasets of Table 1 and their statistics ([`dataset`]);
//! * restriction-compliant serialization with per-seed column shuffling
//!   ([`serialize`]);
//! * the "leave-one-dataset-out" evaluation strategy ([`lodo`]);
//! * the [`Matcher`] trait implemented by every approach in the study;
//! * metrics (F1, macro-F1, mean ± std) and the statistical tests used for
//!   Findings 5/6 ([`metrics`], [`stats`]);
//! * the evaluation driver implementing the full experimental protocol
//!   ([`eval`]), with streaming JSONL checkpoints for killed-and-resumed
//!   sweeps ([`checkpoint`]).

pub mod checkpoint;
pub mod dataset;
pub mod error;
pub mod eval;
pub mod lodo;
pub mod matcher;
pub mod metrics;
pub mod pair;
pub mod record;
pub mod serialize;
pub mod stats;
pub mod workqueue;

pub use checkpoint::{
    read_rows, read_sensitivity_rows, CheckpointLog, CheckpointRow, SensitivityRow,
};
pub use dataset::{spec_of, Benchmark, DatasetId, DatasetSpec, Domain, TABLE1};
pub use error::{EmError, Result};
pub use eval::{
    build_batch, evaluate_all, evaluate_all_resumable, evaluate_matcher, evaluate_on_target,
    test_sample, DatasetScore, EvalConfig, EvalReport, TEST_CAP,
};
pub use lodo::{all_splits, lodo_split, LodoSplit};
pub use matcher::{EvalBatch, Matcher};
pub use metrics::{f1_percent, macro_average, Confusion, MeanStd};
pub use pair::{LabeledPair, RecordPair};
pub use record::{AttrType, AttrValue, Record};
pub use serialize::{SerializedPair, Serializer, NAME_SEPARATOR, VALUE_SEPARATOR};
pub use workqueue::{run_chunks, WorkQueue};
