//! "Leave-one-dataset-out" (LODO) evaluation strategy (Section 2.2).
//!
//! To evaluate a matcher on an unseen target dataset, the matcher may access
//! the *other ten* datasets as transfer-learning data — for fine-tuning or
//! for demonstration selection — but never labelled pairs, column names, or
//! types from the target.

use crate::dataset::{Benchmark, DatasetId};
use crate::error::{EmError, Result};

/// One LODO split: a target dataset plus the transfer pool (all others).
#[derive(Debug)]
pub struct LodoSplit<'a> {
    /// The unseen target dataset (test only).
    pub target: &'a Benchmark,
    /// The ten transfer datasets available for fine-tuning / demonstrations.
    pub transfer: Vec<&'a Benchmark>,
}

impl<'a> LodoSplit<'a> {
    /// Identity of the target dataset.
    pub fn target_id(&self) -> DatasetId {
        self.target.id
    }

    /// Total number of labelled pairs available for transfer learning.
    pub fn transfer_pair_count(&self) -> usize {
        self.transfer.iter().map(|b| b.pairs.len()).sum()
    }
}

/// Builds the LODO split for one target from the full benchmark suite.
///
/// Fails if the target is not present or appears more than once.
pub fn lodo_split<'a>(benchmarks: &'a [Benchmark], target: DatasetId) -> Result<LodoSplit<'a>> {
    let mut tgt = None;
    let mut transfer = Vec::with_capacity(benchmarks.len().saturating_sub(1));
    for b in benchmarks {
        if b.id == target {
            if tgt.is_some() {
                return Err(EmError::InvalidInput(format!(
                    "dataset {target} appears more than once"
                )));
            }
            tgt = Some(b);
        } else {
            transfer.push(b);
        }
    }
    let target_bench = tgt.ok_or_else(|| EmError::UnknownDataset(target.code().to_owned()))?;
    Ok(LodoSplit {
        target: target_bench,
        transfer,
    })
}

/// Iterates over every LODO split of the suite, in Table 1 order of the
/// provided benchmarks.
pub fn all_splits(benchmarks: &[Benchmark]) -> Result<Vec<LodoSplit<'_>>> {
    benchmarks
        .iter()
        .map(|b| lodo_split(benchmarks, b.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::LabeledPair;
    use crate::record::{AttrType, AttrValue, Record};

    fn tiny_benchmark(id: DatasetId, n: usize) -> Benchmark {
        let pairs = (0..n)
            .map(|i| {
                LabeledPair::new(
                    Record::new(i as u64, vec![AttrValue::from("a")]),
                    Record::new(i as u64 + 1000, vec![AttrValue::from("a")]),
                    i % 2 == 0,
                )
            })
            .collect();
        Benchmark {
            id,
            attr_types: vec![AttrType::ShortText],
            pairs,
        }
    }

    fn suite() -> Vec<Benchmark> {
        DatasetId::ALL
            .iter()
            .enumerate()
            .map(|(i, &id)| tiny_benchmark(id, i + 1))
            .collect()
    }

    #[test]
    fn split_excludes_target_from_transfer() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        assert_eq!(split.target_id(), DatasetId::Abt);
        assert_eq!(split.transfer.len(), 10);
        assert!(split.transfer.iter().all(|b| b.id != DatasetId::Abt));
    }

    #[test]
    fn transfer_pool_is_everything_else() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Beer).unwrap();
        let mut ids: Vec<DatasetId> = split.transfer.iter().map(|b| b.id).collect();
        ids.sort();
        let mut expect: Vec<DatasetId> = DatasetId::ALL
            .iter()
            .copied()
            .filter(|&d| d != DatasetId::Beer)
            .collect();
        expect.sort();
        assert_eq!(ids, expect);
    }

    #[test]
    fn transfer_pair_count_sums_pools() {
        let s = suite();
        let total: usize = s.iter().map(|b| b.pairs.len()).sum();
        let split = lodo_split(&s, DatasetId::Wdc).unwrap();
        assert_eq!(
            split.transfer_pair_count(),
            total - split.target.pairs.len()
        );
    }

    #[test]
    fn missing_target_is_an_error() {
        let s: Vec<Benchmark> = suite()
            .into_iter()
            .filter(|b| b.id != DatasetId::Roim)
            .collect();
        let err = lodo_split(&s, DatasetId::Roim).unwrap_err();
        assert!(matches!(err, EmError::UnknownDataset(_)));
    }

    #[test]
    fn duplicate_target_is_an_error() {
        let mut s = suite();
        s.push(tiny_benchmark(DatasetId::Abt, 3));
        let err = lodo_split(&s, DatasetId::Abt).unwrap_err();
        assert!(matches!(err, EmError::InvalidInput(_)));
    }

    #[test]
    fn all_splits_yields_eleven() {
        let s = suite();
        let splits = all_splits(&s).unwrap();
        assert_eq!(splits.len(), 11);
        // Each dataset is the target exactly once.
        let mut targets: Vec<DatasetId> = splits.iter().map(|s| s.target_id()).collect();
        targets.sort();
        let mut expect = DatasetId::ALL.to_vec();
        expect.sort();
        assert_eq!(targets, expect);
    }
}
