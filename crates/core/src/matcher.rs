//! The `Matcher` abstraction shared by all approaches in the study.
//!
//! A cross-dataset matcher is fitted on the transfer pool of a LODO split
//! (never on target data) and then predicts match/non-match for a batch of
//! serialized pairs from the unseen target. Matchers that the paper
//! documents as (partially) violating the cross-dataset restrictions —
//! ZeroER needs column types and batch access — read the `raw` /
//! `attr_types` fields of the [`EvalBatch`], which exist for exactly that
//! purpose and are documented as a restriction escape hatch.

use crate::dataset::DatasetId;
use crate::error::Result;
use crate::lodo::LodoSplit;
use crate::pair::RecordPair;
use crate::record::AttrType;
use crate::serialize::SerializedPair;

/// A batch of target-dataset pairs to classify.
#[derive(Debug, Clone)]
pub struct EvalBatch {
    /// Restriction-compliant view: serialized attribute values only, under
    /// the repetition seed's column permutation.
    pub serialized: Vec<SerializedPair>,
    /// Raw records. Only for matchers documented to violate Restriction 2
    /// (ZeroER); all language-model matchers must ignore this field.
    pub raw: Vec<RecordPair>,
    /// Column types of the raw records (same caveat as `raw`).
    pub attr_types: Vec<AttrType>,
}

impl EvalBatch {
    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.serialized.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.serialized.is_empty()
    }
}

/// Common interface of every matcher in the study.
pub trait Matcher: Send {
    /// Human-readable name as printed in the paper's tables
    /// (e.g. `"AnyMatch [LLaMA3.2]"`).
    fn name(&self) -> String;

    /// Parameter count in millions, if the approach has parameters
    /// (Tables 3/5; `None` for parameter-free methods).
    fn params_millions(&self) -> Option<f64> {
        None
    }

    /// Fits / prepares the matcher for one LODO target using only the
    /// transfer pool. `seed` controls all stochastic choices (serialization
    /// column order, sampling, initialization) for the repetition protocol.
    ///
    /// Parameter-free matchers may implement this as a no-op.
    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()>;

    /// Predicts match / non-match for every pair in the batch.
    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>>;

    /// Predicts a match score in `[0, 1]` for every pair, where `>= 0.5`
    /// means match. The score's distance from the decision boundary is a
    /// confidence signal — `|2s − 1|` — which the serving cascade uses to
    /// decide whether a pair escalates to a more expensive matcher.
    ///
    /// The default degrades to hard labels (0.0 / 1.0, i.e. maximum
    /// confidence, never escalated); matchers with a real score surface
    /// should override.
    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        Ok(self
            .predict(batch)?
            .into_iter()
            .map(|m| if m { 1.0 } else { 0.0 })
            .collect())
    }

    /// `true` if the matcher's underlying model saw this dataset during its
    /// own (pre-)training, violating the cross-dataset setup. Such scores
    /// are put in brackets in Table 3 (the Jellyfish caveat).
    fn saw_during_training(&self, _dataset: DatasetId) -> bool {
        false
    }

    /// `true` if the most recent [`Matcher::predict`] call served degraded
    /// predictions — e.g. a hosted-LLM matcher whose circuit breaker was
    /// open fell back to its registered string-similarity tier. Reset by
    /// [`Matcher::fit`]. Matchers without a degraded mode keep the default.
    fn was_degraded(&self) -> bool {
        false
    }

    /// Exact tokens consumed per pair by the most recent
    /// [`Matcher::predict_scores`] / [`Matcher::predict`] call, for
    /// matchers that know their real token consumption (a local encoder
    /// knows its encoded lengths; a byte-counting heuristic does not).
    /// `None` means the caller should fall back to its approximation —
    /// the serialized-bytes/4 rule the price book uses. When `Some`, the
    /// vector is aligned with the batch that was scored.
    fn exact_billed_tokens(&self) -> Option<Vec<u64>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Benchmark, DatasetId};
    use crate::lodo::lodo_split;
    use crate::pair::LabeledPair;
    use crate::record::{AttrValue, Record};

    /// A trivial always-"no" matcher used to exercise the trait surface.
    struct AlwaysNo;

    impl Matcher for AlwaysNo {
        fn name(&self) -> String {
            "AlwaysNo".into()
        }
        fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
            Ok(())
        }
        fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
            Ok(vec![false; batch.len()])
        }
    }

    fn bench(id: DatasetId) -> Benchmark {
        Benchmark {
            id,
            attr_types: vec![AttrType::ShortText],
            pairs: vec![LabeledPair::new(
                Record::new(0, vec![AttrValue::from("x")]),
                Record::new(1, vec![AttrValue::from("x")]),
                true,
            )],
        }
    }

    #[test]
    fn trait_default_methods() {
        let m = AlwaysNo;
        assert_eq!(m.params_millions(), None);
        assert!(!m.saw_during_training(DatasetId::Abt));
    }

    #[test]
    fn default_scores_are_hard_labels() {
        let mut m = AlwaysNo;
        let batch = EvalBatch {
            serialized: vec![
                SerializedPair {
                    left: "a".into(),
                    right: "a".into(),
                },
                SerializedPair {
                    left: "a".into(),
                    right: "b".into(),
                },
            ],
            raw: vec![],
            attr_types: vec![],
        };
        // AlwaysNo has no score surface: the default maps its hard labels
        // to maximally-confident 0.0 / 1.0 scores consistent with predict.
        assert_eq!(m.predict_scores(&batch).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn batch_len_tracks_serialized() {
        let batch = EvalBatch {
            serialized: vec![SerializedPair {
                left: "a".into(),
                right: "b".into(),
            }],
            raw: vec![],
            attr_types: vec![],
        };
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
    }

    #[test]
    fn fit_predict_cycle() {
        let suite: Vec<Benchmark> = DatasetId::ALL.iter().map(|&d| bench(d)).collect();
        let split = lodo_split(&suite, DatasetId::Abt).unwrap();
        let mut m = AlwaysNo;
        m.fit(&split, 0).unwrap();
        let batch = EvalBatch {
            serialized: vec![
                SerializedPair {
                    left: "a".into(),
                    right: "a".into(),
                },
                SerializedPair {
                    left: "a".into(),
                    right: "b".into(),
                },
            ],
            raw: vec![],
            attr_types: vec![],
        };
        assert_eq!(m.predict(&batch).unwrap(), vec![false, false]);
    }
}
