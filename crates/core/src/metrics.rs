//! Evaluation metrics: precision, recall, F1, macro averages, mean ± std.
//!
//! Implements the metric definitions of Section 2.2 of the paper. The F1
//! score is reported per dataset; the "Mean" column of Tables 3/4 is the
//! macro-average over datasets ("treating all datasets as equally
//! important"). Repetitions over five seeds are summarized as mean and
//! standard deviation.

use crate::error::{EmError, Result};

/// Confusion-matrix counts for binary matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds a confusion matrix from aligned prediction/label slices.
    ///
    /// # Errors
    /// Returns [`EmError::LengthMismatch`] when the slices differ in
    /// length. This used to be an `assert_eq!`; inside the parallel
    /// evaluation workers that panic killed a worker thread and could
    /// abort the whole `evaluate_all` run, so a misbehaving matcher (one
    /// that returns the wrong number of predictions) now surfaces as a
    /// typed per-item error instead.
    pub fn from_predictions(predictions: &[bool], labels: &[bool]) -> Result<Self> {
        if predictions.len() != labels.len() {
            return Err(EmError::LengthMismatch {
                predictions: predictions.len(),
                labels: labels.len(),
            });
        }
        let mut c = Confusion::default();
        for (&p, &y) in predictions.iter().zip(labels) {
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        Ok(c)
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision = TP / (TP + FP); defined as 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); defined as 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = 2 · P · R / (P + R), in `[0, 1]`; 0 when both P and R are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy, for completeness (the paper reports F1 because the label
    /// distribution is imbalanced).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Convenience: F1 score (in percent, like the paper's tables) from aligned
/// prediction/label slices.
///
/// # Errors
/// Returns [`EmError::LengthMismatch`] when the slices differ in length.
pub fn f1_percent(predictions: &[bool], labels: &[bool]) -> Result<f64> {
    Ok(Confusion::from_predictions(predictions, labels)?.f1() * 100.0)
}

/// Mean and (population) standard deviation of repeated scores, as reported
/// in Tables 3 and 4 (`mean ± std` over five random seeds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population form, matching numpy's default used by
    /// the original study's analysis scripts).
    pub std: f64,
}

impl MeanStd {
    /// Computes mean ± std of a slice of scores.
    ///
    /// Returns `MeanStd { mean: 0, std: 0 }` for an empty slice.
    pub fn of(scores: &[f64]) -> Self {
        if scores.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = scores.len() as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.std)
    }
}

/// Macro-average over per-dataset scores (the "Mean" column of Table 3):
/// every dataset counts equally regardless of its size.
pub fn macro_average(per_dataset: &[f64]) -> f64 {
    if per_dataset.is_empty() {
        return 0.0;
    }
    per_dataset.iter().sum::<f64>() / per_dataset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_all_four_cells() {
        let preds = [true, true, false, false, true];
        let labels = [true, false, true, false, true];
        let c = Confusion::from_predictions(&preds, &labels).unwrap();
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn hand_computed_f1() {
        // TP=8, FP=2, FN=2 → P = 0.8, R = 0.8, F1 = 0.8.
        let c = Confusion {
            tp: 8,
            fp: 2,
            tn: 10,
            fn_: 2,
        };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_precision_recall() {
        // TP=6, FP=2 → P=0.75; TP=6, FN=6 → R=0.5; F1 = 2*.375/1.25 = 0.6.
        let c = Confusion {
            tp: 6,
            fp: 2,
            tn: 0,
            fn_: 6,
        };
        assert!((c.f1() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = Confusion {
            tp: 0,
            fp: 0,
            tn: 5,
            fn_: 0,
        };
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(Confusion::default().accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let labels = [true, false, true, false];
        let c = Confusion::from_predictions(&labels, &labels).unwrap();
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn f1_percent_scales_to_table_units() {
        let preds = [true, false];
        let labels = [true, false];
        assert_eq!(f1_percent(&preds, &labels).unwrap(), 100.0);
    }

    #[test]
    fn mismatched_lengths_are_a_typed_error_not_a_panic() {
        // Regression: this was an `assert_eq!` that killed evaluation
        // worker threads; it must now be an `EmError::LengthMismatch`.
        let err = Confusion::from_predictions(&[true], &[true, false]).unwrap_err();
        assert_eq!(
            err,
            EmError::LengthMismatch {
                predictions: 1,
                labels: 2
            }
        );
        assert!(f1_percent(&[true], &[true, false]).is_err());
    }

    #[test]
    fn mean_std_of_constant_scores() {
        let m = MeanStd::of(&[70.0, 70.0, 70.0]);
        assert_eq!(m.mean, 70.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn mean_std_hand_computed() {
        // scores 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population std 2.
        let m = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!((m.std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_empty_is_zero() {
        let m = MeanStd::of(&[]);
        assert_eq!((m.mean, m.std), (0.0, 0.0));
    }

    #[test]
    fn mean_std_display_format() {
        let m = MeanStd {
            mean: 87.54,
            std: 1.04,
        };
        assert_eq!(m.to_string(), "87.5±1.0");
    }

    #[test]
    fn macro_average_weights_datasets_equally() {
        assert!((macro_average(&[100.0, 0.0]) - 50.0).abs() < 1e-12);
        assert_eq!(macro_average(&[]), 0.0);
    }
}
