//! Record pairs and labels.

use crate::record::Record;

/// An unlabelled candidate pair `(r_l, r_r)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordPair {
    /// Record from the left relation.
    pub left: Record,
    /// Record from the right relation.
    pub right: Record,
}

impl RecordPair {
    /// Creates a pair; both records must have the same arity.
    pub fn new(left: Record, right: Record) -> Self {
        debug_assert_eq!(
            left.arity(),
            right.arity(),
            "pair records must have aligned attributes"
        );
        RecordPair { left, right }
    }

    /// Number of aligned attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.left.arity()
    }
}

/// A labelled pair: `true` means both records refer to the same real-world
/// entity.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPair {
    /// The record pair.
    pub pair: RecordPair,
    /// Ground-truth match label.
    pub label: bool,
}

impl LabeledPair {
    /// Creates a labelled pair.
    pub fn new(left: Record, right: Record, label: bool) -> Self {
        LabeledPair {
            pair: RecordPair::new(left, right),
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AttrValue;

    fn rec(id: u64, vals: &[&str]) -> Record {
        Record::new(id, vals.iter().map(|v| AttrValue::from(*v)).collect())
    }

    #[test]
    fn pair_reports_arity() {
        let p = RecordPair::new(rec(1, &["a", "b"]), rec(2, &["c", "d"]));
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn labeled_pair_stores_label() {
        let lp = LabeledPair::new(rec(1, &["a"]), rec(2, &["a"]), true);
        assert!(lp.label);
        let ln = LabeledPair::new(rec(1, &["a"]), rec(2, &["b"]), false);
        assert!(!ln.label);
    }
}
