//! Records and attribute values.
//!
//! A [`Record`] is one row of one of the two input relations of an entity
//! matching task. Under the cross-dataset restrictions of the paper
//! (Section 2.1), a matcher may only observe the attribute *values* of a
//! record, in string form — never attribute names or types. The typed
//! [`AttrValue`] representation is retained internally so that the data
//! generator and the (explicitly restriction-violating) ZeroER baseline can
//! reason about types, but the serialization layer erases it.

use std::fmt;

/// One attribute value of a record.
///
/// Real benchmark data is dirty: values may be missing, numeric values are
/// frequently stored as strings, and free text dominates several datasets.
/// We keep a small typed enum so the generator can produce realistic values
/// and ZeroER can pick type-appropriate similarity functions.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A missing value (NULL / empty cell).
    Missing,
    /// Free-form text (titles, descriptions, names, ...).
    Text(String),
    /// A numeric value (price, year, track length, ...).
    Number(f64),
}

impl AttrValue {
    /// Returns `true` if the value is missing.
    #[inline]
    pub fn is_missing(&self) -> bool {
        matches!(self, AttrValue::Missing)
    }

    /// String rendering used by the cross-dataset serialization layer.
    ///
    /// Missing values render as the empty string; numbers render without a
    /// trailing `.0` when integral, matching how CSV exports of the original
    /// benchmarks look.
    pub fn render(&self) -> String {
        match self {
            AttrValue::Missing => String::new(),
            AttrValue::Text(s) => s.clone(),
            AttrValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
        }
    }

    /// Renders into an existing buffer, avoiding an allocation for the
    /// common case inside the hot serialization loop.
    pub fn render_into(&self, out: &mut String) {
        match self {
            AttrValue::Missing => {}
            AttrValue::Text(s) => out.push_str(s),
            AttrValue::Number(n) => {
                use fmt::Write;
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
        }
    }

    /// Returns the numeric payload if this is a number.
    #[inline]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the text payload if this is text.
    #[inline]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Number(n)
    }
}

/// The declared type of an attribute column.
///
/// Only visible to components that are *documented* to violate cross-dataset
/// Restriction 2 (ZeroER), mirroring Section 4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Short textual values (names, categories, brands).
    ShortText,
    /// Long free-form text (descriptions).
    LongText,
    /// Numeric values.
    Numeric,
}

/// One record (row) of an input relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable identifier within its relation; unique per relation.
    pub id: u64,
    /// Attribute values, aligned with the owning dataset's schema.
    pub values: Vec<AttrValue>,
}

impl Record {
    /// Creates a record from an id and values.
    pub fn new(id: u64, values: Vec<AttrValue>) -> Self {
        Record { id, values }
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Fraction of attributes that are missing, in `[0, 1]`.
    pub fn missing_rate(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let missing = self.values.iter().filter(|v| v.is_missing()).count();
        missing as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_missing_is_empty() {
        assert_eq!(AttrValue::Missing.render(), "");
        assert!(AttrValue::Missing.is_missing());
    }

    #[test]
    fn render_integral_number_has_no_fraction() {
        assert_eq!(AttrValue::Number(42.0).render(), "42");
        assert_eq!(AttrValue::Number(-3.0).render(), "-3");
    }

    #[test]
    fn render_fractional_number_keeps_fraction() {
        assert_eq!(AttrValue::Number(19.99).render(), "19.99");
    }

    #[test]
    fn render_into_matches_render() {
        let vals = [
            AttrValue::Missing,
            AttrValue::Text("abc def".into()),
            AttrValue::Number(7.5),
            AttrValue::Number(1000.0),
        ];
        for v in &vals {
            let mut buf = String::new();
            v.render_into(&mut buf);
            assert_eq!(buf, v.render());
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from("x"), AttrValue::Text("x".into()));
        assert_eq!(AttrValue::from(2.0).as_number(), Some(2.0));
        assert_eq!(AttrValue::from("y").as_text(), Some("y"));
        assert_eq!(AttrValue::Missing.as_number(), None);
        assert_eq!(AttrValue::Number(1.0).as_text(), None);
    }

    #[test]
    fn missing_rate_counts_fraction() {
        let r = Record::new(
            1,
            vec![
                AttrValue::Missing,
                AttrValue::from("a"),
                AttrValue::Missing,
                AttrValue::from(1.0),
            ],
        );
        assert_eq!(r.arity(), 4);
        assert!((r.missing_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_rate_of_empty_record_is_zero() {
        let r = Record::new(1, vec![]);
        assert_eq!(r.missing_rate(), 0.0);
    }

    #[test]
    fn display_matches_render() {
        let v = AttrValue::Text("hello".into());
        assert_eq!(format!("{v}"), "hello");
    }
}
