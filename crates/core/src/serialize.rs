//! Cross-dataset serialization of records and pairs.
//!
//! Per Restriction 2 of the paper (Section 2.1), a cross-dataset matcher
//! "can only enumerate the attribute values ... of a record ... in a string
//! representation" — no column names, no types. The paper additionally
//! shuffles the column order per random seed during serialization
//! ("Repetitions", Section 2.2) to quantify the sensitivity of language
//! models to the input sequence. This module implements both, plus the
//! *name/value* ablation variant (`name: value` pairs) used by the
//! perturbation-robustness suite to measure how much attribute-name
//! inclusion moves each matcher — a deliberate, flagged departure from
//! Restriction 2, never used in the LODO protocol itself.

use crate::pair::RecordPair;
use crate::record::Record;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Separator between attribute values, matching the StringSim baseline's
/// "concatenating the values with a comma separator".
pub const VALUE_SEPARATOR: &str = ", ";

/// Separator between an attribute name and its value in the `name: value`
/// serialization style ([`Serializer::with_names`]).
pub const NAME_SEPARATOR: &str = ": ";

/// A serialized pair: both records rendered to plain strings under the same
/// column permutation. This is the *only* view of the data that
/// cross-dataset matchers receive.
///
/// Both sides are shared `Arc<str>` slices: a serving pipeline renders
/// each record once into its store and every candidate pair, batch, and
/// retry *views* that rendering — cloning a pair (or an [`EvalBatch`]
/// built from pairs) is two reference-count bumps, never a string copy.
/// `Arc<str>` derefs to `&str`, so read sites are unchanged; construction
/// sites use `.into()` from `&str` / `String`.
///
/// [`EvalBatch`]: crate::matcher::EvalBatch
#[derive(Debug, Clone, PartialEq)]
pub struct SerializedPair {
    /// Left record, values joined by [`VALUE_SEPARATOR`].
    pub left: Arc<str>,
    /// Right record, values joined by [`VALUE_SEPARATOR`].
    pub right: Arc<str>,
}

impl SerializedPair {
    /// Builds a pair from anything string-like (`&str`, `String`,
    /// `Arc<str>`).
    pub fn new(left: impl Into<Arc<str>>, right: impl Into<Arc<str>>) -> Self {
        SerializedPair {
            left: left.into(),
            right: right.into(),
        }
    }

    /// Combined length in bytes (useful for token-cost accounting).
    pub fn len_bytes(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// How attribute values are rendered: bare values (the restriction-
/// compliant default) or `name: value` pairs (the serialization-ablation
/// variant — attribute names come from the schema handed to
/// [`Serializer::with_names`]).
#[derive(Debug, Clone, PartialEq)]
enum Style {
    /// Values only, comma-joined — Restriction 2 of the paper.
    Values,
    /// `name: value` pairs, comma-joined. The names are shared (`Arc`)
    /// because one schema serves every record of a relation.
    NameValue(Arc<[String]>),
}

/// Serializes records under a fixed column permutation.
///
/// A `Serializer` is created per (dataset, seed) so that every pair within
/// one evaluation run sees the same permutation, while different seeds see
/// different permutations — exactly the repetition protocol of Section 2.2.
/// [`Serializer::with_names`] switches the rendering to `name: value`
/// pairs for the serialization-ablation suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Serializer {
    order: Vec<usize>,
    style: Style,
}

impl Serializer {
    /// Identity serializer: columns in schema order.
    pub fn identity(arity: usize) -> Self {
        Serializer {
            order: (0..arity).collect(),
            style: Style::Values,
        }
    }

    /// Seed-shuffled serializer. Seed 0 is defined to be the identity
    /// permutation so that the first repetition mirrors the canonical
    /// serialization; later seeds shuffle.
    pub fn shuffled(arity: usize, seed: u64) -> Self {
        let mut order: Vec<usize> = (0..arity).collect();
        if seed != 0 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            order.shuffle(&mut rng);
        }
        Serializer {
            order,
            style: Style::Values,
        }
    }

    /// Switches to `name: value` rendering under the given schema names.
    /// Columns beyond `names.len()` render with an empty name (mirrors how
    /// values beyond the schema render empty in values-only mode).
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        self.style = Style::NameValue(names.into());
        self
    }

    /// Switches back to values-only rendering.
    pub fn values_only(mut self) -> Self {
        self.style = Style::Values;
        self
    }

    /// The schema names in effect, if rendering `name: value` pairs.
    pub fn names(&self) -> Option<&[String]> {
        match &self.style {
            Style::Values => None,
            Style::NameValue(names) => Some(names),
        }
    }

    /// The column permutation in effect.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// A stable fingerprint of the full serialization configuration
    /// (permutation + style + schema names). Two serializers with equal
    /// fingerprints render every record identically, so the fingerprint is
    /// the key under which serialization-dependent caches (e.g. the serve
    /// pipeline's [`ScoreCache`]) stay valid.
    ///
    /// [`ScoreCache`]: https://docs.rs/em-serve
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte rendering of the configuration.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        eat(&(self.order.len() as u64).to_le_bytes());
        for &col in &self.order {
            eat(&(col as u64).to_le_bytes());
        }
        match &self.style {
            Style::Values => eat(&[0u8]),
            Style::NameValue(names) => {
                eat(&[1u8]);
                eat(&(names.len() as u64).to_le_bytes());
                for name in names.iter() {
                    eat(&(name.len() as u64).to_le_bytes());
                    eat(name.as_bytes());
                }
            }
        }
        h
    }

    /// Serializes a single record into a comma-joined value string.
    pub fn record(&self, record: &Record) -> String {
        let mut out = String::with_capacity(estimate_len(record));
        self.record_into(record, &mut out);
        out
    }

    /// Serializes into an existing buffer (cleared first) — the workhorse
    /// used in batch serialization to avoid per-record allocations.
    pub fn record_into(&self, record: &Record, out: &mut String) {
        out.clear();
        let mut first = true;
        for &col in &self.order {
            if !first {
                out.push_str(VALUE_SEPARATOR);
            }
            first = false;
            if let Style::NameValue(names) = &self.style {
                if let Some(name) = names.get(col) {
                    out.push_str(name);
                }
                out.push_str(NAME_SEPARATOR);
            }
            if let Some(v) = record.values.get(col) {
                v.render_into(out);
            }
        }
    }

    /// Serializes a pair of records under the shared permutation.
    pub fn pair(&self, pair: &RecordPair) -> SerializedPair {
        SerializedPair {
            left: self.record(&pair.left).into(),
            right: self.record(&pair.right).into(),
        }
    }

    /// Serializes a batch of pairs.
    pub fn pairs(&self, pairs: &[RecordPair]) -> Vec<SerializedPair> {
        pairs.iter().map(|p| self.pair(p)).collect()
    }
}

fn estimate_len(record: &Record) -> usize {
    let payload: usize = record
        .values
        .iter()
        .map(|v| match v {
            crate::record::AttrValue::Text(s) => s.len(),
            crate::record::AttrValue::Number(_) => 8,
            crate::record::AttrValue::Missing => 0,
        })
        .sum();
    payload + record.values.len().saturating_sub(1) * VALUE_SEPARATOR.len()
}

#[cfg(test)]
mod name_value_tests {
    use super::*;
    use crate::record::AttrValue;

    fn rec(vals: &[&str]) -> Record {
        Record::new(0, vals.iter().map(|v| AttrValue::from(*v)).collect())
    }

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|n| (*n).to_string()).collect()
    }

    #[test]
    fn name_value_renders_schema_names() {
        let s = Serializer::identity(3).with_names(names(&["title", "brand", "price"]));
        assert_eq!(
            s.record(&rec(&["tv", "sony", "99"])),
            "title: tv, brand: sony, price: 99"
        );
    }

    #[test]
    fn name_value_follows_the_permutation() {
        let s = Serializer::shuffled(3, 5).with_names(names(&["a", "b", "c"]));
        let out = s.record(&rec(&["1", "2", "3"]));
        let expect: Vec<String> = s
            .order()
            .iter()
            .map(|&i| format!("{}: {}", ["a", "b", "c"][i], i + 1))
            .collect();
        assert_eq!(out, expect.join(", "));
    }

    #[test]
    fn missing_value_keeps_its_name() {
        let s = Serializer::identity(2).with_names(names(&["x", "y"]));
        let r = Record::new(0, vec![AttrValue::from("a"), AttrValue::Missing]);
        assert_eq!(s.record(&r), "x: a, y: ");
    }

    #[test]
    fn values_only_round_trips_back() {
        let s = Serializer::identity(2)
            .with_names(names(&["x", "y"]))
            .values_only();
        assert_eq!(s.record(&rec(&["a", "b"])), "a, b");
        assert_eq!(s.names(), None);
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = Serializer::identity(3);
        assert_eq!(base.fingerprint(), Serializer::identity(3).fingerprint());
        let shuffled = Serializer::shuffled(3, 9);
        if shuffled.order() != base.order() {
            assert_ne!(base.fingerprint(), shuffled.fingerprint());
        }
        let named = Serializer::identity(3).with_names(names(&["a", "b", "c"]));
        assert_ne!(base.fingerprint(), named.fingerprint());
        let renamed = Serializer::identity(3).with_names(names(&["a", "b", "d"]));
        assert_ne!(named.fingerprint(), renamed.fingerprint());
        assert_ne!(
            Serializer::identity(2).fingerprint(),
            Serializer::identity(3).fingerprint()
        );
    }

    #[test]
    fn fingerprint_ignores_nothing_it_should_track() {
        // Same config built twice -> same fingerprint (stability pin).
        let a = Serializer::shuffled(5, 3).with_names(names(&["n1", "n2", "n3", "n4", "n5"]));
        let b = Serializer::shuffled(5, 3).with_names(names(&["n1", "n2", "n3", "n4", "n5"]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AttrValue;

    fn rec(vals: &[&str]) -> Record {
        Record::new(0, vals.iter().map(|v| AttrValue::from(*v)).collect())
    }

    #[test]
    fn identity_preserves_schema_order() {
        let s = Serializer::identity(3);
        assert_eq!(s.record(&rec(&["a", "b", "c"])), "a, b, c");
    }

    #[test]
    fn seed_zero_is_identity() {
        let s = Serializer::shuffled(4, 0);
        assert_eq!(s.order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn same_seed_same_permutation() {
        let a = Serializer::shuffled(8, 3);
        let b = Serializer::shuffled(8, 3);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn different_seeds_usually_differ() {
        // With 8 columns the chance of two random permutations colliding is
        // 1/40320; check a few seeds produce at least one difference.
        let base = Serializer::shuffled(8, 1);
        let any_diff = (2..6).any(|s| Serializer::shuffled(8, s).order() != base.order());
        assert!(any_diff);
    }

    #[test]
    fn permutation_is_a_bijection() {
        for seed in 0..10 {
            let s = Serializer::shuffled(6, seed);
            let mut sorted = s.order().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn missing_values_render_empty_but_keep_separator() {
        let s = Serializer::identity(3);
        let r = Record::new(
            0,
            vec![
                AttrValue::from("x"),
                AttrValue::Missing,
                AttrValue::from("z"),
            ],
        );
        assert_eq!(s.record(&r), "x, , z");
    }

    #[test]
    fn serialization_contains_no_column_names() {
        // Restriction 2 sanity check: output is exactly the values.
        let s = Serializer::identity(2);
        let out = s.record(&rec(&["title-value", "brand-value"]));
        assert_eq!(out, "title-value, brand-value");
    }

    #[test]
    fn pair_uses_same_permutation_for_both_sides() {
        let s = Serializer::shuffled(3, 7);
        let p = RecordPair::new(rec(&["a", "b", "c"]), rec(&["x", "y", "z"]));
        let sp = s.pair(&p);
        let order = s.order();
        let expect_left: Vec<&str> = order.iter().map(|&i| ["a", "b", "c"][i]).collect();
        assert_eq!(&*sp.left, expect_left.join(", "));
        let expect_right: Vec<&str> = order.iter().map(|&i| ["x", "y", "z"][i]).collect();
        assert_eq!(&*sp.right, expect_right.join(", "));
    }

    #[test]
    fn record_into_reuses_buffer() {
        let s = Serializer::identity(2);
        let mut buf = String::from("stale content");
        s.record_into(&rec(&["p", "q"]), &mut buf);
        assert_eq!(buf, "p, q");
    }

    #[test]
    fn len_bytes_sums_both_sides() {
        let sp = SerializedPair {
            left: "abc".into(),
            right: "de".into(),
        };
        assert_eq!(sp.len_bytes(), 5);
    }
}
