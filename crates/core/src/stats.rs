//! Statistical tests used in the paper's analysis.
//!
//! * Finding 5 uses a two-sample t-test on normalized F1 scores to test
//!   whether overlapping-domain datasets score higher under LODO.
//! * Finding 6 uses the Spearman rank correlation between predictive quality
//!   and the label imbalance rate.
//!
//! Both are implemented from scratch: Welch's t-test with a
//! Student-t survival function evaluated through the regularized incomplete
//! beta function, and Spearman's rho with average-rank tie handling.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n-1) sample variance; 0 for fewer than two observations.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
}

impl TTest {
    /// `true` if the null hypothesis (equal means) is rejected at `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Welch's unequal-variance two-sample t-test.
///
/// Returns `None` if either sample has fewer than two observations or both
/// variances are zero (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2.powi(2) / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(TTest {
        t,
        df,
        p_two_sided: p.clamp(0.0, 1.0),
    })
}

/// Survival function `P(T > t)` of the Student t distribution with `df`
/// degrees of freedom, via the regularized incomplete beta function.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() || df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    0.5 * regularized_incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` using the continued
/// fraction expansion (Numerical Recipes `betacf`).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2);
    // otherwise evaluate the mirrored fraction directly (no recursion, so
    // x = 0.5 with a = b cannot ping-pong between the two branches).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Average ranks of a sample (1-based), with ties receiving the mean of the
/// ranks they span — the convention Spearman's rho requires.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("no NaNs in ranked data"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) are tied; average their 1-based ranks.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation coefficient; `None` if either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "correlation inputs must align");
    if xs.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson on average ranks). `None` if either
/// side is constant.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = regularized_incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn student_t_sf_reference_values() {
        // With df → large, t distribution approaches N(0,1): P(T>1.96)≈0.025.
        let p = student_t_sf(1.96, 1e6);
        assert!((p - 0.025).abs() < 1e-3, "{p}");
        // df=1 (Cauchy): P(T>1) = 0.25.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-6, "{p}");
        // Symmetry point: P(T>0) = 0.5.
        assert!((student_t_sf(0.0, 7.0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let a = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1];
        let b = [20.0, 20.5, 19.5, 20.2, 19.8, 20.1];
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_two_sided < 0.001);
        assert!(t.rejects_at(0.05));
        assert!(t.t < 0.0); // a's mean is below b's
    }

    #[test]
    fn welch_accepts_identical_distributions() {
        let a = [5.0, 6.1, 4.9, 5.5, 5.2, 5.7, 4.8, 5.9];
        let b = [5.1, 5.8, 5.0, 5.6, 5.3, 5.4, 4.9, 6.0];
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_two_sided > 0.3, "p = {}", t.p_two_sided);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn welch_undefined_cases() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn ranks_handle_ties_with_averages() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_sorted_sequence_are_identity() {
        let ranks = average_ranks(&[1.0, 2.0, 3.0]);
        assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spearman_perfect_monotone() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 100.0, 1000.0, 10000.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((spearman(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A non-linear but monotone transform leaves rho at 1.
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_input_is_none() {
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn pearson_hand_computed() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_short_samples_is_zero() {
        assert_eq!(sample_variance(&[]), 0.0);
        assert_eq!(sample_variance(&[3.0]), 0.0);
    }
}
