//! A bounded work-stealing queue for coarse-grained evaluation work.
//!
//! [`eval::evaluate_all`](crate::eval::evaluate_all) decomposes the study
//! into (matcher × LODO-target) work items whose costs differ by orders of
//! magnitude — a parameter-free heuristic finishes a target in microseconds
//! while a fine-tuned language model takes seconds. Static partitioning
//! (one thread per matcher, as the seed did) therefore leaves most workers
//! idle behind the slowest matcher. Here every worker owns a deque seeded
//! with a contiguous share of the items; it drains its own deque from the
//! front and, when empty, steals from the *back* of the busiest victim, so
//! stolen work is the work its owner would touch last.
//!
//! The queue is **bounded**: it never spawns threads itself. Callers decide
//! the worker count from the shared [`em_nn::threadpool`] budget, so nested
//! parallel regions (a matcher's own GEMM threads, say) degrade to
//! sequential instead of oversubscribing the machine.
//!
//! Items are distributed at construction time and never re-enqueued, which
//! keeps termination trivial: once every deque reports empty, no item can
//! ever appear again, so a worker observing all-empty can exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed set of work items partitioned over per-worker deques.
pub struct WorkQueue<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
}

impl<T> WorkQueue<T> {
    /// Distributes `items` over `nworkers` deques in contiguous blocks
    /// (worker 0 gets the first block, and so on), preserving order within
    /// each block so workers sweep their share front-to-back.
    pub fn new(nworkers: usize, items: Vec<T>) -> Self {
        assert!(nworkers > 0, "a work queue needs at least one worker");
        let total = items.len();
        let mut deques: Vec<Mutex<VecDeque<T>>> = (0..nworkers)
            .map(|w| {
                // Block sizes differ by at most one: ceil for the first
                // `total % nworkers` workers, floor for the rest.
                let cap = total / nworkers + usize::from(w < total % nworkers);
                Mutex::new(VecDeque::with_capacity(cap))
            })
            .collect();
        for (i, item) in items.into_iter().enumerate() {
            // i * nworkers / total maps index i into its block owner.
            let w = if total == 0 { 0 } else { i * nworkers / total };
            deques[w].get_mut().unwrap().push_back(item);
        }
        WorkQueue {
            deques,
            steals: AtomicU64::new(0),
        }
    }

    /// Number of worker slots the queue was built for.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Number of successful steals so far (items taken from another
    /// worker's deque). Feeds the `workqueue.steals` metric.
    pub fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Fetches the next item for `worker`: its own deque first (front),
    /// then a steal from the back of the fullest other deque. Returns
    /// `None` only when every deque is empty, which is permanent.
    pub fn next(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.deques[worker].lock().unwrap().pop_front() {
            return Some(item);
        }
        loop {
            // Pick the victim with the most remaining work so steals are
            // rare and balanced; re-check under the victim's lock since
            // the census is only advisory.
            let victim = (0..self.deques.len())
                .filter(|&w| w != worker)
                .max_by_key(|&w| self.deques[w].lock().unwrap().len())?;
            let mut dq = self.deques[victim].lock().unwrap();
            if let Some(item) = dq.pop_back() {
                drop(dq);
                self.steals.fetch_add(1, Ordering::Relaxed);
                if em_obs::capture_enabled() {
                    em_obs::metrics::counter("workqueue.steals").inc();
                }
                return Some(item);
            }
            drop(dq);
            // The victim drained between census and lock; if everything is
            // empty we are done, otherwise try again.
            if self
                .deques
                .iter()
                .all(|d| d.lock().unwrap().is_empty())
            {
                return None;
            }
        }
    }
}

/// Runs `work` over every item, fanning chunks out over workers reserved
/// from the shared [`em_nn::threadpool`] budget, and collects the results
/// in item order.
///
/// The panic contract is uniform at every worker count: a panic inside
/// `work` is caught *per item*, the remaining items still run, and after
/// everything has been attempted the first failure (in item order) is
/// reported as [`EmError::WorkerPanic`] carrying the payload message.
/// Workers pull the next unclaimed index from a shared atomic, so items
/// of uneven cost balance dynamically.
///
/// Items must be independent; under that contract results are identical
/// at every worker count.
pub fn run_chunks<T, R, F>(items: &[T], work: F) -> crate::error::Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use crate::error::{panic_message, EmError};

    if items.is_empty() {
        return Ok(Vec::new());
    }
    let attempt = |item: &T| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    };
    let reservation = em_nn::threadpool::reserve_workers(items.len() - 1);
    let nworkers = reservation.total().min(items.len()).max(1);
    let outcomes: Vec<Result<R, String>> = if nworkers <= 1 {
        items.iter().map(attempt).collect()
    } else {
        type Slot<R> = Mutex<Option<Result<R, String>>>;
        let slots: Vec<Slot<R>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let run = || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                *slots[i].lock().unwrap() = Some(attempt(&items[i]));
            };
            for _ in 0..nworkers - 1 {
                scope.spawn(run);
            }
            run();
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .unwrap_or_else(|| Err("work item slot never written".into()))
            })
            .collect()
    };
    let mut results = Vec::with_capacity(items.len());
    for outcome in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(msg) => return Err(EmError::WorkerPanic(msg)),
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn distributes_all_items_in_contiguous_blocks() {
        let q = WorkQueue::new(3, (0..10).collect());
        // Worker 0 drains its own share in order before stealing.
        let mut own = Vec::new();
        for _ in 0..4 {
            own.push(q.next(0).unwrap());
        }
        assert_eq!(own, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_worker_sees_every_item_in_order() {
        let q = WorkQueue::new(1, (0..7).collect());
        let drained: Vec<i32> = std::iter::from_fn(|| q.next(0)).collect();
        assert_eq!(drained, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_terminates_immediately() {
        let q: WorkQueue<u8> = WorkQueue::new(4, Vec::new());
        for w in 0..4 {
            assert_eq!(q.next(w), None);
        }
    }

    #[test]
    fn idle_workers_steal_until_everything_is_processed() {
        // All items land on worker 0's deque (workers 1..3 start empty and
        // must steal); every item must be seen exactly once.
        let q = WorkQueue::new(4, (0..100).collect::<Vec<i32>>());
        let seen = Mutex::new(HashSet::new());
        let duplicates = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let q = &q;
                let seen = &seen;
                let duplicates = &duplicates;
                scope.spawn(move || {
                    while let Some(item) = q.next(w) {
                        if !seen.lock().unwrap().insert(item) {
                            duplicates.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(duplicates.load(Ordering::Relaxed), 0);
        assert_eq!(seen.lock().unwrap().len(), 100);
    }

    #[test]
    fn steal_count_tracks_cross_worker_takes() {
        // Worker 0 owns [0, 1], worker 1 owns [2, 3]. Worker 1 drains
        // everything: its own two items, then two steals (back-first).
        let q = WorkQueue::new(2, (0..4).collect::<Vec<i32>>());
        assert_eq!(q.steal_count(), 0);
        let drained: Vec<i32> = std::iter::from_fn(|| q.next(1)).collect();
        assert_eq!(drained, vec![2, 3, 1, 0]);
        assert_eq!(q.steal_count(), 2);
    }

    #[test]
    fn more_workers_than_items_still_drains() {
        let q = WorkQueue::new(8, vec![1, 2]);
        let drained = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..8 {
                let q = &q;
                let drained = &drained;
                scope.spawn(move || {
                    while let Some(item) = q.next(w) {
                        drained.lock().unwrap().push(item);
                    }
                });
            }
        });
        let mut got = drained.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    // The thread-cap override is process-global; run_chunks tests that pin
    // it share one lock to avoid interleaving.
    static CAP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_chunks_preserves_item_order_at_every_worker_count() {
        let _g = CAP_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..23).collect();
        for threads in [1, 2, 8] {
            em_nn::threadpool::set_max_threads(Some(threads));
            let out = run_chunks(&items, |&i| i * 10).unwrap();
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>());
        }
        em_nn::threadpool::set_max_threads(None);
    }

    #[test]
    fn run_chunks_surfaces_panic_and_finishes_remaining_items() {
        let _g = CAP_LOCK.lock().unwrap();
        em_nn::threadpool::set_max_threads(Some(4));
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..9).collect();
        let err = run_chunks(&items, |&i| {
            if i == 3 {
                panic!("chunk {i} exploded");
            }
            completed.fetch_add(1, Ordering::Relaxed);
            i
        })
        .unwrap_err();
        em_nn::threadpool::set_max_threads(None);
        let msg = err.to_string();
        assert!(
            msg.contains("chunk 3 exploded"),
            "panic payload must survive into the error, got: {msg}"
        );
        assert_eq!(
            completed.load(Ordering::Relaxed),
            8,
            "the panicking item must not abort the remaining items"
        );
    }

    #[test]
    fn run_chunks_on_empty_input_is_empty() {
        let out: Vec<u8> = run_chunks(&[] as &[u8], |_: &u8| 0u8).unwrap();
        assert!(out.is_empty());
    }
}
