//! Kill-and-resume integration tests for the checkpointed evaluation
//! driver: for *any* interruption point, a resumed sweep must reproduce
//! the uninterrupted run bit-identically while re-evaluating only the
//! items lost at the kill.

use em_core::{
    evaluate_all, evaluate_all_resumable, AttrType, AttrValue, Benchmark, DatasetId, EvalBatch,
    EvalConfig, EvalReport, LabeledPair, LodoSplit, Matcher, Record,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn suite() -> Vec<Benchmark> {
    DatasetId::ALL
        .iter()
        .map(|&id| Benchmark {
            id,
            attr_types: vec![AttrType::ShortText, AttrType::Numeric],
            pairs: (0..24)
                .map(|i| {
                    let l = Record::new(
                        i as u64,
                        vec![
                            AttrValue::Text(format!("{} item {i}", id.code())),
                            AttrValue::Number(i as f64),
                        ],
                    );
                    let r = if i % 3 == 0 {
                        l.clone()
                    } else {
                        Record::new(
                            i as u64 + 10_000,
                            vec![
                                AttrValue::Text(format!("{} other {i}", id.code())),
                                AttrValue::Number(i as f64 + 1.0),
                            ],
                        )
                    };
                    LabeledPair::new(l, r, i % 3 == 0)
                })
                .collect(),
        })
        .collect()
}

/// A deterministic matcher whose predictions genuinely depend on the fit
/// seed and the pair text, so per-seed F1 values differ and a bitwise
/// comparison is meaningful. Also counts `predict` calls: the proof that
/// resumed items were served from the checkpoint.
struct HashVote {
    seed: u64,
    predicts: Arc<AtomicUsize>,
}

impl Matcher for HashVote {
    fn name(&self) -> String {
        "HashVote".into()
    }
    fn params_millions(&self) -> Option<f64> {
        Some(0.001)
    }
    fn fit(&mut self, _: &LodoSplit<'_>, seed: u64) -> em_core::Result<()> {
        self.seed = seed;
        Ok(())
    }
    fn predict(&mut self, batch: &EvalBatch) -> em_core::Result<Vec<bool>> {
        self.predicts.fetch_add(1, Ordering::Relaxed);
        Ok(batch
            .serialized
            .iter()
            .map(|p| {
                let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.wrapping_mul(0x9e37);
                for b in p.left.bytes().chain(p.right.bytes()) {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h & 1 == 0
            })
            .collect())
    }
}

type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;

fn factories(predicts: &Arc<AtomicUsize>) -> Vec<(String, Factory)> {
    ["hash-a", "hash-b"]
        .into_iter()
        .map(|label| {
            let predicts = predicts.clone();
            let f: Factory = Box::new(move || {
                Box::new(HashVote {
                    seed: 0,
                    predicts: predicts.clone(),
                }) as _
            });
            (label.to_owned(), f)
        })
        .collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "em-ckpt-resume-{}-{tag}.jsonl",
        std::process::id()
    ))
}

fn assert_bitwise_equal(a: &[EvalReport], b: &[EvalReport]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        prop_assert_eq!(&ra.matcher, &rb.matcher);
        prop_assert_eq!(ra.params_millions, rb.params_millions);
        prop_assert_eq!(ra.scores.len(), rb.scores.len());
        for (sa, sb) in ra.scores.iter().zip(&rb.scores) {
            prop_assert_eq!(sa.dataset, sb.dataset);
            prop_assert_eq!(sa.seen_in_training, sb.seen_in_training);
            prop_assert_eq!(sa.degraded, sb.degraded);
            let bits_a: Vec<u64> = sa.per_seed_f1.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = sb.per_seed_f1.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits_a, bits_b);
        }
    }
    Ok(())
}

proptest! {
    /// Kill the sweep after `k` completed items (truncate the checkpoint
    /// to its first `k` rows), resume, and require (a) a bit-identical
    /// result and (b) exactly the remaining items re-evaluated.
    #[test]
    fn any_interruption_point_resumes_bitwise(k in 0usize..=22) {
        let suite = suite();
        let cfg = EvalConfig::quick(2, 24);
        let n_items = 2 * suite.len();
        let path = tmp_path(&format!("prop{k}"));

        let full_predicts = Arc::new(AtomicUsize::new(0));
        let full = evaluate_all_resumable(factories(&full_predicts), &suite, &cfg, &path, false)
            .unwrap();
        prop_assert_eq!(full_predicts.load(Ordering::Relaxed), n_items * 2);

        // Simulate the kill: keep the first k completed rows.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), n_items);
        let truncated: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, truncated).unwrap();

        let resumed_predicts = Arc::new(AtomicUsize::new(0));
        let resumed =
            evaluate_all_resumable(factories(&resumed_predicts), &suite, &cfg, &path, true)
                .unwrap();
        assert_bitwise_equal(&resumed, &full)?;
        prop_assert_eq!(
            resumed_predicts.load(Ordering::Relaxed),
            (n_items - k) * 2,
            "resume must only re-evaluate the {} lost items",
            n_items - k
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn checkpointed_run_matches_plain_evaluate_all() {
    let suite = suite();
    let cfg = EvalConfig::quick(2, 24);
    let path = tmp_path("plain");

    let predicts = Arc::new(AtomicUsize::new(0));
    let plain = evaluate_all(factories(&predicts), &suite, &cfg).unwrap();
    let ckpt = evaluate_all_resumable(factories(&predicts), &suite, &cfg, &path, false).unwrap();
    assert_bitwise_equal(&ckpt, &plain).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_final_row_is_reevaluated_not_fatal() {
    let suite = suite();
    let cfg = EvalConfig::quick(1, 24);
    let path = tmp_path("torn");

    let predicts = Arc::new(AtomicUsize::new(0));
    let full = evaluate_all_resumable(factories(&predicts), &suite, &cfg, &path, false).unwrap();

    // Cut the last row in half, as a kill mid-write would.
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.len() - 25;
    std::fs::write(&path, &text[..cut]).unwrap();

    let resumed = evaluate_all_resumable(factories(&predicts), &suite, &cfg, &path, true).unwrap();
    assert_bitwise_equal(&resumed, &full).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_seed_count_discards_rows_and_reruns() {
    let suite = suite();
    let path = tmp_path("stale");

    let predicts = Arc::new(AtomicUsize::new(0));
    evaluate_all_resumable(
        factories(&predicts),
        &suite,
        &EvalConfig::quick(1, 24),
        &path,
        false,
    )
    .unwrap();

    // Resuming under a different seed count must ignore every stale row
    // (their per-seed vectors no longer fit) and still produce a correct
    // fresh run.
    let cfg2 = EvalConfig::quick(2, 24);
    let fresh_predicts = Arc::new(AtomicUsize::new(0));
    let resumed =
        evaluate_all_resumable(factories(&fresh_predicts), &suite, &cfg2, &path, true).unwrap();
    assert_eq!(
        fresh_predicts.load(Ordering::Relaxed),
        2 * suite.len() * 2,
        "no stale row may satisfy the new config"
    );
    let direct_predicts = Arc::new(AtomicUsize::new(0));
    let direct = evaluate_all(factories(&direct_predicts), &suite, &cfg2).unwrap();
    assert_bitwise_equal(&resumed, &direct).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn fully_resumed_sweep_runs_nothing_and_keeps_metadata() {
    let suite = suite();
    let cfg = EvalConfig::quick(2, 24);
    let path = tmp_path("full");

    let predicts = Arc::new(AtomicUsize::new(0));
    let full = evaluate_all_resumable(factories(&predicts), &suite, &cfg, &path, false).unwrap();

    let resumed_predicts = Arc::new(AtomicUsize::new(0));
    let resumed =
        evaluate_all_resumable(factories(&resumed_predicts), &suite, &cfg, &path, true).unwrap();
    assert_eq!(
        resumed_predicts.load(Ordering::Relaxed),
        0,
        "a complete checkpoint leaves nothing to evaluate"
    );
    assert_bitwise_equal(&resumed, &full).unwrap();
    // Matcher metadata must come from the checkpoint rows, not a probe.
    assert!(resumed.iter().all(|r| r.matcher == "HashVote"));
    assert_eq!(resumed[0].params_millions, Some(0.001));
    std::fs::remove_file(&path).ok();
}
