//! Integration test: the evaluation driver emits a coherent trace.
//!
//! Runs a full `evaluate_all` over the eleven-dataset suite with capture
//! forced on and checks the span/metric contract the profiling tooling
//! (`profile_lodo`) relies on: one `eval.item` span per (matcher ×
//! LODO-target), nested `eval.fit`/`eval.predict` spans parent-linked to
//! their item, and a `eval.pairs_scored` counter equal to the number of
//! labels actually scored.

use em_core::dataset::{Benchmark, DatasetId};
use em_core::error::Result;
use em_core::eval::{evaluate_all, EvalConfig};
use em_core::lodo::LodoSplit;
use em_core::matcher::{EvalBatch, Matcher};
use em_core::pair::LabeledPair;
use em_core::record::{AttrType, AttrValue, Record};
use em_obs::trace::RecordKind;

const PAIRS_PER_DATASET: usize = 30;
const TEST_CAP: usize = 20;

fn bench_with_pairs(id: DatasetId, n: usize) -> Benchmark {
    let pairs = (0..n)
        .map(|i| {
            let l = Record::new(
                i as u64,
                vec![
                    AttrValue::Text(format!("item {i}")),
                    AttrValue::Number(i as f64),
                ],
            );
            let r = if i % 3 == 0 {
                l.clone()
            } else {
                Record::new(
                    i as u64 + 10_000,
                    vec![
                        AttrValue::Text(format!("other {i}")),
                        AttrValue::Number(i as f64 + 1.0),
                    ],
                )
            };
            LabeledPair::new(l, r, i % 3 == 0)
        })
        .collect();
    Benchmark {
        id,
        attr_types: vec![AttrType::ShortText, AttrType::Numeric],
        pairs,
    }
}

struct ExactMatch(&'static str);
impl Matcher for ExactMatch {
    fn name(&self) -> String {
        self.0.into()
    }
    fn fit(&mut self, _: &LodoSplit<'_>, _: u64) -> Result<()> {
        Ok(())
    }
    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(batch.serialized.iter().map(|p| p.left == p.right).collect())
    }
}

#[test]
fn evaluate_all_emits_one_span_per_matcher_target_item() {
    let suite: Vec<Benchmark> = DatasetId::ALL
        .iter()
        .map(|&id| bench_with_pairs(id, PAIRS_PER_DATASET))
        .collect();

    em_obs::trace::set_capture(true);
    em_obs::metrics::reset();
    let _ = em_obs::trace::drain();

    type Factory = Box<dyn Fn() -> Box<dyn Matcher> + Send + Sync>;
    let factories: Vec<(String, Factory)> = vec![
        (
            "a".into(),
            Box::new(|| Box::new(ExactMatch("ExactA")) as Box<dyn Matcher>),
        ),
        (
            "b".into(),
            Box::new(|| Box::new(ExactMatch("ExactB")) as Box<dyn Matcher>),
        ),
    ];
    let n_matchers = factories.len();
    let cfg = EvalConfig::quick(1, TEST_CAP);
    let reports = evaluate_all(factories, &suite, &cfg).unwrap();
    assert_eq!(reports.len(), n_matchers);

    em_obs::trace::set_capture(false);
    let records = em_obs::trace::drain();
    assert_eq!(em_obs::trace::dropped_records(), 0);

    // Exactly one eval.item span per (matcher × LODO-target).
    let items: Vec<_> = records
        .iter()
        .filter(|r| r.kind == RecordKind::Span && r.name == "eval.item")
        .collect();
    assert_eq!(items.len(), n_matchers * suite.len());

    // Every (matcher, target) combination appears.
    let mut combos: Vec<(String, String)> = items
        .iter()
        .map(|r| {
            let get = |key: &str| {
                r.fields
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:?}"))
                    .unwrap()
            };
            (get("matcher"), get("target"))
        })
        .collect();
    combos.sort();
    combos.dedup();
    assert_eq!(combos.len(), n_matchers * suite.len());

    // fit/predict spans exist once per item (one seed) and parent-link to
    // an eval.item span.
    let item_ids: std::collections::HashSet<u64> = items.iter().map(|r| r.id).collect();
    for name in ["eval.fit", "eval.predict"] {
        let children: Vec<_> = records
            .iter()
            .filter(|r| r.kind == RecordKind::Span && r.name == name)
            .collect();
        assert_eq!(children.len(), n_matchers * suite.len(), "{name}");
        for c in children {
            assert_ne!(c.parent, 0, "{name} must be nested");
            assert!(
                item_ids.contains(&c.parent),
                "{name} not nested in eval.item"
            );
        }
    }

    // The pairs-scored counter equals the labels actually evaluated:
    // every dataset has 30 pairs capped to 20, one seed.
    let snap = em_obs::metrics::snapshot();
    let pairs = snap
        .iter()
        .find_map(|(name, m)| match (name.as_str(), m) {
            ("eval.pairs_scored", em_obs::metrics::MetricSnapshot::Counter(v)) => Some(*v),
            _ => None,
        })
        .expect("eval.pairs_scored counter registered");
    assert_eq!(pairs as usize, n_matchers * suite.len() * TEST_CAP);

    // Per-item latency histograms recorded one observation per item.
    let hist_count: u64 = snap
        .iter()
        .find_map(|(name, m)| match (name.as_str(), m) {
            ("eval.item_ns", em_obs::metrics::MetricSnapshot::Histogram { count, .. }) => {
                Some(*count)
            }
            _ => None,
        })
        .expect("eval.item_ns histogram registered");
    assert_eq!(hist_count as usize, n_matchers * suite.len());
}
