//! Proptest pin of the `Serializer` contract the perturbation suite
//! leans on: shuffles are permutations, `record_into` is byte-identical
//! to `record`, and both serialization styles are deterministic under a
//! fixed seed.

use em_core::record::{AttrValue, Record};
use em_core::{Serializer, NAME_SEPARATOR, VALUE_SEPARATOR};
use proptest::prelude::*;

fn record(id: u64, values: &[String]) -> Record {
    Record::new(
        id,
        values.iter().map(|v| AttrValue::from(v.as_str())).collect(),
    )
}

/// Token-free values so splitting a rendering on `VALUE_SEPARATOR`
/// recovers the fields exactly (values containing the separator would
/// make the split ambiguous — that is a rendering property, not a bug,
/// and not what these tests pin).
fn sep_free_values(arity: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z0-9]{1,12}", arity)
}

proptest! {
    #[test]
    fn shuffled_is_a_permutation_of_identity(
        arity in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let ser = Serializer::shuffled(arity, seed);
        let mut order: Vec<usize> = ser.order().to_vec();
        prop_assert_eq!(order.len(), arity);
        order.sort_unstable();
        let sorted: Vec<usize> = (0..arity).collect();
        prop_assert_eq!(order, sorted, "shuffle dropped or duplicated a column");
    }

    #[test]
    fn shuffled_rendering_permutes_the_identity_fields(
        seed in 0u64..10_000,
        values in sep_free_values(5),
    ) {
        let r = record(1, &values);
        let identity = Serializer::identity(5).record(&r);
        let shuffled = Serializer::shuffled(5, seed).record(&r);
        let mut id_fields: Vec<&str> = identity.split(VALUE_SEPARATOR).collect();
        let mut sh_fields: Vec<&str> = shuffled.split(VALUE_SEPARATOR).collect();
        prop_assert_eq!(id_fields.len(), 5);
        id_fields.sort_unstable();
        sh_fields.sort_unstable();
        prop_assert_eq!(id_fields, sh_fields, "shuffle changed the multiset of fields");
    }

    #[test]
    fn record_into_matches_record_bytes(
        seed in 0u64..1_000,
        named in 0u8..2,
        values in sep_free_values(4),
    ) {
        let mut ser = Serializer::shuffled(4, seed);
        if named == 1 {
            ser = ser.with_names(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        }
        let r = record(7, &values);
        let direct = ser.record(&r);
        // `record_into` clears the buffer first (its documented contract),
        // then must produce byte-identical output to `record`.
        let mut buf = String::from("stale content");
        ser.record_into(&r, &mut buf);
        prop_assert_eq!(buf, direct);
    }

    #[test]
    fn both_styles_are_deterministic_under_a_fixed_seed(
        seed in 0u64..10_000,
        values in sep_free_values(3),
    ) {
        let r = record(3, &values);
        let names = vec!["title".into(), "category".into(), "price".into()];
        let vo_a = Serializer::shuffled(3, seed).record(&r);
        let vo_b = Serializer::shuffled(3, seed).record(&r);
        prop_assert_eq!(vo_a, vo_b);
        let nv_a = Serializer::shuffled(3, seed).with_names(names.clone()).record(&r);
        let nv_b = Serializer::shuffled(3, seed).with_names(names.clone()).record(&r);
        prop_assert_eq!(nv_a.clone(), nv_b);
        // The name-value ablation really rendered names, in shuffled order.
        let first_field = nv_a.split(VALUE_SEPARATOR).next().unwrap().to_string();
        prop_assert!(
            names.iter().any(|n| first_field.starts_with(&format!("{n}{NAME_SEPARATOR}"))),
            "name-value rendering is missing its name prefix: {}",
            first_field
        );
    }

    #[test]
    fn values_only_strips_names_without_reordering(
        seed in 0u64..10_000,
        values in sep_free_values(3),
    ) {
        let r = record(5, &values);
        let named = Serializer::shuffled(3, seed)
            .with_names(vec!["x".into(), "y".into(), "z".into()]);
        let plain = named.clone().values_only();
        prop_assert_eq!(named.order(), plain.order());
        prop_assert_eq!(
            plain.record(&r),
            Serializer::shuffled(3, seed).record(&r),
            "values_only must round back to the plain rendering"
        );
        prop_assert!(named.fingerprint() != plain.fingerprint());
    }
}
