//! Cost-per-1K-token estimation (Table 6).
//!
//! For self-hosted models the paper's formula is
//! `(p / (2 · t_m · 3600)) · 1000`, where `p` is the hourly p4d.24xlarge
//! price, `t_m` the tokens/s measured on the 4-GPU node, and 2 the
//! extrapolation factor to the 8-GPU cloud instance. For proprietary models
//! the listed per-1K-token API price is used directly; for open-weight
//! models the cheaper of self-hosting and together.ai hosting is chosen.

use crate::pricing::{openai, together_ai, DeploymentScenario, P4D_24XLARGE_HOURLY_USD};
use em_hardware::{deploy, profile_by_name, Machine};

/// One Table 6 row: a method+model combination with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// "Method & model" label as printed in Table 6.
    pub label: String,
    /// USD per 1,000 input tokens.
    pub usd_per_1k_tokens: f64,
    /// Chosen (cheapest) deployment scenario.
    pub scenario: DeploymentScenario,
}

/// The paper's self-hosting formula: hourly price over extrapolated
/// throughput.
pub fn self_host_cost_per_1k(tokens_per_s_4gpu: f64) -> f64 {
    assert!(tokens_per_s_4gpu > 0.0, "throughput must be positive");
    P4D_24XLARGE_HOURLY_USD / (2.0 * tokens_per_s_4gpu * 3600.0) * 1000.0
}

/// Whether together.ai hosting is available for a model (the 70B
/// open-weight chat models in the study).
fn together_available(model: &str) -> bool {
    matches!(model, "SOLAR" | "Beluga2")
}

/// Computes a Table 6 row for a self-hostable open-weight model, choosing
/// the cheaper of p4d self-hosting and together.ai hosting.
///
/// `tokens_per_s` is the 4×A100 throughput (simulated or paper-reported).
pub fn open_weight_cost(label: &str, model: &str, tokens_per_s: f64) -> CostEntry {
    let self_cost = self_host_cost_per_1k(tokens_per_s);
    let profile = profile_by_name(model);
    let replicas = profile
        .map(|p| deploy(p, &Machine::p4d_24xlarge()).replicas)
        .unwrap_or(8);
    if together_available(model) && together_ai::MODEL_70B_PER_1K < self_cost {
        CostEntry {
            label: label.to_owned(),
            usd_per_1k_tokens: together_ai::MODEL_70B_PER_1K,
            scenario: DeploymentScenario::TogetherAi,
        }
    } else {
        CostEntry {
            label: label.to_owned(),
            usd_per_1k_tokens: self_cost,
            scenario: DeploymentScenario::SelfHostedP4d { replicas },
        }
    }
}

/// Computes a Table 6 row for an OpenAI-hosted model.
pub fn api_cost(label: &str, model: &str) -> CostEntry {
    let price = match model {
        "GPT-4" => openai::GPT4_PER_1K,
        "GPT-3.5-Turbo" => openai::GPT35_TURBO_PER_1K,
        "GPT-4o-Mini" => openai::GPT4O_MINI_PER_1K,
        other => panic!("no API price for {other}"),
    };
    CostEntry {
        label: label.to_owned(),
        usd_per_1k_tokens: price,
        scenario: DeploymentScenario::OpenAiBatchApi,
    }
}

/// Builds the full Table 6 from throughput numbers.
///
/// `throughputs` maps Table 5 model names to 4×A100 tokens/s. Pass the
/// simulator's outputs (or the paper's measurements) — both reproduce the
/// table's structure. Jellyfish is included for cost (the paper lists it in
/// Table 6 even though its F1 cannot be fairly averaged). Rows are sorted
/// by descending cost like the paper's table.
pub fn table6(throughputs: &[(&str, f64)]) -> Vec<CostEntry> {
    let t = |name: &str| -> f64 {
        throughputs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing throughput for {name}"))
    };
    let mut rows = vec![
        api_cost("MatchGPT [GPT-4]", "GPT-4"),
        open_weight_cost("MatchGPT [SOLAR]", "SOLAR", t("SOLAR")),
        open_weight_cost("MatchGPT [Beluga2]", "Beluga2", t("Beluga2")),
        api_cost("MatchGPT [GPT-3.5-Turbo]", "GPT-3.5-Turbo"),
        open_weight_cost("MatchGPT [Mixtral-8x7B]", "Mixtral-8x7B", t("Mixtral-8x7B")),
        api_cost("MatchGPT [GPT-4o-Mini]", "GPT-4o-Mini"),
        open_weight_cost("Jellyfish", "LLaMA2-13B", t("LLaMA2-13B")),
        open_weight_cost("Unicorn[DeBERTa]", "DeBERTa", t("DeBERTa")),
        open_weight_cost("AnyMatch[LLaMA3.2]", "LLaMA3.2", t("LLaMA3.2")),
        open_weight_cost("AnyMatch[T5]", "T5", t("T5")),
        open_weight_cost("AnyMatch[GPT-2]", "GPT-2", t("GPT-2")),
        open_weight_cost("Ditto[Bert]", "BERT", t("BERT")),
    ];
    rows.sort_by(|a, b| {
        b.usd_per_1k_tokens
            .partial_cmp(&a.usd_per_1k_tokens)
            .unwrap()
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_hardware::TABLE5_MODELS;

    fn paper_throughputs() -> Vec<(&'static str, f64)> {
        TABLE5_MODELS
            .iter()
            .map(|m| (m.name, m.paper_tokens_per_s))
            .collect()
    }

    #[test]
    fn self_host_formula_reproduces_ditto_cost() {
        // Paper: Ditto[Bert] costs $0.0000031 per 1K tokens.
        let c = self_host_cost_per_1k(862_001.0);
        assert!((c - 0.0000031).abs() < 2e-7, "{c}");
    }

    #[test]
    fn jellyfish_cost_from_the_stated_formula() {
        // Applying the paper's formula `(p/(2·t_m·3600))·1000` to the
        // paper's own throughput gives $0.0000999 — the published Table 6
        // value ($0.000025) implies an 8× extrapolation for this row
        // (documented in EXPERIMENTS.md as an inconsistency of the
        // original table). We apply the stated formula consistently.
        let c = self_host_cost_per_1k(26_721.0);
        assert!((c - 0.0000999).abs() < 2e-6, "{c}");
    }

    #[test]
    fn solar_beluga_choose_together_ai() {
        // Self-hosting a 70B at ~1K tokens/s costs ~$0.0025/1K — more than
        // together.ai's $0.0009, so the paper picks together.ai.
        let solar = open_weight_cost("MatchGPT [SOLAR]", "SOLAR", 752.0);
        assert_eq!(solar.scenario, DeploymentScenario::TogetherAi);
        assert_eq!(solar.usd_per_1k_tokens, 0.0009);
        let beluga = open_weight_cost("MatchGPT [Beluga2]", "Beluga2", 1_079.0);
        assert_eq!(beluga.scenario, DeploymentScenario::TogetherAi);
    }

    #[test]
    fn mixtral_self_hosts() {
        // The stated formula gives $0.00127 (the paper's $0.00063 implies a
        // 4× replica extrapolation for this row — see EXPERIMENTS.md).
        let m = open_weight_cost("MatchGPT [Mixtral-8x7B]", "Mixtral-8x7B", 2_108.0);
        assert!(matches!(
            m.scenario,
            DeploymentScenario::SelfHostedP4d { replicas: 4 }
        ));
        assert!(
            (m.usd_per_1k_tokens - 0.001266).abs() < 5e-5,
            "{}",
            m.usd_per_1k_tokens
        );
    }

    #[test]
    fn slms_deploy_8x_on_p4d() {
        let d = open_weight_cost("Ditto[Bert]", "BERT", 862_001.0);
        assert!(matches!(
            d.scenario,
            DeploymentScenario::SelfHostedP4d { replicas: 8 }
        ));
    }

    #[test]
    fn table6_order_matches_paper() {
        let rows = table6(&paper_throughputs());
        assert_eq!(rows.len(), 12);
        // GPT-4 most expensive, Ditto cheapest.
        assert_eq!(rows.first().unwrap().label, "MatchGPT [GPT-4]");
        assert_eq!(rows.last().unwrap().label, "Ditto[Bert]");
        // Monotone non-increasing.
        for w in rows.windows(2) {
            assert!(w[0].usd_per_1k_tokens >= w[1].usd_per_1k_tokens);
        }
    }

    #[test]
    fn gpt4_is_thousands_of_times_ditto() {
        // Paper: "4,838 times cheaper".
        let rows = table6(&paper_throughputs());
        let gpt4 = rows.iter().find(|r| r.label.contains("GPT-4]")).unwrap();
        let ditto = rows.iter().find(|r| r.label.contains("Ditto")).unwrap();
        let factor = gpt4.usd_per_1k_tokens / ditto.usd_per_1k_tokens;
        assert!((3_000.0..8_000.0).contains(&factor), "factor {factor}");
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        let _ = self_host_cost_per_1k(0.0);
    }
}
