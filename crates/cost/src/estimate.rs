//! Cost-per-1K-token estimation (Table 6).
//!
//! For self-hosted models the paper's formula is
//! `(p / (2 · t_m · 3600)) · 1000`, where `p` is the hourly p4d.24xlarge
//! price, `t_m` the tokens/s measured on the 4-GPU node, and 2 the
//! extrapolation factor to the 8-GPU cloud instance. For proprietary models
//! the listed per-1K-token API price is used directly; for open-weight
//! models the cheaper of self-hosting and together.ai hosting is chosen.

use crate::pricing::{openai, together_ai, DeploymentScenario, P4D_24XLARGE_HOURLY_USD};
use em_hardware::{deploy, profile_by_name, Machine};

/// One Table 6 row: a method+model combination with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// "Method & model" label as printed in Table 6.
    pub label: String,
    /// USD per 1,000 input tokens.
    pub usd_per_1k_tokens: f64,
    /// Chosen (cheapest) deployment scenario.
    pub scenario: DeploymentScenario,
}

/// The paper's self-hosting formula: hourly price over extrapolated
/// throughput.
pub fn self_host_cost_per_1k(tokens_per_s_4gpu: f64) -> f64 {
    assert!(tokens_per_s_4gpu > 0.0, "throughput must be positive");
    P4D_24XLARGE_HOURLY_USD / (2.0 * tokens_per_s_4gpu * 3600.0) * 1000.0
}

/// Whether together.ai hosting is available for a model (the 70B
/// open-weight chat models in the study).
fn together_available(model: &str) -> bool {
    matches!(model, "SOLAR" | "Beluga2")
}

/// Computes a Table 6 row for a self-hostable open-weight model, choosing
/// the cheaper of p4d self-hosting and together.ai hosting.
///
/// `tokens_per_s` is the 4×A100 throughput (simulated or paper-reported).
///
/// Returns `None` (with a `cost.unknown_model` warn event) when the model
/// has no hardware profile. Previously the replica count silently defaulted
/// to 8, fabricating a deployment scenario — and therefore a Table 6 row —
/// for models the hardware model knows nothing about.
pub fn open_weight_cost(label: &str, model: &str, tokens_per_s: f64) -> Option<CostEntry> {
    let self_cost = self_host_cost_per_1k(tokens_per_s);
    let Some(profile) = profile_by_name(model) else {
        em_obs::event!(warn, "cost.unknown_model", label = label, model = model);
        return None;
    };
    let replicas = deploy(profile, &Machine::p4d_24xlarge()).replicas;
    if together_available(model) && together_ai::MODEL_70B_PER_1K < self_cost {
        Some(CostEntry {
            label: label.to_owned(),
            usd_per_1k_tokens: together_ai::MODEL_70B_PER_1K,
            scenario: DeploymentScenario::TogetherAi,
        })
    } else {
        Some(CostEntry {
            label: label.to_owned(),
            usd_per_1k_tokens: self_cost,
            scenario: DeploymentScenario::SelfHostedP4d { replicas },
        })
    }
}

/// Computes a Table 6 row for an OpenAI-hosted model.
///
/// Returns `None` (with a `cost.unknown_model` warn event) when the price
/// book has no entry for `model`.
pub fn api_cost(label: &str, model: &str) -> Option<CostEntry> {
    let price = match model {
        "GPT-4" => openai::GPT4_PER_1K,
        "GPT-3.5-Turbo" => openai::GPT35_TURBO_PER_1K,
        "GPT-4o-Mini" => openai::GPT4O_MINI_PER_1K,
        _ => {
            em_obs::event!(warn, "cost.unknown_model", label = label, model = model);
            return None;
        }
    };
    Some(CostEntry {
        label: label.to_owned(),
        usd_per_1k_tokens: price,
        scenario: DeploymentScenario::OpenAiBatchApi,
    })
}

/// Builds the full Table 6 from throughput numbers.
///
/// `throughputs` maps Table 5 model names to 4×A100 tokens/s. Pass the
/// simulator's outputs (or the paper's measurements) — both reproduce the
/// table's structure. Jellyfish is included for cost (the paper lists it in
/// Table 6 even though its F1 cannot be fairly averaged). Rows are sorted
/// by descending cost like the paper's table.
///
/// A row whose throughput is missing from `throughputs` (or whose model is
/// unknown to the price book / hardware model) is **skipped** rather than
/// panicking or being fabricated; each skip emits a `cost.row_skipped`
/// warn event and bumps the `cost.rows_skipped` counter, so a partial
/// table is always explicit in the run's trace.
pub fn table6(throughputs: &[(&str, f64)]) -> Vec<CostEntry> {
    let t = |name: &str| -> Option<f64> {
        let found = throughputs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        if found.is_none() {
            em_obs::event!(warn, "cost.row_skipped", model = name, reason = "no throughput");
            if em_obs::capture_enabled() {
                em_obs::metrics::counter("cost.rows_skipped").inc();
            }
        }
        found
    };
    let ow = |label: &str, model: &str| t(model).and_then(|tp| open_weight_cost(label, model, tp));
    let mut rows: Vec<CostEntry> = [
        api_cost("MatchGPT [GPT-4]", "GPT-4"),
        ow("MatchGPT [SOLAR]", "SOLAR"),
        ow("MatchGPT [Beluga2]", "Beluga2"),
        api_cost("MatchGPT [GPT-3.5-Turbo]", "GPT-3.5-Turbo"),
        ow("MatchGPT [Mixtral-8x7B]", "Mixtral-8x7B"),
        api_cost("MatchGPT [GPT-4o-Mini]", "GPT-4o-Mini"),
        ow("Jellyfish", "LLaMA2-13B"),
        ow("Unicorn[DeBERTa]", "DeBERTa"),
        ow("AnyMatch[LLaMA3.2]", "LLaMA3.2"),
        ow("AnyMatch[T5]", "T5"),
        ow("AnyMatch[GPT-2]", "GPT-2"),
        ow("Ditto[Bert]", "BERT"),
    ]
    .into_iter()
    .flatten()
    .collect();
    rows.sort_by(|a, b| b.usd_per_1k_tokens.total_cmp(&a.usd_per_1k_tokens));
    rows
}

/// Tokens-per-second throughput derived from the run's own measured
/// counters: total real prompt tokens (`lm.prompt_tokens`) over total
/// scoring wall-clock (`lm.score_ns`), both maintained by
/// `em_lm::zoo::score_batch` when [`em_obs`] capture is on. Lets Table 6
/// rows be derived from an instrumented run instead of hard-coded
/// throughput numbers. Returns `None` when nothing was measured.
pub fn measured_throughput() -> Option<f64> {
    let tokens = em_obs::metrics::counter("lm.prompt_tokens").get();
    let ns = em_obs::metrics::histogram("lm.score_ns").sum();
    if tokens == 0 || ns == 0 {
        return None;
    }
    Some(tokens as f64 / (ns as f64 / 1e9))
}

/// Prompt tokens a hosted API would bill for an instrumented run:
/// `(clean, retried)`. The clean part is `lm.prompt_tokens` (tokens of
/// chunks that produced answers; maintained by `em_lm::zoo` when
/// [`em_obs`] capture is on, like [`measured_throughput`]). The retried
/// part is `faults.retried_tokens` — every token the resilient hosted
/// client re-sent on a retry attempt; it is always-on, because a flaky
/// backend bills those tokens whether or not tracing is enabled.
pub fn billed_prompt_tokens() -> (u64, u64) {
    (
        em_obs::metrics::counter("lm.prompt_tokens").get(),
        em_obs::metrics::counter("faults.retried_tokens").get(),
    )
}

/// The API bill of a hosted run, split into useful work and retry
/// overhead — faults do not change F1 (retries are transparent) but they
/// do change the bill, and this is where that shows up.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiBill {
    /// Tokens billed for chunks that produced answers.
    pub clean_tokens: u64,
    /// Tokens billed again for retry attempts.
    pub retried_tokens: u64,
    /// USD per 1,000 tokens used for the conversion.
    pub usd_per_1k_tokens: f64,
}

impl ApiBill {
    /// Bill for the useful work alone.
    pub fn usd_clean(&self) -> f64 {
        self.clean_tokens as f64 / 1000.0 * self.usd_per_1k_tokens
    }

    /// Extra spend caused by retries.
    pub fn usd_retries(&self) -> f64 {
        self.retried_tokens as f64 / 1000.0 * self.usd_per_1k_tokens
    }

    /// Total billed amount.
    pub fn usd_total(&self) -> f64 {
        self.usd_clean() + self.usd_retries()
    }

    /// Retried tokens as a fraction of clean tokens (0.0 for a fault-free
    /// run; 0.0 too when nothing was measured).
    pub fn retry_overhead(&self) -> f64 {
        if self.clean_tokens == 0 {
            0.0
        } else {
            self.retried_tokens as f64 / self.clean_tokens as f64
        }
    }
}

/// Builds an [`ApiBill`] from explicit token counts.
pub fn api_bill_for(clean_tokens: u64, retried_tokens: u64, usd_per_1k_tokens: f64) -> ApiBill {
    ApiBill {
        clean_tokens,
        retried_tokens,
        usd_per_1k_tokens,
    }
}

/// Builds an [`ApiBill`] from the current run's counters
/// (see [`billed_prompt_tokens`]).
pub fn api_bill(usd_per_1k_tokens: f64) -> ApiBill {
    let (clean, retried) = billed_prompt_tokens();
    api_bill_for(clean, retried, usd_per_1k_tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_hardware::TABLE5_MODELS;

    fn paper_throughputs() -> Vec<(&'static str, f64)> {
        TABLE5_MODELS
            .iter()
            .map(|m| (m.name, m.paper_tokens_per_s))
            .collect()
    }

    #[test]
    fn self_host_formula_reproduces_ditto_cost() {
        // Paper: Ditto[Bert] costs $0.0000031 per 1K tokens.
        let c = self_host_cost_per_1k(862_001.0);
        assert!((c - 0.0000031).abs() < 2e-7, "{c}");
    }

    #[test]
    fn jellyfish_cost_from_the_stated_formula() {
        // Applying the paper's formula `(p/(2·t_m·3600))·1000` to the
        // paper's own throughput gives $0.0000999 — the published Table 6
        // value ($0.000025) implies an 8× extrapolation for this row
        // (documented in EXPERIMENTS.md as an inconsistency of the
        // original table). We apply the stated formula consistently.
        let c = self_host_cost_per_1k(26_721.0);
        assert!((c - 0.0000999).abs() < 2e-6, "{c}");
    }

    #[test]
    fn solar_beluga_choose_together_ai() {
        // Self-hosting a 70B at ~1K tokens/s costs ~$0.0025/1K — more than
        // together.ai's $0.0009, so the paper picks together.ai.
        let solar = open_weight_cost("MatchGPT [SOLAR]", "SOLAR", 752.0).unwrap();
        assert_eq!(solar.scenario, DeploymentScenario::TogetherAi);
        assert_eq!(solar.usd_per_1k_tokens, 0.0009);
        let beluga = open_weight_cost("MatchGPT [Beluga2]", "Beluga2", 1_079.0).unwrap();
        assert_eq!(beluga.scenario, DeploymentScenario::TogetherAi);
    }

    #[test]
    fn mixtral_self_hosts() {
        // The stated formula gives $0.00127 (the paper's $0.00063 implies a
        // 4× replica extrapolation for this row — see EXPERIMENTS.md).
        let m = open_weight_cost("MatchGPT [Mixtral-8x7B]", "Mixtral-8x7B", 2_108.0).unwrap();
        assert!(matches!(
            m.scenario,
            DeploymentScenario::SelfHostedP4d { replicas: 4 }
        ));
        assert!(
            (m.usd_per_1k_tokens - 0.001266).abs() < 5e-5,
            "{}",
            m.usd_per_1k_tokens
        );
    }

    #[test]
    fn slms_deploy_8x_on_p4d() {
        let d = open_weight_cost("Ditto[Bert]", "BERT", 862_001.0).unwrap();
        assert!(matches!(
            d.scenario,
            DeploymentScenario::SelfHostedP4d { replicas: 8 }
        ));
    }

    #[test]
    fn table6_order_matches_paper() {
        let rows = table6(&paper_throughputs());
        assert_eq!(rows.len(), 12);
        // GPT-4 most expensive, Ditto cheapest.
        assert_eq!(rows.first().unwrap().label, "MatchGPT [GPT-4]");
        assert_eq!(rows.last().unwrap().label, "Ditto[Bert]");
        // Monotone non-increasing.
        for w in rows.windows(2) {
            assert!(w[0].usd_per_1k_tokens >= w[1].usd_per_1k_tokens);
        }
    }

    #[test]
    fn gpt4_is_thousands_of_times_ditto() {
        // Paper: "4,838 times cheaper".
        let rows = table6(&paper_throughputs());
        let gpt4 = rows.iter().find(|r| r.label.contains("GPT-4]")).unwrap();
        let ditto = rows.iter().find(|r| r.label.contains("Ditto")).unwrap();
        let factor = gpt4.usd_per_1k_tokens / ditto.usd_per_1k_tokens;
        assert!((3_000.0..8_000.0).contains(&factor), "factor {factor}");
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        let _ = self_host_cost_per_1k(0.0);
    }

    #[test]
    fn measured_throughput_divides_tokens_by_scoring_time() {
        // 5,000 tokens over 2 ms of scoring → 2.5M tokens/s.
        em_obs::metrics::counter("lm.prompt_tokens").add(5_000);
        em_obs::metrics::histogram("lm.score_ns").record(2_000_000);
        let tp = measured_throughput().expect("counters populated");
        assert!((tp - 2_500_000.0).abs() < 1e-6, "{tp}");
    }

    #[test]
    fn unknown_model_yields_none_not_a_fabricated_row() {
        // Regression: a model without a hardware profile used to get a
        // made-up 8-replica self-hosted deployment; it must now be absent.
        assert_eq!(open_weight_cost("Mystery[13B]", "Mystery-13B", 1_000.0), None);
        assert_eq!(api_cost("Mystery API", "Mystery-API"), None);
    }

    #[test]
    fn api_bill_splits_clean_and_retry_spend() {
        let bill = api_bill_for(100_000, 10_000, openai::GPT4_PER_1K);
        assert!((bill.usd_clean() - 100.0 * openai::GPT4_PER_1K).abs() < 1e-12);
        assert!((bill.usd_retries() - 10.0 * openai::GPT4_PER_1K).abs() < 1e-12);
        assert!((bill.usd_total() - bill.usd_clean() - bill.usd_retries()).abs() < 1e-12);
        assert!((bill.retry_overhead() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fault_free_bill_has_zero_retry_overhead() {
        let bill = api_bill_for(50_000, 0, openai::GPT35_TURBO_PER_1K);
        assert_eq!(bill.usd_retries(), 0.0);
        assert_eq!(bill.retry_overhead(), 0.0);
        // Degenerate: nothing measured at all.
        assert_eq!(api_bill_for(0, 0, 1.0).retry_overhead(), 0.0);
    }

    #[test]
    fn api_bill_reads_the_retry_counter() {
        // `faults.retried_tokens` is always-on; add a known amount and
        // check the delta (other tests in this process share the counter).
        let before = api_bill(openai::GPT4_PER_1K);
        em_obs::metrics::counter("faults.retried_tokens").add(1_234);
        let after = api_bill(openai::GPT4_PER_1K);
        assert_eq!(after.retried_tokens - before.retried_tokens, 1_234);
    }

    #[test]
    fn table6_skips_rows_with_missing_throughput_instead_of_panicking() {
        // Regression: a missing throughput entry used to panic. Drop BERT
        // from the inputs: Table 6 loses exactly the Ditto[Bert] row, and
        // the skip is visible as a warn event in the trace.
        em_obs::trace::set_capture(true);
        let _ = em_obs::trace::drain();
        let partial: Vec<(&str, f64)> = paper_throughputs()
            .into_iter()
            .filter(|(n, _)| *n != "BERT")
            .collect();
        let rows = table6(&partial);
        em_obs::trace::set_capture(false);
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().all(|r| r.label != "Ditto[Bert]"));
        let records = em_obs::trace::drain();
        assert!(
            records.iter().any(|r| {
                r.name == "cost.row_skipped"
                    && r.level == em_obs::trace::Level::Warn
                    && r.fields
                        .iter()
                        .any(|(k, v)| *k == "model"
                            && *v == em_obs::trace::FieldValue::Str("BERT".into()))
            }),
            "skip must be announced as a warn event"
        );
    }
}
