//! # em-cost — deployment-cost model and quality/cost trade-off
//!
//! Reproduces the paper's Section 4.2.2 analysis:
//!
//! * the December-2024 price book (OpenAI Batch API, together.ai, AWS
//!   p4d.24xlarge) ([`pricing`]);
//! * the cost-per-1K-tokens formula for self-hosted models and the
//!   cheapest-deployment selection (Table 6) ([`estimate`]);
//! * the quality-vs-cost and quality-vs-size trade-off analysis behind
//!   Figures 3 and 4, including Pareto frontiers and the budget-driven
//!   recommendations ([`tradeoff`]).

pub mod estimate;
pub mod pricing;
pub mod tradeoff;

pub use estimate::{
    api_bill, api_bill_for, api_cost, billed_prompt_tokens, measured_throughput,
    open_weight_cost, self_host_cost_per_1k, table6, ApiBill, CostEntry,
};
pub use pricing::{DeploymentScenario, P4D_24XLARGE_HOURLY_USD};
pub use tradeoff::{
    ascii_scatter, best_balance, best_within_budget, pareto_frontier, TradeoffPoint,
};
