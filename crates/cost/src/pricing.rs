//! Price book (December 2024, as quoted in Section 4.2.2 of the paper).

/// Hourly price of a reserved AWS p4d.24xlarge instance (8×A100-40GB),
/// one-year reservation.
pub const P4D_24XLARGE_HOURLY_USD: f64 = 19.22;

/// OpenAI Batch API input-token prices per 1K tokens (entity matching is a
/// sequence-classification task, so only input cost matters).
pub mod openai {
    /// GPT-4 batch input price per 1K tokens.
    pub const GPT4_PER_1K: f64 = 0.015;
    /// GPT-3.5-Turbo-0125 batch input price per 1K tokens.
    pub const GPT35_TURBO_PER_1K: f64 = 0.000_75;
    /// GPT-4o-Mini batch input price per 1K tokens.
    pub const GPT4O_MINI_PER_1K: f64 = 0.000_075;
}

/// together.ai hosted-inference prices per 1K tokens for the open-weight
/// 70B models (the paper's cheaper alternative for SOLAR and Beluga2).
pub mod together_ai {
    /// 70B-class models (SOLAR, StableBeluga2).
    pub const MODEL_70B_PER_1K: f64 = 0.000_9;
}

/// Deployment scenario behind a cost figure (Table 6's rightmost column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentScenario {
    /// OpenAI Batch API.
    OpenAiBatchApi,
    /// Hosted on together.ai.
    TogetherAi,
    /// Self-hosted, `replicas`× on a p4d.24xlarge instance.
    SelfHostedP4d {
        /// Number of model replicas on the instance.
        replicas: usize,
    },
}

impl DeploymentScenario {
    /// Label as printed in Table 6.
    pub fn label(&self) -> String {
        match self {
            DeploymentScenario::OpenAiBatchApi => "OpenAI Batch API".into(),
            DeploymentScenario::TogetherAi => "Hosting on Together.ai".into(),
            DeploymentScenario::SelfHostedP4d { replicas } => {
                format!("{replicas}x on p4d.24xlarge")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_match_the_paper_quotes() {
        assert_eq!(P4D_24XLARGE_HOURLY_USD, 19.22);
        assert_eq!(openai::GPT4_PER_1K, 0.015);
        assert_eq!(openai::GPT35_TURBO_PER_1K, 0.00075);
        assert_eq!(openai::GPT4O_MINI_PER_1K, 0.000075);
        assert_eq!(together_ai::MODEL_70B_PER_1K, 0.0009);
    }

    #[test]
    fn gpt4_is_200x_gpt4o_mini() {
        assert!((openai::GPT4_PER_1K / openai::GPT4O_MINI_PER_1K - 200.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(
            DeploymentScenario::SelfHostedP4d { replicas: 8 }.label(),
            "8x on p4d.24xlarge"
        );
        assert_eq!(
            DeploymentScenario::TogetherAi.label(),
            "Hosting on Together.ai"
        );
    }
}
