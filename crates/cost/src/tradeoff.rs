//! Quality-vs-cost and quality-vs-size trade-off analysis
//! (Figures 3 and 4, and the "Trade-off" discussion of Section 4.2.2).

/// One point of a trade-off scatter plot.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Matcher label.
    pub label: String,
    /// Horizontal coordinate (USD/1K tokens for Figure 3, parameters in
    /// millions for Figure 4).
    pub x: f64,
    /// Mean F1 score (vertical coordinate).
    pub f1: f64,
}

/// Points on the Pareto frontier: no other point has lower-or-equal `x`
/// (cost / size) *and* strictly higher F1.
pub fn pareto_frontier(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut frontier: Vec<TradeoffPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.x <= p.x && q.f1 > p.f1))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.x.total_cmp(&b.x));
    frontier
}

/// The best matcher affordable within a per-1K-token budget (the paper's
/// budget-driven recommendation: "for systems with a budget of less than
/// $0.00005 per 1K tokens ...").
pub fn best_within_budget(points: &[TradeoffPoint], budget: f64) -> Option<&TradeoffPoint> {
    points
        .iter()
        .filter(|p| p.x <= budget)
        .max_by(|a, b| a.f1.total_cmp(&b.f1))
}

/// The "balance" pick behind "AnyMatch [LLaMA3.2] strikes the best
/// balance": maximizes F1 with a small penalty per decade of cost above
/// the cheapest option (`F1 − 2·log10(cost/min_cost)`).
pub fn best_balance(points: &[TradeoffPoint]) -> Option<&TradeoffPoint> {
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    points.iter().filter(|p| p.x > 0.0).max_by(|a, b| {
        let score = |p: &TradeoffPoint| p.f1 - 2.0 * (p.x / min_x).log10();
        score(a).total_cmp(&score(b))
    })
}

/// Renders a text scatter plot (rows = F1 bands, columns = log-x bands) —
/// the harness's stand-in for Figures 3/4.
pub fn ascii_scatter(points: &[TradeoffPoint], x_label: &str) -> String {
    if points.is_empty() {
        return String::from("(no points)");
    }
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.x).fold(0.0f64, f64::max);
    let log_span = (max_x / min_x).log10().max(1e-9);
    const COLS: usize = 60;
    const ROWS: usize = 16;
    let mut grid = vec![vec![' '; COLS + 1]; ROWS + 1];
    let mut labels: Vec<String> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let cx = (((p.x / min_x).log10() / log_span) * COLS as f64).round() as usize;
        let f1_lo = 40.0;
        let f1_hi = 95.0;
        let fy =
            ((p.f1.clamp(f1_lo, f1_hi) - f1_lo) / (f1_hi - f1_lo) * ROWS as f64).round() as usize;
        let row = ROWS - fy.min(ROWS);
        let marker = char::from_digit((i % 36) as u32, 36).unwrap_or('*');
        grid[row][cx.min(COLS)] = marker;
        labels.push(format!(
            "  {marker} = {} (x={:.3e}, F1={:.1})",
            p.label, p.x, p.f1
        ));
    }
    let mut out = String::new();
    out.push_str("F1\n");
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(COLS + 1));
    out.push_str(&format!("-> {x_label} (log scale)\n"));
    for l in labels {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<TradeoffPoint> {
        vec![
            TradeoffPoint {
                label: "Ditto".into(),
                x: 0.0000031,
                f1: 72.9,
            },
            TradeoffPoint {
                label: "AnyMatch [GPT-2]".into(),
                x: 0.0000038,
                f1: 81.5,
            },
            TradeoffPoint {
                label: "AnyMatch [LLaMA3.2]".into(),
                x: 0.00001,
                f1: 87.5,
            },
            TradeoffPoint {
                label: "Unicorn".into(),
                x: 0.000012,
                f1: 81.0,
            },
            TradeoffPoint {
                label: "GPT-4o-Mini".into(),
                x: 0.000075,
                f1: 83.9,
            },
            TradeoffPoint {
                label: "GPT-3.5".into(),
                x: 0.00075,
                f1: 66.0,
            },
            TradeoffPoint {
                label: "GPT-4".into(),
                x: 0.015,
                f1: 87.4,
            },
        ]
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let f = pareto_frontier(&pts());
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        // GPT-3.5 is dominated (more expensive, lower F1 than 4o-mini);
        // GPT-4 is dominated by AnyMatch [LLaMA3.2] (cheaper, higher F1).
        assert!(!labels.contains(&"GPT-3.5"));
        assert!(!labels.contains(&"GPT-4"));
        assert!(labels.contains(&"Ditto"));
        assert!(labels.contains(&"AnyMatch [LLaMA3.2]"));
    }

    #[test]
    fn budget_recommendations_match_the_paper() {
        let p = pts();
        // Budget < $0.00005: AnyMatch family (LLaMA3.2 best).
        let pick = best_within_budget(&p, 0.00005).unwrap();
        assert_eq!(pick.label, "AnyMatch [LLaMA3.2]");
        // Budget $0.000075 admits GPT-4o-Mini, but LLaMA3.2 still wins F1.
        let pick = best_within_budget(&p, 0.000075).unwrap();
        assert_eq!(pick.label, "AnyMatch [LLaMA3.2]");
        // Tiny budget: only Ditto.
        let pick = best_within_budget(&p, 0.0000032).unwrap();
        assert_eq!(pick.label, "Ditto");
        // Impossible budget.
        assert!(best_within_budget(&p, 1e-9).is_none());
    }

    #[test]
    fn anymatch_llama_is_the_best_balance() {
        let p = pts();
        assert_eq!(best_balance(&p).unwrap().label, "AnyMatch [LLaMA3.2]");
    }

    #[test]
    fn scatter_renders_all_points() {
        let p = pts();
        let s = ascii_scatter(&p, "USD per 1K tokens");
        for point in &p {
            assert!(s.contains(point.label.as_str()));
        }
        assert!(s.contains("log scale"));
        assert_eq!(ascii_scatter(&[], "x"), "(no points)");
    }
}
