//! Assembly of the 11 benchmark datasets with the exact Table 1 statistics.

use crate::domains::{
    BeerDomain, CitationDomain, CitationStyle, Domain, MovieDomain, MusicDomain, ProductDomain,
    ProductStyle, RestaurantDomain, RestaurantStyle, Side,
};
use em_core::{spec_of, Benchmark, DatasetId, LabeledPair, Record};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Per-dataset fraction of negatives that are *near-miss* hard negatives
/// (the rest pair two unrelated entities).
fn hard_negative_ratio(id: DatasetId) -> f64 {
    match id {
        // Product datasets: blocking in the original pipelines produces
        // candidate sets dominated by same-brand near-misses.
        DatasetId::Abt | DatasetId::Wdc | DatasetId::Waam => 0.55,
        DatasetId::Amgo => 0.65,
        // Citations: clean candidate sets, few title-block near-misses.
        DatasetId::Dbac => 0.12,
        DatasetId::Dbgo => 0.35,
        // Restaurants: clean per-column values, few hard negatives.
        DatasetId::Foza => 0.2,
        DatasetId::Zoye => 0.3,
        DatasetId::Beer => 0.5,
        // Music: heavy remaster/cover traps.
        DatasetId::Itam => 0.8,
        DatasetId::Roim => 0.4,
    }
}

/// Constructs the domain generator for one dataset. Each dataset gets a
/// distinct vocabulary seed so entity pools never collide across datasets
/// (audited by [`crate::leakage`]).
pub fn domain_for(id: DatasetId, seed: u64) -> Box<dyn Domain> {
    let s = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(id.code().bytes().map(u64::from).sum::<u64>() * 0x1_0001);
    match id {
        DatasetId::Abt => Box::new(ProductDomain::new(ProductStyle::Abt, s)),
        DatasetId::Wdc => Box::new(ProductDomain::new(ProductStyle::Wdc, s)),
        DatasetId::Amgo => Box::new(ProductDomain::new(ProductStyle::Amgo, s)),
        DatasetId::Waam => Box::new(ProductDomain::new(ProductStyle::Waam, s)),
        DatasetId::Dbac => Box::new(CitationDomain::new(CitationStyle::Clean, s)),
        DatasetId::Dbgo => Box::new(CitationDomain::new(CitationStyle::Scholar, s)),
        DatasetId::Foza => Box::new(RestaurantDomain::new(RestaurantStyle::Foza, s)),
        DatasetId::Zoye => Box::new(RestaurantDomain::new(RestaurantStyle::Zoye, s)),
        DatasetId::Beer => Box::new(BeerDomain::new(s)),
        DatasetId::Itam => Box::new(MusicDomain::new(s)),
        DatasetId::Roim => Box::new(MovieDomain::new(s)),
    }
}

/// Generates one benchmark dataset with exactly the Table 1 pair counts.
pub fn generate(id: DatasetId, seed: u64) -> Benchmark {
    let spec = spec_of(id);
    let mut domain = domain_for(id, seed);
    let mut rng = StdRng::seed_from_u64(
        seed ^ id
            .code()
            .bytes()
            .fold(7u64, |h, b| h.wrapping_mul(31) + b as u64),
    );
    let hard_ratio = hard_negative_ratio(id);
    let mut pairs = Vec::with_capacity(spec.total());
    let mut next_left_id = 0u64;
    let mut next_right_id = 1_000_000u64;
    let fresh_ids = |l: &mut u64, r: &mut u64| {
        let ids = (*l, *r);
        *l += 1;
        *r += 1;
        ids
    };

    for _ in 0..spec.positives {
        let entity = domain.entity();
        let left_vals = domain.present(&entity, Side::Left);
        let right_vals = domain.present(&entity, Side::Right);
        let (lid, rid) = fresh_ids(&mut next_left_id, &mut next_right_id);
        pairs.push(LabeledPair::new(
            Record::new(lid, left_vals),
            Record::new(rid, right_vals),
            true,
        ));
    }
    for _ in 0..spec.negatives {
        let entity = domain.entity();
        let other = if rng.gen_bool(hard_ratio) {
            domain.near_miss(&entity)
        } else {
            domain.entity()
        };
        let left_vals = domain.present(&entity, Side::Left);
        let right_vals = domain.present(&other, Side::Right);
        let (lid, rid) = fresh_ids(&mut next_left_id, &mut next_right_id);
        pairs.push(LabeledPair::new(
            Record::new(lid, left_vals),
            Record::new(rid, right_vals),
            false,
        ));
    }
    pairs.shuffle(&mut rng);
    Benchmark {
        id,
        attr_types: domain.attr_types(),
        pairs,
    }
}

/// Generates all 11 benchmarks (Table 1 order).
pub fn generate_suite(seed: u64) -> Vec<Benchmark> {
    DatasetId::ALL
        .iter()
        .map(|&id| generate(id, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Serializer;
    use em_text::ratcliff_obershelp;

    #[test]
    fn generated_counts_match_table1() {
        for &id in &[
            DatasetId::Beer,
            DatasetId::Zoye,
            DatasetId::Roim,
            DatasetId::Itam,
        ] {
            let b = generate(id, 0);
            let spec = spec_of(id);
            assert_eq!(b.positives(), spec.positives, "{id}");
            assert_eq!(b.negatives(), spec.negatives, "{id}");
            assert_eq!(b.arity(), spec.attrs, "{id}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetId::Beer, 3);
        let b = generate(DatasetId::Beer, 3);
        assert_eq!(a.pairs.len(), b.pairs.len());
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetId::Beer, 1);
        let b = generate(DatasetId::Beer, 2);
        assert!(a.pairs.iter().zip(&b.pairs).any(|(x, y)| x != y));
    }

    #[test]
    fn record_ids_are_unique_within_relations() {
        let b = generate(DatasetId::Foza, 0);
        let mut left: Vec<u64> = b.pairs.iter().map(|p| p.pair.left.id).collect();
        let mut right: Vec<u64> = b.pairs.iter().map(|p| p.pair.right.id).collect();
        left.sort_unstable();
        left.dedup();
        right.sort_unstable();
        right.dedup();
        assert_eq!(left.len(), b.pairs.len());
        assert_eq!(right.len(), b.pairs.len());
    }

    #[test]
    fn positives_are_more_similar_than_negatives() {
        // Sanity on the generative structure: mean whole-string similarity
        // of matches must clearly exceed that of non-matches.
        for &id in &[DatasetId::Beer, DatasetId::Roim, DatasetId::Zoye] {
            let b = generate(id, 0);
            let ser = Serializer::identity(b.arity());
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for p in b.pairs.iter().take(300) {
                let sp = ser.pair(&p.pair);
                let sim = ratcliff_obershelp(&sp.left.to_lowercase(), &sp.right.to_lowercase());
                if p.label {
                    pos.push(sim);
                } else {
                    neg.push(sim);
                }
            }
            let mp: f64 = pos.iter().sum::<f64>() / pos.len().max(1) as f64;
            let mn: f64 = neg.iter().sum::<f64>() / neg.len().max(1) as f64;
            assert!(mp > mn + 0.1, "{id}: pos {mp:.3} vs neg {mn:.3}");
        }
    }

    #[test]
    fn full_suite_has_eleven_datasets() {
        // Only generate the smaller datasets fully; spot-check the suite
        // order using BEER (cheapest full-suite call is still heavy, so this
        // test exercises generate() per id instead).
        let ids: Vec<DatasetId> = DatasetId::ALL.to_vec();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn labels_are_shuffled_not_blocked() {
        let b = generate(DatasetId::Roim, 0);
        // The first spec.positives pairs must not all be positive after the
        // shuffle.
        let first: Vec<bool> = b.pairs.iter().take(50).map(|p| p.label).collect();
        assert!(first.iter().any(|&l| l));
        assert!(first.iter().any(|&l| !l));
    }
}
