//! Pretraining corpus for the frozen LLM capability tiers.
//!
//! Real commercial LLMs saw web-scale text including product catalogs,
//! bibliographies, and reviews. The stand-in corpus spans several *generic*
//! synthetic domains built from entity pools disjoint from the 11
//! benchmarks (fresh lexicon seeds), so tier pretraining simulates broad
//! prior exposure without leaking benchmark tuples. Product-style entries
//! with unit fragments and model codes deliberately resemble the
//! domain-specific language of WDC/WAAM — the mechanism behind the paper's
//! Finding 4 (GPT-series models handle such language well).

use crate::domains::{
    BeerDomain, CitationDomain, CitationStyle, Domain, MovieDomain, MusicDomain, ProductDomain,
    ProductStyle, RestaurantDomain, RestaurantStyle, Side,
};
use em_core::{Record, RecordPair, SerializedPair, Serializer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Corpus-generation seed offset: far away from any benchmark seed so the
/// corpus entity pools are disjoint from every benchmark's pools.
const CORPUS_SEED_SALT: u64 = 0xC0FF_EE00_DEAD_BEEF;

/// Generates a labelled pair corpus of `n` examples across generic domains.
///
/// Roughly half the examples are matches. Serialization uses the identity
/// column order (pretraining text does not carry the benchmark's
/// seed-shuffle protocol).
pub fn pretrain_corpus(n: usize, seed: u64) -> Vec<(SerializedPair, bool)> {
    let s = seed ^ CORPUS_SEED_SALT;
    let mut domains: Vec<Box<dyn Domain>> = vec![
        Box::new(ProductDomain::new(ProductStyle::Wdc, s.wrapping_add(1))),
        Box::new(ProductDomain::new(ProductStyle::Abt, s.wrapping_add(2))),
        Box::new(ProductDomain::new(ProductStyle::Waam, s.wrapping_add(3))),
        Box::new(ProductDomain::new(ProductStyle::Amgo, s.wrapping_add(4))),
        Box::new(CitationDomain::new(CitationStyle::Clean, s.wrapping_add(5))),
        Box::new(CitationDomain::new(
            CitationStyle::Scholar,
            s.wrapping_add(6),
        )),
        Box::new(RestaurantDomain::new(
            RestaurantStyle::Foza,
            s.wrapping_add(7),
        )),
        Box::new(RestaurantDomain::new(
            RestaurantStyle::Zoye,
            s.wrapping_add(8),
        )),
        Box::new(BeerDomain::new(s.wrapping_add(9))),
        Box::new(MusicDomain::new(s.wrapping_add(10))),
        Box::new(MovieDomain::new(s.wrapping_add(11))),
    ];
    let mut rng = StdRng::seed_from_u64(s);
    let mut out = Vec::with_capacity(n);
    let n_domains = domains.len();
    for i in 0..n {
        let d = &mut domains[rng.gen_range(0..n_domains)];
        let ser = Serializer::identity(d.attr_types().len());
        let entity = d.entity();
        let label = i % 2 == 0;
        let other = if label {
            entity.clone()
        } else if rng.gen_bool(0.5) {
            d.near_miss(&entity)
        } else {
            d.entity()
        };
        let left = d.present(&entity, Side::Left);
        let right = d.present(&other, Side::Right);
        let pair = RecordPair::new(Record::new(0, left), Record::new(1, right));
        out.push((ser.pair(&pair), label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_balance() {
        let c = pretrain_corpus(400, 0);
        assert_eq!(c.len(), 400);
        let pos = c.iter().filter(|(_, y)| *y).count();
        assert_eq!(pos, 200);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = pretrain_corpus(50, 3);
        let b = pretrain_corpus(50, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_spans_multiple_domains() {
        // Different entries should have visibly different shapes (attr
        // counts vary 3..8, so serialized comma counts vary).
        let c = pretrain_corpus(100, 1);
        let comma_counts: std::collections::HashSet<usize> = c
            .iter()
            .map(|(p, _)| p.left.matches(", ").count())
            .collect();
        assert!(comma_counts.len() >= 3, "domains: {comma_counts:?}");
    }

    #[test]
    fn matches_share_content() {
        let c = pretrain_corpus(200, 2);
        let mut pos_sim = 0.0;
        let mut neg_sim = 0.0;
        let (mut np, mut nn) = (0, 0);
        for (p, y) in &c {
            let s = em_text::ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase());
            if *y {
                pos_sim += s;
                np += 1;
            } else {
                neg_sim += s;
                nn += 1;
            }
        }
        assert!(pos_sim / np as f64 > neg_sim / nn as f64 + 0.1);
    }
}
