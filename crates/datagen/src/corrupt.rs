//! Value corruptions simulating real-world data dirtiness: typos, token
//! drops/reorders, abbreviations, casing noise, and numeric jitter. Each is
//! deterministic under the caller's RNG.

use rand::rngs::StdRng;
use rand::Rng;

/// Introduces a single character-level typo (swap, delete, or duplicate).
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let mut out = chars.clone();
    let i = rng.gen_range(0..chars.len() - 1);
    match rng.gen_range(0..3u8) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    out.into_iter().collect()
}

/// Drops one random word token (keeps at least one).
pub fn drop_token(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .filter_map(|(j, t)| (j != i).then_some(*t))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Fully shuffles the word tokens (token-soup titles: same content,
/// different order — sinks order-sensitive whole-string similarity while
/// preserving token overlap).
pub fn shuffle_tokens(s: &str, rng: &mut StdRng) -> String {
    use rand::seq::SliceRandom;
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    tokens.shuffle(rng);
    tokens.join(" ")
}

/// Swaps two adjacent word tokens.
pub fn reorder_tokens(s: &str, rng: &mut StdRng) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..tokens.len() - 1);
    tokens.swap(i, i + 1);
    tokens.join(" ")
}

/// Abbreviates one word to its first 1–4 characters (optionally with a
/// trailing period), e.g. "boulevard" → "blvd." style truncation.
pub fn abbreviate(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.is_empty() {
        return s.to_owned();
    }
    let candidates: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter_map(|(i, t)| (t.chars().count() > 4).then_some(i))
        .collect();
    // Early return before touching the RNG: `gen_range` panics on an
    // empty range, and the clamped-index workaround this replaced both
    // obscured that and biased the draw.
    if candidates.is_empty() {
        return s.to_owned();
    }
    let i = candidates[rng.gen_range(0..candidates.len())];
    let keep = rng.gen_range(1..=4usize);
    let mut short: String = tokens[i].chars().take(keep).collect();
    if rng.gen_bool(0.5) {
        short.push('.');
    }
    let mut out: Vec<String> = tokens.iter().map(|t| (*t).to_string()).collect();
    out[i] = short;
    out.join(" ")
}

/// Random casing perturbation: all-upper, all-lower, or title case.
pub fn recase(s: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u8) {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        _ => s
            .split_whitespace()
            .map(crate::lexicon::capitalize)
            .collect::<Vec<_>>()
            .join(" "),
    }
}

/// Multiplicative jitter of a numeric value within ±`pct` percent.
pub fn jitter(value: f64, pct: f64, rng: &mut StdRng) -> f64 {
    let factor = 1.0 + rng.gen_range(-pct..=pct) / 100.0;
    (value * factor * 100.0).round() / 100.0
}

/// Applies `n` corruption passes chosen from the text corruptions above.
pub fn corrupt_text(s: &str, n: usize, rng: &mut StdRng) -> String {
    let mut out = s.to_owned();
    for _ in 0..n {
        out = match rng.gen_range(0..5u8) {
            0 => typo(&out, rng),
            1 => drop_token(&out, rng),
            2 => reorder_tokens(&out, rng),
            3 => abbreviate(&out, rng),
            _ => recase(&out, rng),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn typo_changes_longer_strings() {
        let mut r = rng(0);
        let changed = (0..20)
            .filter(|_| typo("hello world", &mut r) != "hello world")
            .count();
        assert!(changed >= 15);
    }

    #[test]
    fn typo_leaves_tiny_strings_alone() {
        let mut r = rng(1);
        assert_eq!(typo("a", &mut r), "a");
        assert_eq!(typo("", &mut r), "");
    }

    #[test]
    fn drop_token_removes_exactly_one() {
        let mut r = rng(2);
        let out = drop_token("alpha beta gamma", &mut r);
        assert_eq!(out.split_whitespace().count(), 2);
        assert_eq!(drop_token("single", &mut r), "single");
    }

    #[test]
    fn reorder_preserves_multiset() {
        let mut r = rng(3);
        let out = reorder_tokens("a b c d", &mut r);
        let mut toks: Vec<&str> = out.split_whitespace().collect();
        toks.sort_unstable();
        assert_eq!(toks, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn abbreviate_shortens_a_long_word() {
        let mut r = rng(4);
        let out = abbreviate("boulevard junction", &mut r);
        assert!(out.len() < "boulevard junction".len());
    }

    #[test]
    fn abbreviate_skips_short_only_strings() {
        let mut r = rng(5);
        assert_eq!(abbreviate("ab cd", &mut r), "ab cd");
    }

    #[test]
    fn every_operator_pins_empty_and_one_char_inputs() {
        // Degenerate inputs must come back unchanged (and, above all, not
        // panic inside `gen_range` on an empty bound): the perturbation
        // layer feeds arbitrary attribute values through these operators.
        for input in ["", "x", " "] {
            let mut r = rng(41);
            assert_eq!(typo(input, &mut r), input);
            assert_eq!(drop_token(input, &mut r), input);
            assert_eq!(reorder_tokens(input, &mut r), input);
            assert_eq!(abbreviate(input, &mut r), input);
            // shuffle/recase may normalize whitespace but must not panic
            // and must preserve (case-folded) content.
            let shuffled = shuffle_tokens(input, &mut r);
            assert_eq!(shuffled.replace(' ', ""), input.replace(' ', ""));
            let recased = recase(input, &mut r);
            assert_eq!(
                recased.to_lowercase().replace(' ', ""),
                input.to_lowercase().replace(' ', "")
            );
        }
    }

    #[test]
    fn abbreviate_handles_single_long_token() {
        // Exactly one candidate: the index draw is over 0..1 and must be
        // in bounds (this was the fragile `.max(1)`-guard path).
        let mut r = rng(42);
        let out = abbreviate("boulevard", &mut r);
        assert!(out.len() < "boulevard".len(), "got {out:?}");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = rng(6);
        for _ in 0..50 {
            let v = jitter(100.0, 5.0, &mut r);
            assert!((94.9..=105.1).contains(&v), "{v}");
        }
    }

    #[test]
    fn corrupt_text_zero_passes_is_identity() {
        let mut r = rng(7);
        assert_eq!(corrupt_text("same text", 0, &mut r), "same text");
    }

    proptest! {
        #[test]
        fn corruptions_never_panic(s in ".{0,40}", seed in 0u64..50, n in 0usize..4) {
            let mut r = rng(seed);
            let _ = corrupt_text(&s, n, &mut r);
            let _ = typo(&s, &mut r);
            let _ = drop_token(&s, &mut r);
            let _ = reorder_tokens(&s, &mut r);
            let _ = abbreviate(&s, &mut r);
            let _ = recase(&s, &mut r);
        }

        #[test]
        fn recase_preserves_alphanumeric_content(s in "[a-zA-Z ]{0,30}", seed in 0u64..20) {
            let mut r = rng(seed);
            let out = recase(&s, &mut r);
            prop_assert_eq!(
                s.to_lowercase().replace(' ', ""),
                out.to_lowercase().replace(' ', "")
            );
        }
    }
}
