//! Per-domain entity generators.
//!
//! Every benchmark dataset is backed by a [`Domain`]: a generator of
//! canonical entities, *near-miss* twins (hard negatives sharing most
//! surface tokens), and noisy *presentations* (the two relations' views of
//! an entity). The noise profile per dataset is chosen to reproduce the
//! difficulty structure visible in the paper's Table 3:
//!
//! * citations (DBAC clean, DBGO abbreviated) are well-structured — string
//!   similarity alone separates most pairs;
//! * restaurants (FOZA, ZOYE) are clean per column but the two relations
//!   use systematically different formats, which sinks whole-string
//!   similarity while column-wise methods (ZeroER) excel;
//! * web products / software / electronics (ABT, WDC, AMGO, WAAM) carry
//!   long free-text descriptions, token-soup titles and model numbers —
//!   hard for parameter-free methods, domain-specific language rewards the
//!   strongest pretrained tiers (Finding 4);
//! * music (ITAM) has many overlapping-value columns that break ZeroER's
//!   distributional assumption.

use crate::corrupt::{
    abbreviate, corrupt_text, drop_token, jitter, recase, reorder_tokens, shuffle_tokens, typo,
};
use crate::lexicon::{pools, Lexicon};
use em_core::{AttrType, AttrValue};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Which relation a presentation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left input relation.
    Left,
    /// The right input relation.
    Right,
}

/// A domain-specific entity generator.
pub trait Domain {
    /// Column types of this domain's aligned schema.
    fn attr_types(&self) -> Vec<AttrType>;
    /// Samples a fresh canonical entity.
    fn entity(&mut self) -> Vec<AttrValue>;
    /// Derives a near-miss entity: a *different* real-world entity sharing
    /// most of the surface form (same brand, similar title, ...).
    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue>;
    /// Renders a noisy presentation of the entity for one relation.
    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue>;
}

fn text(s: impl Into<String>) -> AttrValue {
    AttrValue::Text(s.into())
}

fn take_text(v: &AttrValue) -> String {
    match v {
        AttrValue::Text(s) => s.clone(),
        AttrValue::Number(n) => AttrValue::Number(*n).render(),
        AttrValue::Missing => String::new(),
    }
}

/// Noise knobs shared by the concrete domains.
#[derive(Debug, Clone, Copy)]
pub struct NoiseProfile {
    /// Corruption passes applied to each textual value of a presentation.
    pub corruption_passes: usize,
    /// Probability that a non-key attribute is missing in a presentation.
    pub missing_rate: f64,
    /// Probability of numeric jitter on numeric attributes (matched
    /// presentations keep values close; jitter stays within ±3%).
    pub numeric_jitter: f64,
}

fn maybe_missing(v: AttrValue, rate: f64, rng: &mut StdRng) -> AttrValue {
    if rng.gen_bool(rate) {
        AttrValue::Missing
    } else {
        v
    }
}

// ---------------------------------------------------------------------------
// Products (ABT, WDC, AMGO, WAAM)
// ---------------------------------------------------------------------------

/// Style of the product-family datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductStyle {
    /// Abt-Buy: name, long description, price.
    Abt,
    /// WDC: title, category, brand (token-soup titles).
    Wdc,
    /// Amazon-Google software: title, manufacturer, price.
    Amgo,
    /// Walmart-Amazon electronics: title, category, brand, model, price.
    Waam,
}

/// Product-family domain generator.
pub struct ProductDomain {
    style: ProductStyle,
    lex: Lexicon,
    rng: StdRng,
    brands: Vec<String>,
    profile: NoiseProfile,
}

impl ProductDomain {
    /// New product domain with its own entity vocabulary.
    pub fn new(style: ProductStyle, seed: u64) -> Self {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x70726f64));
        let brands = lex.name_pool(30);
        let profile = match style {
            // Free-text-heavy datasets are dirtier.
            ProductStyle::Abt => NoiseProfile {
                corruption_passes: 2,
                missing_rate: 0.15,
                numeric_jitter: 0.5,
            },
            ProductStyle::Wdc => NoiseProfile {
                corruption_passes: 1,
                missing_rate: 0.2,
                numeric_jitter: 0.3,
            },
            ProductStyle::Amgo => NoiseProfile {
                corruption_passes: 2,
                missing_rate: 0.3,
                numeric_jitter: 0.6,
            },
            ProductStyle::Waam => NoiseProfile {
                corruption_passes: 2,
                missing_rate: 0.15,
                numeric_jitter: 0.4,
            },
        };
        ProductDomain {
            style,
            rng: StdRng::seed_from_u64(seed ^ 0x70616972),
            lex,
            brands,
            profile,
        }
    }

    fn base_title(&mut self) -> (String, String, String) {
        let brand = self.brands[self.rng.gen_range(0..self.brands.len())].clone();
        let adj = pools::ADJECTIVES[self.rng.gen_range(0..pools::ADJECTIVES.len())];
        let noun = match self.style {
            ProductStyle::Amgo => {
                pools::SOFTWARE_NOUNS[self.rng.gen_range(0..pools::SOFTWARE_NOUNS.len())]
            }
            _ => pools::PRODUCT_NOUNS[self.rng.gen_range(0..pools::PRODUCT_NOUNS.len())],
        };
        let model = self.lex.model_code();
        let title = format!("{brand} {adj} {noun} {model}");
        (title, brand, model)
    }

    fn description(&mut self, title: &str) -> String {
        // Long, unconventional free text: feature fragments and units.
        let mut parts = vec![title.to_lowercase()];
        let n = self.rng.gen_range(3..7);
        for _ in 0..n {
            let frag = match self.rng.gen_range(0..5u8) {
                0 => format!("{}w output", self.rng.gen_range(5..500)),
                1 => format!("{}gb storage", 2u32 << self.rng.gen_range(0..6)),
                2 => format!(
                    "{} {}",
                    pools::ADJECTIVES[self.rng.gen_range(0..pools::ADJECTIVES.len())],
                    self.lex.word()
                ),
                3 => format!("{}in display", self.rng.gen_range(5..32)),
                _ => format!("model {}", self.lex.model_code().to_lowercase()),
            };
            parts.push(frag);
        }
        parts.join(" ")
    }
}

impl Domain for ProductDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        match self.style {
            ProductStyle::Abt => {
                vec![AttrType::ShortText, AttrType::LongText, AttrType::Numeric]
            }
            ProductStyle::Wdc => {
                vec![
                    AttrType::ShortText,
                    AttrType::ShortText,
                    AttrType::ShortText,
                ]
            }
            ProductStyle::Amgo => {
                vec![AttrType::ShortText, AttrType::ShortText, AttrType::Numeric]
            }
            ProductStyle::Waam => vec![
                AttrType::ShortText,
                AttrType::ShortText,
                AttrType::ShortText,
                AttrType::ShortText,
                AttrType::Numeric,
            ],
        }
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let (title, brand, model) = self.base_title();
        let price = (self.rng.gen_range(900..99900) as f64) / 100.0;
        match self.style {
            ProductStyle::Abt => {
                let desc = self.description(&title);
                vec![text(title), text(desc), AttrValue::Number(price)]
            }
            ProductStyle::Wdc => {
                let cat = pools::CATEGORIES[self.rng.gen_range(0..pools::CATEGORIES.len())];
                vec![text(title), text(cat), text(brand)]
            }
            ProductStyle::Amgo => {
                let ver = format!(
                    "v{}.{}",
                    self.rng.gen_range(1..12),
                    self.rng.gen_range(0..10)
                );
                vec![
                    text(format!("{title} {ver}")),
                    text(brand),
                    AttrValue::Number(price),
                ]
            }
            ProductStyle::Waam => {
                let cat = pools::CATEGORIES[self.rng.gen_range(0..pools::CATEGORIES.len())];
                vec![
                    text(title),
                    text(cat),
                    text(brand),
                    text(model),
                    AttrValue::Number(price),
                ]
            }
        }
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Same brand and product line, different model / version — the
        // classic hard negative in product matching.
        let mut out = e.to_vec();
        let new_model = self.lex.model_code();
        let title = take_text(&e[0]);
        let mut tokens: Vec<String> = title.split_whitespace().map(String::from).collect();
        if let Some(last) = tokens.last_mut() {
            *last = match self.style {
                ProductStyle::Amgo => {
                    format!(
                        "v{}.{}",
                        self.rng.gen_range(1..12),
                        self.rng.gen_range(0..10)
                    )
                }
                _ => new_model.clone(),
            };
        }
        out[0] = text(tokens.join(" "));
        match self.style {
            ProductStyle::Abt => {
                let new_title = take_text(&out[0]);
                out[1] = text(self.description(&new_title));
                out[2] = AttrValue::Number(jitter(
                    e[2].as_number().unwrap_or(50.0),
                    30.0,
                    &mut self.rng,
                ));
            }
            ProductStyle::Waam => {
                out[3] = text(new_model);
                out[4] = AttrValue::Number(jitter(
                    e[4].as_number().unwrap_or(50.0),
                    30.0,
                    &mut self.rng,
                ));
            }
            ProductStyle::Amgo => {
                out[2] = AttrValue::Number(jitter(
                    e[2].as_number().unwrap_or(50.0),
                    30.0,
                    &mut self.rng,
                ));
            }
            ProductStyle::Wdc => {}
        }
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        let profile = self.profile;
        let style = self.style;
        let rng = &mut self.rng;
        e.iter()
            .enumerate()
            .map(|(i, v)| match v {
                AttrValue::Text(s) => {
                    // The right relation (vendor B) rewrites more
                    // aggressively — mirrors Abt vs Buy catalog styles.
                    let passes = if side == Side::Right {
                        profile.corruption_passes
                    } else {
                        profile.corruption_passes.saturating_sub(1)
                    };
                    let mut noisy = corrupt_text(s, passes, rng);
                    // Token-soup titles: vendor B lists the same tokens in
                    // its own order (kills order-sensitive whole-string
                    // similarity, keeps token overlap).
                    if i == 0
                        && side == Side::Right
                        && matches!(style, ProductStyle::Wdc | ProductStyle::Waam)
                    {
                        noisy = shuffle_tokens(&noisy, rng);
                    }
                    // Vendors categorize the same product differently.
                    if i == 1
                        && side == Side::Right
                        && matches!(style, ProductStyle::Wdc | ProductStyle::Waam)
                        && rng.gen_bool(0.4)
                    {
                        noisy =
                            pools::CATEGORIES[rng.gen_range(0..pools::CATEGORIES.len())].to_owned();
                    }
                    // Key attribute (index 0) is never missing.
                    if i == 0 {
                        text(noisy)
                    } else {
                        maybe_missing(text(noisy), profile.missing_rate, rng)
                    }
                }
                AttrValue::Number(n) => {
                    let val = if rng.gen_bool(profile.numeric_jitter) {
                        AttrValue::Number(jitter(*n, 3.0, rng))
                    } else {
                        AttrValue::Number(*n)
                    };
                    maybe_missing(val, profile.missing_rate, rng)
                }
                AttrValue::Missing => AttrValue::Missing,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Citations (DBAC, DBGO)
// ---------------------------------------------------------------------------

/// Citation dataset flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CitationStyle {
    /// DBLP-ACM: clean, consistent metadata.
    Clean,
    /// DBLP-Google: abbreviations, missing venues, noisy author lists.
    Scholar,
}

/// Citation domain: title, authors, venue, year.
pub struct CitationDomain {
    style: CitationStyle,
    lex: Lexicon,
    rng: StdRng,
    authors: Vec<String>,
}

impl CitationDomain {
    /// New citation domain.
    pub fn new(style: CitationStyle, seed: u64) -> Self {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x63697465));
        let authors = lex.name_pool(120);
        CitationDomain {
            style,
            rng: StdRng::seed_from_u64(seed ^ 0x70757273),
            lex,
            authors,
        }
    }

    fn author_list(&mut self) -> String {
        let n = self.rng.gen_range(1..=4);
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            let last = &self.authors[self.rng.gen_range(0..self.authors.len())];
            let first = &self.authors[self.rng.gen_range(0..self.authors.len())];
            names.push(format!("{first} {last}"));
        }
        names.join(", ")
    }
}

impl Domain for CitationDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        vec![
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::Numeric,
        ]
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let prefix = pools::CS_PREFIXES[self.rng.gen_range(0..pools::CS_PREFIXES.len())];
        let topic = pools::CS_TOPICS[self.rng.gen_range(0..pools::CS_TOPICS.len())];
        let q1 = self.lex.word();
        let q2 = self.lex.word();
        let title = format!("{prefix} {topic} with {q1} {q2}");
        let authors = self.author_list();
        let venue = pools::VENUES[self.rng.gen_range(0..pools::VENUES.len())];
        let year = self.rng.gen_range(1995..2024) as f64;
        vec![
            text(title),
            text(authors),
            text(venue),
            AttrValue::Number(year),
        ]
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Same topic line, different qualifier and year — e.g. the
        // conference and extended journal version trap, but still a
        // different paper.
        let mut out = e.to_vec();
        let title = take_text(&e[0]);
        let mut tokens: Vec<&str> = title.split_whitespace().collect();
        let q1 = self.lex.word();
        let q2 = self.lex.word();
        if tokens.len() >= 3 {
            tokens.pop();
            tokens.pop();
            let rebuilt = format!("{} {} {}", tokens.join(" "), q1, q2);
            out[0] = text(rebuilt);
        }
        out[1] = text(self.author_list());
        out[3] = AttrValue::Number(self.rng.gen_range(1995..2024) as f64);
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        let mut out = Vec::with_capacity(e.len());
        // Title: essentially clean (one light corruption in Scholar style).
        let title = take_text(&e[0]);
        let title = match self.style {
            CitationStyle::Clean => title,
            CitationStyle::Scholar => {
                if side == Side::Right && self.rng.gen_bool(0.4) {
                    typo(&title, &mut self.rng)
                } else {
                    title
                }
            }
        };
        out.push(text(title));
        // Authors: Scholar abbreviates and drops.
        let authors = take_text(&e[1]);
        let authors = match self.style {
            CitationStyle::Clean => authors,
            CitationStyle::Scholar => {
                let mut a = authors;
                if side == Side::Right {
                    a = abbreviate(&a, &mut self.rng);
                    if self.rng.gen_bool(0.3) {
                        a = drop_token(&a, &mut self.rng);
                    }
                }
                a
            }
        };
        out.push(text(authors));
        // Venue: Scholar frequently loses it.
        let venue = take_text(&e[2]);
        let missing_venue = match self.style {
            CitationStyle::Clean => 0.02,
            CitationStyle::Scholar => 0.35,
        };
        out.push(maybe_missing(text(venue), missing_venue, &mut self.rng));
        // Year: clean (occasionally missing in Scholar).
        let year = e[3].clone();
        let missing_year = match self.style {
            CitationStyle::Clean => 0.0,
            CitationStyle::Scholar => 0.15,
        };
        out.push(maybe_missing(year, missing_year, &mut self.rng));
        out
    }
}

// ---------------------------------------------------------------------------
// Restaurants (FOZA, ZOYE)
// ---------------------------------------------------------------------------

/// Restaurant dataset flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestaurantStyle {
    /// Fodors-Zagats: 6 attributes, strong per-relation format shift.
    Foza,
    /// Zomato-Yelp: 7 attributes including votes/rating/cost.
    Zoye,
}

/// Restaurant domain with systematic per-relation formatting differences:
/// individual columns are clean, but phone formats, address abbreviations,
/// and casing differ between the two relations — whole-string similarity
/// drops below threshold while per-column similarity stays high.
pub struct RestaurantDomain {
    style: RestaurantStyle,
    lex: Lexicon,
    rng: StdRng,
}

impl RestaurantDomain {
    /// New restaurant domain.
    pub fn new(style: RestaurantStyle, seed: u64) -> Self {
        RestaurantDomain {
            style,
            lex: Lexicon::new(StdRng::seed_from_u64(seed ^ 0x72657374)),
            rng: StdRng::seed_from_u64(seed ^ 0x666f6f64),
        }
    }
}

impl Domain for RestaurantDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        match self.style {
            RestaurantStyle::Foza => vec![
                AttrType::ShortText, // name
                AttrType::ShortText, // address
                AttrType::ShortText, // city
                AttrType::ShortText, // phone
                AttrType::ShortText, // cuisine
                AttrType::ShortText, // class
            ],
            RestaurantStyle::Zoye => vec![
                AttrType::ShortText, // name
                AttrType::Numeric,   // votes
                AttrType::Numeric,   // rating
                AttrType::ShortText, // phone
                AttrType::ShortText, // address
                AttrType::ShortText, // cuisine
                AttrType::Numeric,   // cost
            ],
        }
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let name = format!("{} {}", self.lex.name(), self.lex.name());
        let number = self.rng.gen_range(1..9999);
        let street = self.lex.word();
        let suffix = pools::STREETS[self.rng.gen_range(0..pools::STREETS.len())];
        let address = format!("{number} {street} {suffix}");
        let city = pools::CITIES[self.rng.gen_range(0..pools::CITIES.len())];
        let (a, b, c) = self.lex.phone();
        let phone = format!("{a}-{b}-{c}");
        let cuisine = pools::CUISINES[self.rng.gen_range(0..pools::CUISINES.len())];
        match self.style {
            RestaurantStyle::Foza => {
                let class = format!("class {}", self.rng.gen_range(1..30));
                vec![
                    text(name),
                    text(address),
                    text(city),
                    text(phone),
                    text(cuisine),
                    text(class),
                ]
            }
            RestaurantStyle::Zoye => {
                let votes = self.rng.gen_range(5..3000) as f64;
                let rating = (self.rng.gen_range(20..50) as f64) / 10.0;
                let cost = self.rng.gen_range(10..120) as f64;
                vec![
                    text(name),
                    AttrValue::Number(votes),
                    AttrValue::Number(rating),
                    text(phone),
                    text(address),
                    text(cuisine),
                    AttrValue::Number(cost),
                ]
            }
        }
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Different branch of a similarly named restaurant: shares the name
        // stem and city, different address and phone.
        let mut out = e.to_vec();
        let name = take_text(&e[0]);
        let stem = name.split_whitespace().next().unwrap_or("x").to_owned();
        out[0] = text(format!("{stem} {}", self.lex.name()));
        let number = self.rng.gen_range(1..9999);
        let street = self.lex.word();
        let suffix = pools::STREETS[self.rng.gen_range(0..pools::STREETS.len())];
        let (a, b, c) = self.lex.phone();
        match self.style {
            RestaurantStyle::Foza => {
                out[1] = text(format!("{number} {street} {suffix}"));
                out[3] = text(format!("{a}-{b}-{c}"));
            }
            RestaurantStyle::Zoye => {
                out[4] = text(format!("{number} {street} {suffix}"));
                out[3] = text(format!("{a}-{b}-{c}"));
            }
        }
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        // Systematic style shift between relations.
        e.iter()
            .enumerate()
            .map(|(i, v)| match v {
                AttrValue::Text(s) => {
                    let formatted = match side {
                        // Relation A: title case, full street words,
                        // dashed phones, decorated names.
                        Side::Left => {
                            let mut t = recase_title(s);
                            if i == 0 {
                                t.push_str(" Restaurant");
                            }
                            t
                        }
                        // Relation B: lower case, abbreviated, dotted
                        // phones, "(xxx) yyy-zzzz" style.
                        Side::Right => {
                            let mut t = s.to_lowercase();
                            if t.contains('-')
                                && t.chars().filter(|c| c.is_ascii_digit()).count() >= 10
                            {
                                // Phone reformat.
                                let digits: String =
                                    t.chars().filter(|c| c.is_ascii_digit()).collect();
                                t = format!(
                                    "({}) {} {}",
                                    &digits[0..3],
                                    &digits[3..6],
                                    &digits[6..10]
                                );
                            } else if i == 1 || i == 4 {
                                // Addresses: platform B drops the street
                                // suffix and keeps number + street name —
                                // token overlap survives, contiguity dies.
                                let toks: Vec<&str> = t.split_whitespace().collect();
                                if toks.len() > 2 {
                                    t = toks[..toks.len() - 1].join(" ");
                                }
                            } else if i == 0 {
                                // Platform B lists "name, cuisine kitchen"
                                // style: reordered tokens plus boilerplate.
                                t = reorder_tokens(&t, &mut self.rng);
                                t.push_str(" kitchen");
                            }
                            t
                        }
                    };
                    // Mild residual noise.
                    let noisy = if self.rng.gen_bool(0.1) {
                        typo(&formatted, &mut self.rng)
                    } else {
                        formatted
                    };
                    text(noisy)
                }
                AttrValue::Number(n) => {
                    // Votes/ratings drift slightly between platforms.
                    if self.rng.gen_bool(0.5) {
                        AttrValue::Number(jitter(*n, 4.0, &mut self.rng))
                    } else {
                        AttrValue::Number(*n)
                    }
                }
                AttrValue::Missing => AttrValue::Missing,
            })
            .collect()
    }
}

fn recase_title(s: &str) -> String {
    s.split_whitespace()
        .map(crate::lexicon::capitalize)
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------------------------------------------------------------------------
// Beer (BEER)
// ---------------------------------------------------------------------------

/// Beer domain: name, brewery, style, ABV.
pub struct BeerDomain {
    lex: Lexicon,
    rng: StdRng,
    breweries: Vec<String>,
}

impl BeerDomain {
    /// New beer domain.
    pub fn new(seed: u64) -> Self {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x62656572));
        let breweries: Vec<String> = lex
            .name_pool(15)
            .into_iter()
            .map(|n| format!("{n} brewing"))
            .collect();
        BeerDomain {
            rng: StdRng::seed_from_u64(seed ^ 0x686f7073),
            lex,
            breweries,
        }
    }
}

impl Domain for BeerDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        vec![
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::Numeric,
        ]
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let style = pools::BEER_STYLES[self.rng.gen_range(0..pools::BEER_STYLES.len())];
        let name = format!("{} {}", self.lex.name(), style);
        let brewery = self.breweries[self.rng.gen_range(0..self.breweries.len())].clone();
        let abv = (self.rng.gen_range(35..120) as f64) / 10.0;
        vec![
            text(name),
            text(brewery),
            text(style),
            AttrValue::Number(abv),
        ]
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Same brewery, different beer of the same style with a similar
        // strength — only the name reliably distinguishes them.
        let mut out = e.to_vec();
        let style = take_text(&e[2]);
        out[0] = text(format!("{} {}", self.lex.name(), style));
        let abv = e[3].as_number().unwrap_or(5.0);
        out[3] = AttrValue::Number(
            ((abv * 10.0 + self.rng.gen_range(-8..=8) as f64) / 10.0).clamp(3.5, 12.0),
        );
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        e.iter()
            .enumerate()
            .map(|(i, v)| match v {
                AttrValue::Text(s) => {
                    let mut t = s.clone();
                    if side == Side::Right {
                        t = recase(&t, &mut self.rng);
                        if self.rng.gen_bool(0.15) {
                            t = typo(&t, &mut self.rng);
                        }
                    }
                    if i == 0 {
                        text(t)
                    } else {
                        maybe_missing(text(t), 0.05, &mut self.rng)
                    }
                }
                AttrValue::Number(n) => {
                    // Label databases round ABV differently.
                    if side == Side::Right && self.rng.gen_bool(0.4) {
                        AttrValue::Number((*n + 0.1).floor())
                    } else {
                        AttrValue::Number(*n)
                    }
                }
                AttrValue::Missing => AttrValue::Missing,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Music (ITAM)
// ---------------------------------------------------------------------------

/// Music domain (iTunes-Amazon): 8 attributes with heavily overlapping
/// value distributions between matches and non-matches — the setting in
/// which ZeroER's distributional assumption collapses (its F1 on ITAM is
/// 10.8 in the paper).
pub struct MusicDomain {
    lex: Lexicon,
    rng: StdRng,
    artists: Vec<String>,
    song_words: Vec<String>,
}

impl MusicDomain {
    /// New music domain. Song titles draw from a *small* shared pool, so
    /// different tracks frequently share words — the value-overlap property
    /// that makes ITAM hostile to similarity-distribution methods.
    pub fn new(seed: u64) -> Self {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x6d757369));
        let artists = lex.name_pool(25);
        let song_words = (0..18).map(|_| lex.word()).collect();
        MusicDomain {
            rng: StdRng::seed_from_u64(seed ^ 0x736f6e67),
            lex,
            artists,
            song_words,
        }
    }

    fn song_title(&mut self) -> String {
        let a = self.song_words[self.rng.gen_range(0..self.song_words.len())].clone();
        let b = self.song_words[self.rng.gen_range(0..self.song_words.len())].clone();
        format!("{a} {b}")
    }
}

impl Domain for MusicDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        vec![
            AttrType::ShortText, // song
            AttrType::ShortText, // artist
            AttrType::ShortText, // album
            AttrType::ShortText, // genre
            AttrType::Numeric,   // price
            AttrType::ShortText, // copyright
            AttrType::ShortText, // time
            AttrType::ShortText, // released
        ]
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let song = self.song_title();
        let artist = self.artists[self.rng.gen_range(0..self.artists.len())].clone();
        let album = format!("{} {}", self.lex.name(), self.lex.word());
        let genre = pools::GENRES[self.rng.gen_range(0..pools::GENRES.len())];
        // Prices cluster on two points — overlapping distributions.
        let price = if self.rng.gen_bool(0.7) { 0.99 } else { 1.29 };
        // Tiny label pool: copyright strings repeat across unrelated tracks.
        let labels = [
            "(c) sonic records",
            "(c) harbor music",
            "(c) nova records",
            "(c) meridian audio",
            "(c) pulse media",
        ];
        let copyright = labels[self.rng.gen_range(0..labels.len())].to_owned();
        // Coarse duration grid: unrelated tracks frequently share a length.
        let time = format!(
            "{}:{:02}",
            self.rng.gen_range(2..6),
            15 * self.rng.gen_range(0..4)
        );
        let released = format!(
            "{} {}, {}",
            ["jan", "feb", "mar", "apr", "may", "jun"][self.rng.gen_range(0..6usize)],
            self.rng.gen_range(1..29),
            self.rng.gen_range(2005..2015)
        );
        vec![
            text(song),
            text(artist),
            text(album),
            text(genre),
            AttrValue::Number(price),
            text(copyright),
            text(time),
            text(released),
        ]
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Same artist and album, different track — only the song title and
        // time distinguish them (remaster/cover trap). Song words come from
        // the shared pool, so even the titles partially overlap.
        let mut out = e.to_vec();
        out[0] = text(self.song_title());
        out[6] = text(format!(
            "{}:{:02}",
            self.rng.gen_range(2..6),
            self.rng.gen_range(0..60)
        ));
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        e.iter()
            .enumerate()
            .map(|(i, v)| match v {
                AttrValue::Text(s) => {
                    let mut t = s.clone();
                    if side == Side::Right {
                        // Store B renders durations as seconds and release
                        // dates as bare years — per-column comparisons
                        // carry almost no signal either way.
                        if i == 6 {
                            if let Some((m, sec)) = t.split_once(':') {
                                let total = m.parse::<i64>().unwrap_or(3) * 60
                                    + sec.parse::<i64>().unwrap_or(0);
                                t = format!("{total} sec");
                            }
                        }
                        if i == 7 {
                            if let Some(year) = t.rsplit(' ').next() {
                                t = year.to_owned();
                            }
                        }
                        // Store B decorates song titles heavily and often
                        // misspells them — the one distinguishing column
                        // degrades for similarity-vector methods.
                        if i == 0 {
                            if self.rng.gen_bool(0.85) {
                                t = format!(
                                    "{t} {}",
                                    [
                                        "[explicit]",
                                        "(remastered)",
                                        "- single",
                                        "(deluxe)",
                                        "(album version)",
                                        "(feat. various)"
                                    ][self.rng.gen_range(0..6usize)]
                                );
                            }
                            if self.rng.gen_bool(0.25) {
                                t = typo(&t, &mut self.rng);
                            }
                        }
                        if self.rng.gen_bool(0.3) {
                            t = recase(&t, &mut self.rng);
                        }
                    }
                    if i == 0 {
                        text(t)
                    } else {
                        maybe_missing(text(t), 0.12, &mut self.rng)
                    }
                }
                AttrValue::Number(n) => AttrValue::Number(*n),
                AttrValue::Missing => AttrValue::Missing,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Movies (ROIM)
// ---------------------------------------------------------------------------

/// Movie domain (RottenTomatoes-IMDB): title, director, stars, year, rating.
pub struct MovieDomain {
    rng: StdRng,
    people: Vec<String>,
}

impl MovieDomain {
    /// New movie domain.
    pub fn new(seed: u64) -> Self {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x6d6f7669));
        let people = lex.name_pool(60);
        MovieDomain {
            rng: StdRng::seed_from_u64(seed ^ 0x66696c6d),
            people,
        }
    }

    fn person(&mut self) -> String {
        format!(
            "{} {}",
            self.people[self.rng.gen_range(0..self.people.len())],
            self.people[self.rng.gen_range(0..self.people.len())]
        )
    }
}

impl Domain for MovieDomain {
    fn attr_types(&self) -> Vec<AttrType> {
        vec![
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::ShortText,
            AttrType::Numeric,
            AttrType::Numeric,
        ]
    }

    fn entity(&mut self) -> Vec<AttrValue> {
        let w1 = pools::MOVIE_WORDS[self.rng.gen_range(0..pools::MOVIE_WORDS.len())];
        let w2 = pools::MOVIE_WORDS[self.rng.gen_range(0..pools::MOVIE_WORDS.len())];
        let title = format!("the {w1} {w2}");
        let director = self.person();
        let stars = format!("{}, {}", self.person(), self.person());
        let year = self.rng.gen_range(1970..2024) as f64;
        let rating = (self.rng.gen_range(30..95) as f64) / 10.0;
        vec![
            text(title),
            text(director),
            text(stars),
            AttrValue::Number(year),
            AttrValue::Number(rating),
        ]
    }

    fn near_miss(&mut self, e: &[AttrValue]) -> Vec<AttrValue> {
        // Remake trap: same title, different year/director.
        let mut out = e.to_vec();
        out[1] = text(self.person());
        out[2] = text(format!("{}, {}", self.person(), self.person()));
        out[3] = AttrValue::Number(self.rng.gen_range(1970..2024) as f64);
        out
    }

    fn present(&mut self, e: &[AttrValue], side: Side) -> Vec<AttrValue> {
        e.iter()
            .enumerate()
            .map(|(i, v)| match v {
                AttrValue::Text(s) => {
                    let mut t = s.clone();
                    if side == Side::Right {
                        t = t.to_lowercase();
                        if self.rng.gen_bool(0.2) {
                            t = reorder_tokens(&t, &mut self.rng);
                        }
                    } else {
                        t = recase_title(&t);
                    }
                    if i == 0 {
                        text(t)
                    } else {
                        maybe_missing(text(t), 0.05, &mut self.rng)
                    }
                }
                AttrValue::Number(n) => {
                    // Ratings differ slightly across platforms.
                    if *n < 11.0 && self.rng.gen_bool(0.6) {
                        AttrValue::Number(jitter(*n, 6.0, &mut self.rng))
                    } else {
                        AttrValue::Number(*n)
                    }
                }
                AttrValue::Missing => AttrValue::Missing,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_domains(seed: u64) -> Vec<Box<dyn Domain>> {
        vec![
            Box::new(ProductDomain::new(ProductStyle::Abt, seed)),
            Box::new(ProductDomain::new(ProductStyle::Wdc, seed + 1)),
            Box::new(ProductDomain::new(ProductStyle::Amgo, seed + 2)),
            Box::new(ProductDomain::new(ProductStyle::Waam, seed + 3)),
            Box::new(CitationDomain::new(CitationStyle::Clean, seed + 4)),
            Box::new(CitationDomain::new(CitationStyle::Scholar, seed + 5)),
            Box::new(RestaurantDomain::new(RestaurantStyle::Foza, seed + 6)),
            Box::new(RestaurantDomain::new(RestaurantStyle::Zoye, seed + 7)),
            Box::new(BeerDomain::new(seed + 8)),
            Box::new(MusicDomain::new(seed + 9)),
            Box::new(MovieDomain::new(seed + 10)),
        ]
    }

    #[test]
    fn entities_match_declared_arity() {
        for mut d in all_domains(0) {
            let types = d.attr_types();
            for _ in 0..5 {
                let e = d.entity();
                assert_eq!(e.len(), types.len());
                let near = d.near_miss(&e);
                assert_eq!(near.len(), types.len());
                let left = d.present(&e, Side::Left);
                let right = d.present(&e, Side::Right);
                assert_eq!(left.len(), types.len());
                assert_eq!(right.len(), types.len());
            }
        }
    }

    #[test]
    fn near_miss_differs_from_entity() {
        for mut d in all_domains(1) {
            let e = d.entity();
            let n = d.near_miss(&e);
            assert_ne!(e, n, "near-miss must be a different entity");
        }
    }

    #[test]
    fn near_miss_shares_surface_tokens() {
        // Hard negatives should overlap with the original.
        let mut d = ProductDomain::new(ProductStyle::Waam, 42);
        let e = d.entity();
        let n = d.near_miss(&e);
        let et = em_text::words(&take_text(&e[0]));
        let nt = em_text::words(&take_text(&n[0]));
        let shared = et.iter().filter(|t| nt.contains(t)).count();
        assert!(shared >= 2, "expected shared tokens: {et:?} vs {nt:?}");
    }

    #[test]
    fn presentations_keep_key_attribute_present() {
        for mut d in all_domains(2) {
            for _ in 0..20 {
                let e = d.entity();
                let p = d.present(&e, Side::Right);
                assert!(!p[0].is_missing(), "key attribute must survive");
            }
        }
    }

    #[test]
    fn restaurant_relations_use_different_formats() {
        let mut d = RestaurantDomain::new(RestaurantStyle::Foza, 7);
        let e = d.entity();
        let l = d.present(&e, Side::Left);
        let r = d.present(&e, Side::Right);
        // Phone formats differ systematically: dashed vs parenthesised.
        let lp = take_text(&l[3]);
        let rp = take_text(&r[3]);
        assert!(lp.contains('-'), "{lp}");
        assert!(rp.contains('('), "{rp}");
    }

    #[test]
    fn citation_clean_presentations_are_near_identical() {
        let mut d = CitationDomain::new(CitationStyle::Clean, 9);
        let e = d.entity();
        let l = d.present(&e, Side::Left);
        let r = d.present(&e, Side::Right);
        assert_eq!(take_text(&l[0]), take_text(&r[0]), "clean titles match");
    }

    #[test]
    fn music_prices_overlap_between_entities() {
        let mut d = MusicDomain::new(11);
        let prices: std::collections::HashSet<String> =
            (0..30).map(|_| take_text(&d.entity()[4])).collect();
        assert!(prices.len() <= 2, "ITAM prices cluster: {prices:?}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = MovieDomain::new(5);
        let mut b = MovieDomain::new(5);
        for _ in 0..5 {
            assert_eq!(a.entity(), b.entity());
        }
    }
}
