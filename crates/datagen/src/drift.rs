//! Drifting serve workload: right-catalog batches whose perturbation rate
//! ramps over time.
//!
//! The serve drift drill replays a fixed left catalog against a stream of
//! right-catalog batches. Early batches are (mostly) clean; the fraction
//! of records *flagged* for perturbation rises linearly from
//! [`DriftConfig::start_rate`] to [`DriftConfig::end_rate`] across the
//! stream, modelling an upstream feed whose data quality degrades. This
//! module only decides **which** records drift — the drill applies the
//! actual perturbation operators (from `em-perturb`, which depends on this
//! crate) to the flagged records, keeping the dependency graph acyclic.
//!
//! Everything is deterministic per `(config, seed)`: the underlying
//! relations come from [`serve_relations`] and the flag sets from a
//! per-batch seeded shuffle.

use crate::relations::{serve_relations, ServeRelations};
use em_core::Record;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shape of a drifting serve workload.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Size of the fixed left catalog.
    pub left_size: usize,
    /// Number of right-catalog batches in the stream.
    pub batches: usize,
    /// Records per batch.
    pub batch_size: usize,
    /// Fraction of right records that match some left record.
    pub match_fraction: f64,
    /// Perturbation rate of the first batch, in `[0, 1]`.
    pub start_rate: f64,
    /// Perturbation rate of the last batch, in `[0, 1]`.
    pub end_rate: f64,
    /// Master seed for relations and flag sets.
    pub seed: u64,
}

/// One batch of the drifting stream.
#[derive(Debug, Clone)]
pub struct DriftBatch {
    /// Position in the stream, `0..config.batches`.
    pub index: usize,
    /// This batch's perturbation rate (linear ramp).
    pub rate: f64,
    /// The batch's right-catalog records (clean; ids carry the global
    /// [`crate::relations::RIGHT_ID_OFFSET`]-based right ids).
    pub records: Vec<Record>,
    /// Ground truth as `(left_idx, local_idx)` — index into the shared
    /// left catalog × index into `records`.
    pub matches: Vec<(usize, usize)>,
    /// Indices into `records` flagged for perturbation, sorted. Exactly
    /// `ceil(rate * batch_size)` entries, chosen by a per-batch seeded
    /// shuffle.
    pub flagged: Vec<usize>,
}

/// A deterministic drifting workload: fixed left catalog + an iterator of
/// [`DriftBatch`]es carved from one [`serve_relations`] instance.
pub struct DriftStream {
    config: DriftConfig,
    rels: ServeRelations,
    next: usize,
}

impl DriftStream {
    /// Builds the stream. The right relation has
    /// `config.batches * config.batch_size` records so every batch is
    /// full-sized.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.batches > 0, "drift stream needs at least one batch");
        assert!(
            (0.0..=1.0).contains(&config.start_rate) && (0.0..=1.0).contains(&config.end_rate),
            "perturbation rates must lie in [0,1]"
        );
        let rels = serve_relations(
            config.left_size,
            config.batches * config.batch_size,
            config.match_fraction,
            config.seed,
        );
        DriftStream {
            config,
            rels,
            next: 0,
        }
    }

    /// The fixed left catalog shared by every batch.
    pub fn left(&self) -> &[Record] {
        &self.rels.left
    }

    /// Attribute count of the generated records.
    pub fn arity(&self) -> usize {
        self.rels.arity()
    }

    /// The perturbation rate of batch `index` (linear interpolation; a
    /// single-batch stream sits at `start_rate`).
    pub fn rate_at(&self, index: usize) -> f64 {
        if self.config.batches <= 1 {
            return self.config.start_rate;
        }
        let t = index as f64 / (self.config.batches - 1) as f64;
        self.config.start_rate + (self.config.end_rate - self.config.start_rate) * t
    }
}

impl Iterator for DriftStream {
    type Item = DriftBatch;

    fn next(&mut self) -> Option<DriftBatch> {
        let index = self.next;
        if index >= self.config.batches {
            return None;
        }
        self.next += 1;
        let bs = self.config.batch_size;
        let lo = index * bs;
        let hi = lo + bs;
        let records: Vec<Record> = self.rels.right[lo..hi].to_vec();
        let matches: Vec<(usize, usize)> = self
            .rels
            .matches
            .iter()
            .filter(|&&(_, j)| (lo..hi).contains(&j))
            .map(|&(i, j)| (i, j - lo))
            .collect();
        let rate = self.rate_at(index);
        let n_flagged = ((rate * bs as f64).ceil() as usize).min(bs);
        let mut idx: Vec<usize> = (0..bs).collect();
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ 0x6472_6966_74 ^ (index as u64) << 17);
        idx.shuffle(&mut rng);
        idx.truncate(n_flagged);
        idx.sort_unstable();
        Some(DriftBatch {
            index,
            rate,
            records,
            matches,
            flagged: idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DriftConfig {
        DriftConfig {
            left_size: 120,
            batches: 5,
            batch_size: 40,
            match_fraction: 0.4,
            start_rate: 0.0,
            end_rate: 0.8,
            seed: 13,
        }
    }

    #[test]
    fn rate_ramps_linearly_over_the_stream() {
        let stream = DriftStream::new(config());
        let rates: Vec<f64> = (0..5).map(|i| stream.rate_at(i)).collect();
        assert_eq!(rates[0], 0.0);
        assert!((rates[4] - 0.8).abs() < 1e-12);
        for w in rates.windows(2) {
            assert!(w[1] > w[0], "ramp not strictly increasing: {rates:?}");
        }
    }

    #[test]
    fn flagged_fraction_follows_the_rate() {
        for batch in DriftStream::new(config()) {
            let expect = (batch.rate * 40.0).ceil() as usize;
            assert_eq!(batch.flagged.len(), expect.min(40), "batch {}", batch.index);
            for &i in &batch.flagged {
                assert!(i < batch.records.len());
            }
        }
    }

    #[test]
    fn batches_partition_the_right_relation() {
        let cfg = config();
        let rels = serve_relations(
            cfg.left_size,
            cfg.batches * cfg.batch_size,
            cfg.match_fraction,
            cfg.seed,
        );
        let mut seen = 0;
        for batch in DriftStream::new(cfg.clone()) {
            for (k, r) in batch.records.iter().enumerate() {
                assert_eq!(*r, rels.right[batch.index * cfg.batch_size + k]);
            }
            seen += batch.records.len();
        }
        assert_eq!(seen, rels.right.len());
    }

    #[test]
    fn matches_use_local_indices() {
        let stream = DriftStream::new(config());
        let left_len = stream.left().len();
        let mut total = 0;
        for batch in stream {
            for &(li, local) in &batch.matches {
                assert!(li < left_len);
                assert!(local < batch.records.len());
            }
            total += batch.matches.len();
        }
        // 0.4 * 200 right records, capped by 120 left records.
        assert_eq!(total, 80);
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<DriftBatch> = DriftStream::new(config()).collect();
        let b: Vec<DriftBatch> = DriftStream::new(config()).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.records, y.records);
            assert_eq!(x.flagged, y.flagged);
            assert_eq!(x.matches, y.matches);
        }
    }

    #[test]
    fn single_batch_stream_sits_at_start_rate() {
        let cfg = DriftConfig {
            batches: 1,
            start_rate: 0.5,
            ..config()
        };
        let batches: Vec<DriftBatch> = DriftStream::new(cfg).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].rate, 0.5);
        assert_eq!(batches[0].flagged.len(), 20);
    }
}
