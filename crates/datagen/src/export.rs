//! CSV export of generated benchmarks, in the layout the original
//! Magellan-style benchmark files use: one row per labelled pair with
//! `left_*` / `right_*` value columns and a `label` column. Useful for
//! inspecting the synthetic data or feeding it to external tools.

use em_core::{AttrValue, Benchmark};

/// Escapes one CSV field (RFC 4180: quote when the field contains a comma,
/// quote, or newline; double embedded quotes).
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

fn render(v: &AttrValue) -> String {
    escape_field(&v.render())
}

/// Serializes a benchmark to CSV. Columns: `left_id`, `left_a0..`,
/// `right_id`, `right_a0..`, `label`. Attribute columns are deliberately
/// anonymous (`a0`, `a1`, ...) — consistent with cross-dataset
/// Restriction 2, the export carries no semantic column names.
pub fn to_csv(bench: &Benchmark) -> String {
    let arity = bench.arity();
    let mut out = String::new();
    out.push_str("left_id");
    for i in 0..arity {
        out.push_str(&format!(",left_a{i}"));
    }
    out.push_str(",right_id");
    for i in 0..arity {
        out.push_str(&format!(",right_a{i}"));
    }
    out.push_str(",label\n");
    for lp in &bench.pairs {
        out.push_str(&lp.pair.left.id.to_string());
        for v in &lp.pair.left.values {
            out.push(',');
            out.push_str(&render(v));
        }
        out.push(',');
        out.push_str(&lp.pair.right.id.to_string());
        for v in &lp.pair.right.values {
            out.push(',');
            out.push_str(&render(v));
        }
        out.push_str(if lp.label { ",1\n" } else { ",0\n" });
    }
    out
}

/// Writes the CSV export of a benchmark to a file.
pub fn write_csv(bench: &Benchmark, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_csv(bench))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::generate;
    use em_core::DatasetId;

    #[test]
    fn escape_handles_special_characters() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn csv_has_header_and_one_row_per_pair() {
        let b = generate(DatasetId::Beer, 0);
        let csv = to_csv(&b);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), b.pairs.len() + 1);
        // Header: left_id + 4 attrs + right_id + 4 attrs + label = 11 cols.
        assert_eq!(lines[0].split(',').count(), 11);
        assert!(lines[0].starts_with("left_id,left_a0"));
        assert!(lines[0].ends_with("label"));
    }

    #[test]
    fn labels_round_trip() {
        let b = generate(DatasetId::Zoye, 0);
        let csv = to_csv(&b);
        let positives = csv.lines().skip(1).filter(|l| l.ends_with(",1")).count();
        assert_eq!(positives, b.positives());
    }

    #[test]
    fn no_semantic_column_names_leak() {
        let b = generate(DatasetId::Foza, 0);
        let header = to_csv(&b).lines().next().unwrap().to_owned();
        for forbidden in ["name", "phone", "address", "city", "cuisine"] {
            assert!(!header.contains(forbidden), "{header}");
        }
    }

    #[test]
    fn write_csv_creates_a_readable_file() {
        let b = generate(DatasetId::Beer, 1);
        let dir = std::env::temp_dir().join("em_datagen_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("beer.csv");
        write_csv(&b, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, to_csv(&b));
        let _ = std::fs::remove_file(&path);
    }
}
