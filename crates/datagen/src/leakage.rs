//! Data-leakage audits mirroring Section 5.1 of the paper: the authors
//! "conducted a separate analysis on dataset pairs by looking at the result
//! size of natural joins between them to ensure there is no overlap",
//! confirming "zero tuple overlap between every pair of datasets". This
//! module implements that join audit for the synthetic suite.

use em_core::{Benchmark, Serializer};
use std::collections::HashSet;

/// Serializes every record of a benchmark (both relations) into canonical
/// lowercase tuples.
fn tuple_set(bench: &Benchmark) -> HashSet<String> {
    let ser = Serializer::identity(bench.arity());
    let mut set = HashSet::with_capacity(bench.pairs.len() * 2);
    for p in &bench.pairs {
        set.insert(ser.record(&p.pair.left).to_lowercase());
        set.insert(ser.record(&p.pair.right).to_lowercase());
    }
    set
}

/// Size of the natural join (tuple-level intersection) between two
/// datasets' record sets.
pub fn natural_join_size(a: &Benchmark, b: &Benchmark) -> usize {
    let sa = tuple_set(a);
    let sb = tuple_set(b);
    sa.intersection(&sb).count()
}

/// Result of the all-pairs overlap audit.
#[derive(Debug, Clone)]
pub struct LeakageReport {
    /// `(dataset A, dataset B, join size)` for every unordered pair.
    pub joins: Vec<(String, String, usize)>,
}

impl LeakageReport {
    /// `true` when no pair of datasets shares a tuple.
    pub fn is_clean(&self) -> bool {
        self.joins.iter().all(|(_, _, n)| *n == 0)
    }
}

/// Runs the join audit over every pair of benchmarks.
pub fn audit(benchmarks: &[Benchmark]) -> LeakageReport {
    let sets: Vec<HashSet<String>> = benchmarks.iter().map(tuple_set).collect();
    let mut joins = Vec::new();
    for i in 0..benchmarks.len() {
        for j in (i + 1)..benchmarks.len() {
            let overlap = sets[i].intersection(&sets[j]).count();
            joins.push((
                benchmarks[i].id.code().to_owned(),
                benchmarks[j].id.code().to_owned(),
                overlap,
            ));
        }
    }
    LeakageReport { joins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::generate;
    use em_core::DatasetId;

    #[test]
    fn small_benchmarks_have_zero_overlap() {
        let benches = vec![
            generate(DatasetId::Beer, 0),
            generate(DatasetId::Zoye, 0),
            generate(DatasetId::Roim, 0),
            generate(DatasetId::Itam, 0),
            generate(DatasetId::Foza, 0),
        ];
        let report = audit(&benches);
        assert_eq!(report.joins.len(), 10);
        assert!(report.is_clean(), "leakage found: {:?}", report.joins);
    }

    #[test]
    fn join_of_a_dataset_with_itself_is_large() {
        let b = generate(DatasetId::Beer, 0);
        assert!(natural_join_size(&b, &b) > 0);
    }

    #[test]
    fn report_flags_manufactured_overlap() {
        let a = generate(DatasetId::Beer, 0);
        // Duplicate BEER under another id: every tuple overlaps.
        let mut b = a.clone();
        b.id = DatasetId::Roim;
        let report = audit(&[a, b]);
        assert!(!report.is_clean());
    }
}
