//! Deterministic lexicons: syllable-built pseudo-words for entity names
//! plus small English pools for glue text. Each dataset draws its name
//! vocabulary from its own seeded generator, which keeps the 11 benchmarks
//! tuple-disjoint (audited in [`crate::leakage`]).

use rand::rngs::StdRng;
use rand::Rng;

const ONSETS: [&str; 20] = [
    "b", "br", "c", "cr", "d", "dr", "f", "g", "gr", "h", "k", "l", "m", "n", "p", "pr", "s", "st",
    "t", "v",
];
const NUCLEI: [&str; 10] = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou", "ar"];
const CODAS: [&str; 12] = ["n", "r", "s", "t", "l", "x", "ck", "nd", "st", "m", "", ""];

/// A seeded pseudo-word factory.
#[derive(Debug)]
pub struct Lexicon {
    rng: StdRng,
}

impl Lexicon {
    /// New lexicon driven by the provided RNG.
    pub fn new(rng: StdRng) -> Self {
        Lexicon { rng }
    }

    /// A pronounceable pseudo-word of 2–3 syllables.
    pub fn word(&mut self) -> String {
        let syllables = self.rng.gen_range(2..=3);
        let mut w = String::new();
        for _ in 0..syllables {
            w.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
            w.push_str(NUCLEI[self.rng.gen_range(0..NUCLEI.len())]);
        }
        w.push_str(CODAS[self.rng.gen_range(0..CODAS.len())]);
        w
    }

    /// A capitalized pseudo-word (names, brands).
    pub fn name(&mut self) -> String {
        capitalize(&self.word())
    }

    /// A pool of `n` distinct capitalized names.
    pub fn name_pool(&mut self, n: usize) -> Vec<String> {
        let mut pool = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while pool.len() < n {
            let w = self.name();
            if seen.insert(w.clone()) {
                pool.push(w);
            }
        }
        pool
    }

    /// A model-number-like code, e.g. `DX-4812` or `SL300`.
    pub fn model_code(&mut self) -> String {
        let letters: String = (0..self.rng.gen_range(1..=2))
            .map(|_| (b'A' + self.rng.gen_range(0..26u8)) as char)
            .collect();
        let digits = self.rng.gen_range(100..9999);
        if self.rng.gen_bool(0.5) {
            format!("{letters}-{digits}")
        } else {
            format!("{letters}{digits}")
        }
    }

    /// A US-style phone number.
    pub fn phone(&mut self) -> (u32, u32, u32) {
        (
            self.rng.gen_range(200..999),
            self.rng.gen_range(200..999),
            self.rng.gen_range(1000..9999),
        )
    }

    /// Direct access to the RNG (for callers composing values).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Capitalizes the first character.
pub fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Shared English pools used as glue across domains (these *may* overlap
/// between datasets — like "the" or "deluxe" would in real data — without
/// creating tuple-level leakage).
pub mod pools {
    /// Product adjectives.
    pub const ADJECTIVES: [&str; 16] = [
        "deluxe",
        "compact",
        "wireless",
        "portable",
        "premium",
        "classic",
        "digital",
        "ultra",
        "pro",
        "mini",
        "advanced",
        "smart",
        "dual",
        "slim",
        "heavy-duty",
        "universal",
    ];
    /// Product nouns.
    pub const PRODUCT_NOUNS: [&str; 16] = [
        "speaker",
        "headphones",
        "camera",
        "charger",
        "keyboard",
        "monitor",
        "router",
        "printer",
        "blender",
        "toaster",
        "vacuum",
        "drill",
        "lamp",
        "fan",
        "kettle",
        "scale",
    ];
    /// Product categories.
    pub const CATEGORIES: [&str; 12] = [
        "electronics",
        "home audio",
        "kitchen appliances",
        "computer accessories",
        "office supplies",
        "power tools",
        "photography",
        "networking",
        "cleaning",
        "lighting",
        "mobile accessories",
        "small appliances",
    ];
    /// Street suffixes.
    pub const STREETS: [&str; 8] = ["st", "ave", "blvd", "rd", "ln", "dr", "way", "pkwy"];
    /// US cities.
    pub const CITIES: [&str; 12] = [
        "new york",
        "los angeles",
        "chicago",
        "houston",
        "phoenix",
        "san diego",
        "dallas",
        "austin",
        "seattle",
        "denver",
        "boston",
        "atlanta",
    ];
    /// Cuisine types.
    pub const CUISINES: [&str; 12] = [
        "italian",
        "french",
        "mexican",
        "thai",
        "japanese",
        "indian",
        "american",
        "chinese",
        "greek",
        "spanish",
        "korean",
        "vietnamese",
    ];
    /// Music genres.
    pub const GENRES: [&str; 10] = [
        "rock",
        "pop",
        "jazz",
        "electronic",
        "hip-hop",
        "country",
        "folk",
        "classical",
        "blues",
        "metal",
    ];
    /// Beer styles.
    pub const BEER_STYLES: [&str; 10] = [
        "ipa",
        "stout",
        "lager",
        "pilsner",
        "porter",
        "saison",
        "pale ale",
        "wheat",
        "amber ale",
        "sour",
    ];
    /// Academic venue stems.
    pub const VENUES: [&str; 10] = [
        "sigmod", "vldb", "icde", "edbt", "kdd", "www", "cikm", "icml", "neurips", "acl",
    ];
    /// Citation title stems.
    pub const CS_TOPICS: [&str; 16] = [
        "query optimization",
        "entity matching",
        "data integration",
        "stream processing",
        "index structures",
        "transaction management",
        "graph analytics",
        "schema mapping",
        "data cleaning",
        "approximate joins",
        "columnar storage",
        "distributed consensus",
        "materialized views",
        "workload forecasting",
        "vector search",
        "provenance tracking",
    ];
    /// Citation title prefixes.
    pub const CS_PREFIXES: [&str; 8] = [
        "towards",
        "efficient",
        "scalable",
        "adaptive",
        "learning-based",
        "robust",
        "incremental",
        "declarative",
    ];
    /// Movie title words.
    pub const MOVIE_WORDS: [&str; 14] = [
        "midnight", "shadow", "river", "last", "silent", "broken", "golden", "winter", "lost",
        "crimson", "empire", "echo", "burning", "distant",
    ];
    /// Software nouns.
    pub const SOFTWARE_NOUNS: [&str; 12] = [
        "studio",
        "suite",
        "manager",
        "editor",
        "toolkit",
        "designer",
        "server",
        "antivirus",
        "backup",
        "office",
        "converter",
        "optimizer",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_deterministic_per_seed() {
        let mut a = Lexicon::new(StdRng::seed_from_u64(1));
        let mut b = Lexicon::new(StdRng::seed_from_u64(1));
        for _ in 0..20 {
            assert_eq!(a.word(), b.word());
        }
    }

    #[test]
    fn different_seeds_make_different_vocabularies() {
        let mut a = Lexicon::new(StdRng::seed_from_u64(1));
        let mut b = Lexicon::new(StdRng::seed_from_u64(2));
        let wa: Vec<String> = (0..10).map(|_| a.word()).collect();
        let wb: Vec<String> = (0..10).map(|_| b.word()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn name_pool_is_distinct() {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(3));
        let pool = lex.name_pool(100);
        let set: std::collections::HashSet<&String> = pool.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn names_are_capitalized() {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(4));
        for _ in 0..10 {
            let n = lex.name();
            assert!(n.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn model_codes_have_digits() {
        let mut lex = Lexicon::new(StdRng::seed_from_u64(5));
        for _ in 0..10 {
            let code = lex.model_code();
            assert!(code.chars().any(|c| c.is_ascii_digit()));
            assert!(code.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn capitalize_handles_empty() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("abc"), "Abc");
    }
}
