//! # em-datagen — synthetic benchmark and corpus generation
//!
//! The original study uses the Magellan/WDC benchmark files, which are not
//! available here. This crate synthesizes all 11 datasets with the exact
//! Table 1 statistics (#attributes, #positives, #negatives per dataset) and
//! per-domain difficulty profiles chosen to reproduce the *relative*
//! matcher orderings of the paper (see DESIGN.md §1 for the substitution
//! argument):
//!
//! * seeded pseudo-word lexicons keep entity pools disjoint across datasets
//!   ([`lexicon`]);
//! * realistic dirtiness: typos, token drops/reorders, abbreviations,
//!   casing noise, numeric jitter ([`corrupt`]);
//! * per-domain entity generators with hard-negative "near misses"
//!   ([`domains`]);
//! * dataset assembly honoring Table 1 ([`benchmark`]);
//! * a multi-domain pretraining corpus for the frozen LLM tiers
//!   ([`corpus`]);
//! * the Section 5.1 natural-join leakage audit ([`leakage`]);
//! * a drifting serve workload whose flagged-for-perturbation fraction
//!   ramps per batch, for the cascade degradation drill ([`drift`]).

pub mod benchmark;
pub mod corpus;
pub mod corrupt;
pub mod domains;
pub mod drift;
pub mod export;
pub mod leakage;
pub mod lexicon;
pub mod relations;

pub use benchmark::{domain_for, generate, generate_suite};
pub use corpus::pretrain_corpus;
pub use domains::{Domain, Side};
pub use drift::{DriftBatch, DriftConfig, DriftStream};
pub use export::{to_csv, write_csv};
pub use leakage::{audit, natural_join_size, LeakageReport};
pub use lexicon::Lexicon;
pub use relations::{labeled_pairs, serve_relations, ServeRelations};
