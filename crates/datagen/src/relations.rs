//! Free-standing relation pairs for the serving pipeline.
//!
//! The Table 1 benchmarks ship as pre-paired labeled data — the right shape
//! for LODO evaluation, the wrong one for a serving system that starts from
//! two raw catalogs. This module generates the serving workload: two
//! relations of arbitrary size with a known match mapping, realistic
//! dirtiness on the matched presentations, and near-universal filler tokens
//! that exercise the blockers' stop-word cuts.

use crate::corrupt;
use crate::lexicon::Lexicon;
use em_core::{AttrValue, Record, Serializer, SerializedPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Filler tokens present in most titles — the "deluxe"/"series" glue that
/// carries no identity signal and must be stopped by frequency cuts.
const FILLERS: [&str; 6] = ["pro", "series", "edition", "premium", "model", "new"];

/// Offset added to right-relation record ids so they never collide with
/// left ids (useful when both relations flow into one cache or trace).
pub const RIGHT_ID_OFFSET: u64 = 1_000_000_000;

/// Two relations plus the ground-truth match mapping between them.
#[derive(Debug, Clone)]
pub struct ServeRelations {
    /// Left catalog.
    pub left: Vec<Record>,
    /// Right catalog.
    pub right: Vec<Record>,
    /// Ground truth: `(left_idx, right_idx)` matching positions, sorted.
    pub matches: Vec<(usize, usize)>,
}

impl ServeRelations {
    /// Attribute count of the generated records (title, category, price).
    pub fn arity(&self) -> usize {
        3
    }
}

/// One clean entity: distinct identity words, a model code, a category and
/// a price. The identity words come from a pool sized relative to the
/// relation sizes so per-token posting lists stay short at serve scale.
struct Entity {
    words: [String; 3],
    code: String,
    category: String,
    price: f64,
}

fn make_entity(pool: &[String], lex: &mut Lexicon) -> Entity {
    let rng = lex.rng();
    let mut idx = [0usize; 3];
    idx[0] = rng.gen_range(0..pool.len());
    loop {
        idx[1] = rng.gen_range(0..pool.len());
        if idx[1] != idx[0] {
            break;
        }
    }
    loop {
        idx[2] = rng.gen_range(0..pool.len());
        if idx[2] != idx[0] && idx[2] != idx[1] {
            break;
        }
    }
    let category = crate::lexicon::pools::CATEGORIES[rng.gen_range(0..12usize)].to_owned();
    let price = rng.gen_range(5.0..2000.0_f64).round();
    Entity {
        words: [
            pool[idx[0]].clone(),
            pool[idx[1]].clone(),
            pool[idx[2]].clone(),
        ],
        code: lex.model_code(),
        category,
        price,
    }
}

impl Entity {
    /// The clean (left-catalog) presentation.
    fn clean_record(&self, id: u64, rng: &mut StdRng) -> Record {
        let filler = FILLERS[rng.gen_range(0..FILLERS.len())];
        let title = format!(
            "{} {} {} {} {}",
            self.words[0], self.words[1], self.words[2], filler, self.code
        );
        Record::new(
            id,
            vec![
                AttrValue::from(title),
                AttrValue::from(self.category.as_str()),
                AttrValue::from(self.price),
            ],
        )
    }

    /// A noisy (right-catalog) presentation of the same entity: a typo in
    /// one identity word, possibly a different filler, recased title, and
    /// jittered price. Token overlap with the clean presentation stays
    /// high (≥ 2 identity words + code survive), so blocking recall is
    /// governed by the blocker, not by generator noise.
    fn noisy_record(&self, id: u64, rng: &mut StdRng) -> Record {
        let mut words = self.words.clone();
        if rng.gen_bool(0.5) {
            let i = rng.gen_range(0..3usize);
            words[i] = corrupt::typo(&words[i], rng);
        }
        let filler = FILLERS[rng.gen_range(0..FILLERS.len())];
        let mut title = format!(
            "{} {} {} {} {}",
            words[0], words[1], words[2], filler, self.code
        );
        if rng.gen_bool(0.3) {
            title = corrupt::recase(&title, rng);
        }
        if rng.gen_bool(0.2) {
            title = corrupt::reorder_tokens(&title, rng);
        }
        let price = corrupt::jitter(self.price, 4.0, rng);
        Record::new(
            id,
            vec![
                AttrValue::from(title),
                AttrValue::from(self.category.as_str()),
                AttrValue::from(price),
            ],
        )
    }
}

/// Generates two relations of `n_left` × `n_right` records where
/// `match_fraction` of the right records are noisy presentations of some
/// left record (capped by `n_left`); the rest are unrelated entities.
/// Fully deterministic per `(n_left, n_right, match_fraction, seed)`.
pub fn serve_relations(
    n_left: usize,
    n_right: usize,
    match_fraction: f64,
    seed: u64,
) -> ServeRelations {
    assert!(
        (0.0..=1.0).contains(&match_fraction),
        "match_fraction {match_fraction} outside [0,1]"
    );
    let mut lex = Lexicon::new(StdRng::seed_from_u64(seed ^ 0x7365_7276_6531));
    // Pool scaled to the workload: ~6 records share an identity word on
    // average, so posting lists stay short at 100k×100k while random
    // cross pairs rarely share two identity words.
    let pool_size = ((n_left + n_right) / 6).clamp(64, 40_000);
    let pool = lex.name_pool(pool_size);

    let entities: Vec<Entity> = (0..n_left).map(|_| make_entity(&pool, &mut lex)).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7276_6532);
    let left: Vec<Record> = entities
        .iter()
        .enumerate()
        .map(|(i, e)| e.clean_record(i as u64, &mut rng))
        .collect();

    let n_matches = ((n_right as f64 * match_fraction).round() as usize).min(n_left);
    // Which left entities get a right-side presentation.
    let mut left_choice: Vec<usize> = (0..n_left).collect();
    left_choice.shuffle(&mut rng);
    left_choice.truncate(n_matches);

    // Build the right relation in a shuffled position order so matched and
    // unmatched records interleave.
    let mut positions: Vec<usize> = (0..n_right).collect();
    positions.shuffle(&mut rng);
    let mut right: Vec<Option<Record>> = (0..n_right).map(|_| None).collect();
    let mut matches = Vec::with_capacity(n_matches);
    for (k, &pos) in positions.iter().enumerate() {
        let id = RIGHT_ID_OFFSET + pos as u64;
        if k < n_matches {
            let li = left_choice[k];
            right[pos] = Some(entities[li].noisy_record(id, &mut rng));
            matches.push((li, pos));
        } else {
            right[pos] = Some(make_entity(&pool, &mut lex).clean_record(id, &mut rng));
        }
    }
    matches.sort_unstable();
    ServeRelations {
        left,
        right: right.into_iter().map(|r| r.expect("filled")).collect(),
        matches,
    }
}

/// Labeled serialized pairs drawn from a relations instance: all (or up to
/// `n_pos`) true matches plus `n_neg` random non-matching pairs. Used to
/// train cascade stages on a *separately seeded* instance of the same
/// distribution, keeping the serving relations unseen.
pub fn labeled_pairs(
    rels: &ServeRelations,
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> Vec<(SerializedPair, bool)> {
    let ser = Serializer::identity(rels.arity());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6C61_6265_6C73);
    let mut out = Vec::with_capacity(n_pos.min(rels.matches.len()) + n_neg);
    let mut pos: Vec<&(usize, usize)> = rels.matches.iter().collect();
    pos.shuffle(&mut rng);
    for &&(i, j) in pos.iter().take(n_pos) {
        out.push((
            SerializedPair {
                left: ser.record(&rels.left[i]).into(),
                right: ser.record(&rels.right[j]).into(),
            },
            true,
        ));
    }
    let truth: std::collections::HashSet<(usize, usize)> =
        rels.matches.iter().copied().collect();
    let mut made = 0;
    while made < n_neg && !rels.left.is_empty() && !rels.right.is_empty() {
        let i = rng.gen_range(0..rels.left.len());
        let j = rng.gen_range(0..rels.right.len());
        if truth.contains(&(i, j)) {
            continue;
        }
        out.push((
            SerializedPair {
                left: ser.record(&rels.left[i]).into(),
                right: ser.record(&rels.right[j]).into(),
            },
            false,
        ));
        made += 1;
    }
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = serve_relations(50, 60, 0.3, 7);
        let b = serve_relations(50, 60, 0.3, 7);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
        let c = serve_relations(50, 60, 0.3, 8);
        assert_ne!(a.left, c.left);
    }

    #[test]
    fn match_count_follows_fraction() {
        let rels = serve_relations(200, 100, 0.3, 1);
        assert_eq!(rels.matches.len(), 30);
        // Capped by the left relation when it is smaller.
        let capped = serve_relations(10, 100, 0.9, 1);
        assert_eq!(capped.matches.len(), 10);
    }

    #[test]
    fn matches_reference_valid_distinct_positions() {
        let rels = serve_relations(80, 120, 0.5, 3);
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for &(i, j) in &rels.matches {
            assert!(i < rels.left.len() && j < rels.right.len());
            assert!(lefts.insert(i), "left {i} matched twice");
            assert!(rights.insert(j), "right {j} matched twice");
        }
    }

    #[test]
    fn matched_pairs_share_identity_tokens() {
        let rels = serve_relations(100, 100, 0.4, 5);
        let text = |r: &Record| r.values[0].render().to_lowercase();
        for &(i, j) in &rels.matches {
            let lt = em_text::words(&text(&rels.left[i]));
            let rt: std::collections::HashSet<String> =
                em_text::words(&text(&rels.right[j])).into_iter().collect();
            let shared = lt.iter().filter(|t| rt.contains(*t)).count();
            assert!(
                shared >= 2,
                "match ({i},{j}) shares only {shared} tokens: {:?} vs {:?}",
                rels.left[i].values[0],
                rels.right[j].values[0]
            );
        }
    }

    #[test]
    fn ids_are_disjoint_across_relations() {
        let rels = serve_relations(30, 30, 0.2, 2);
        for l in &rels.left {
            for r in &rels.right {
                assert_ne!(l.id, r.id);
            }
        }
    }

    #[test]
    fn labeled_pairs_are_balanced_and_consistent() {
        let rels = serve_relations(100, 100, 0.4, 11);
        let data = labeled_pairs(&rels, 20, 30, 0);
        assert_eq!(data.iter().filter(|(_, y)| *y).count(), 20);
        assert_eq!(data.iter().filter(|(_, y)| !*y).count(), 30);
        for (p, _) in &data {
            assert!(!p.left.is_empty() && !p.right.is_empty());
        }
    }
}
