//! Exponential backoff with decorrelated jitter.
//!
//! The delay schedule follows the "decorrelated jitter" recipe: each delay
//! is drawn uniformly from `[base, prev * 3]` and capped, so consecutive
//! waits grow roughly exponentially while avoiding the synchronized
//! retry herds that plain exponential backoff produces. The "draw" is a
//! hash of `(seed, call key, attempt)` — fully deterministic, so the same
//! plan seed reproduces the same schedule down to the millisecond.

use crate::{mix64, unit_f64};

/// Retry/backoff policy for one class of calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First (and minimum) delay between attempts, in milliseconds.
    pub base_ms: u64,
    /// Cap on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Maximum attempts per call, including the first.
    pub max_attempts: u32,
    /// Per-call deadline budget in virtual milliseconds: a retry is
    /// abandoned once sleeping again would push the call past this.
    pub deadline_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base_ms: 100,
            cap_ms: 10_000,
            max_attempts: 6,
            deadline_ms: 60_000,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (1-based: the wait after
    /// the first failure is `attempt == 1`), given the previous delay.
    /// Decorrelated jitter: uniform in `[base, max(base, prev * 3)]`,
    /// capped at `cap_ms`.
    pub fn delay_ms(&self, seed: u64, key: u64, attempt: u32, prev_ms: u64) -> u64 {
        let hi = prev_ms.saturating_mul(3).max(self.base_ms);
        let span = hi - self.base_ms;
        let u = unit_f64(mix64(
            seed ^ key.rotate_left(31) ^ (u64::from(attempt) << 32) ^ 0x6a69_7474,
        ));
        let jittered = self.base_ms + (u * span as f64) as u64;
        jittered.min(self.cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(1, 2, 1, 100), p.delay_ms(1, 2, 1, 100));
        // Different seeds/keys/attempts draw different jitter.
        let draws: Vec<u64> = (0..16).map(|a| p.delay_ms(1, 2, a, 5_000)).collect();
        let distinct: std::collections::HashSet<u64> = draws.iter().copied().collect();
        assert!(distinct.len() > 8, "jitter collapsed: {draws:?}");
    }

    #[test]
    fn delays_respect_base_and_cap() {
        let p = BackoffPolicy {
            base_ms: 50,
            cap_ms: 400,
            ..BackoffPolicy::default()
        };
        let mut prev = p.base_ms;
        for attempt in 1..32 {
            let d = p.delay_ms(9, 9, attempt, prev);
            assert!((p.base_ms..=p.cap_ms).contains(&d), "attempt {attempt}: {d}");
            prev = d;
        }
    }

    #[test]
    fn schedule_grows_toward_the_cap() {
        // With decorrelated jitter the *expectation* doubles per step;
        // over many keys the late attempts must dominate the early ones.
        let p = BackoffPolicy::default();
        let mean_at = |attempt: u32| -> f64 {
            (0..200u64)
                .map(|key| {
                    let mut prev = p.base_ms;
                    for a in 1..=attempt {
                        prev = p.delay_ms(7, key, a, prev);
                    }
                    prev as f64
                })
                .sum::<f64>()
                / 200.0
        };
        assert!(mean_at(4) > 2.0 * mean_at(1));
    }
}
