//! A per-backend circuit breaker over virtual time.
//!
//! Classic three-state breaker: `Closed` counts consecutive failures and
//! trips to `Open` at a threshold; `Open` rejects calls locally until a
//! cooldown (measured on the caller's [`crate::VirtualClock`]) elapses,
//! then admits a single probe in `HalfOpen`; the probe's outcome either
//! closes the breaker or re-opens it for another cooldown. Trips and
//! short-circuited calls feed the `faults.breaker_opened` /
//! `faults.breaker_short_circuited` counters, and every transition bumps
//! the local [`CircuitBreaker::transitions`] count so determinism tests
//! can compare transition histories across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Breaker state, exposed for assertions and result-row annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected locally until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe call is admitted.
    HalfOpen,
}

impl BreakerState {
    /// Label for events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed { consecutive_failures: u32 },
    Open { since_ns: u64 },
    HalfOpen,
}

/// Consecutive-failure circuit breaker for one backend.
#[derive(Debug)]
pub struct CircuitBreaker {
    backend: String,
    threshold: u32,
    cooldown_ms: u64,
    inner: Mutex<Inner>,
    transitions: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker for `backend` that opens after `threshold` consecutive
    /// failures and cools down for `cooldown_ms` virtual milliseconds.
    pub fn new(backend: impl Into<String>, threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        assert!(threshold > 0, "breaker threshold must be positive");
        CircuitBreaker {
            backend: backend.into(),
            threshold,
            cooldown_ms,
            inner: Mutex::new(Inner::Closed {
                consecutive_failures: 0,
            }),
            transitions: AtomicU64::new(0),
        }
    }

    /// Backend label the breaker guards.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Current state (resolving an elapsed cooldown to `HalfOpen`).
    pub fn state(&self, now_ns: u64) -> BreakerState {
        match &*self.inner.lock().unwrap() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::HalfOpen => BreakerState::HalfOpen,
            Inner::Open { since_ns } => {
                if now_ns.saturating_sub(*since_ns) >= self.cooldown_ms * 1_000_000 {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Number of state transitions so far (trips, probes, closes).
    /// Identical across two runs with the same fault plan — the
    /// determinism tests compare exactly this.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Asks whether a call may proceed at virtual time `now_ns`. An open
    /// breaker whose cooldown has elapsed admits the call as a half-open
    /// probe.
    pub fn allow(&self, now_ns: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match &*inner {
            Inner::Closed { .. } | Inner::HalfOpen => true,
            Inner::Open { since_ns } => {
                if now_ns.saturating_sub(*since_ns) >= self.cooldown_ms * 1_000_000 {
                    *inner = Inner::HalfOpen;
                    self.transitions.fetch_add(1, Ordering::Relaxed);
                    em_obs::event!(info, "faults.breaker_probe", backend = self.backend.as_str());
                    true
                } else {
                    em_obs::metrics::counter("faults.breaker_short_circuited").inc();
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the breaker and resets the
    /// failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !matches!(
            &*inner,
            Inner::Closed {
                consecutive_failures: 0
            }
        ) {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        *inner = Inner::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records a failed call at virtual time `now_ns`; trips the breaker
    /// when the consecutive-failure streak reaches the threshold, and
    /// re-opens immediately on a failed half-open probe.
    pub fn record_failure(&self, now_ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        let open = match &mut *inner {
            Inner::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                *consecutive_failures >= self.threshold
            }
            Inner::HalfOpen => true,
            Inner::Open { .. } => false,
        };
        if open {
            *inner = Inner::Open { since_ns: now_ns };
            self.transitions.fetch_add(1, Ordering::Relaxed);
            em_obs::metrics::counter("faults.breaker_opened").inc();
            em_obs::event!(warn, "faults.breaker_open", backend = self.backend.as_str());
        }
    }

    /// Forces the breaker open at `now_ns` (chaos drills and tests).
    pub fn force_open(&self, now_ns: u64) {
        *self.inner.lock().unwrap() = Inner::Open { since_ns: now_ns };
        self.transitions.fetch_add(1, Ordering::Relaxed);
        em_obs::metrics::counter("faults.breaker_opened").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new("GPT-4", 3, 1_000);
        assert!(b.allow(0));
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        assert!(!b.allow(10));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new("GPT-4", 2, 1_000);
        b.record_failure(0);
        b.record_success();
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_a_half_open_probe() {
        let b = CircuitBreaker::new("GPT-4", 1, 1_000);
        b.record_failure(0);
        assert!(!b.allow(999 * 1_000_000));
        // Cooldown elapsed → one probe admitted.
        assert!(b.allow(1_000 * 1_000_000));
        assert_eq!(b.state(1_000 * 1_000_000), BreakerState::HalfOpen);
        // Probe succeeds → closed again.
        b.record_success();
        assert_eq!(b.state(1_000 * 1_000_000), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let now = 2_000 * 1_000_000;
        let b = CircuitBreaker::new("GPT-4", 1, 1_000);
        b.record_failure(0);
        assert!(b.allow(now)); // probe
        b.record_failure(now);
        assert_eq!(b.state(now), BreakerState::Open);
        assert!(!b.allow(now + 1));
    }

    #[test]
    fn force_open_rejects_immediately() {
        let b = CircuitBreaker::new("GPT-4", 99, 1_000);
        b.force_open(0);
        assert!(!b.allow(1));
        assert_eq!(b.state(1), BreakerState::Open);
    }

    #[test]
    fn transitions_count_state_changes() {
        let b = CircuitBreaker::new("GPT-4", 1, 1_000);
        let t0 = b.transitions();
        b.record_failure(0); // closed → open
        assert!(b.allow(1_000 * 1_000_000)); // open → half-open
        b.record_success(); // half-open → closed
        assert_eq!(b.transitions() - t0, 3);
    }
}
