//! Virtual time.
//!
//! Backoff sleeps are *accounted*, never slept: a [`VirtualClock`] is an
//! atomic nanosecond counter that retry loops advance by their computed
//! delays. Tests (and the tier-1 chaos smoke) assert on the accumulated
//! virtual time — "the retry schedule" — without ever blocking a thread,
//! and the breaker's cooldown window is measured against the same clock,
//! so breaker transitions are deterministic too.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock in nanoseconds.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock(AtomicU64::new(0))
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock by `delta_ns` (a "sleep") and returns the new
    /// time.
    pub fn advance_ns(&self, delta_ns: u64) -> u64 {
        self.0.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Advances by whole milliseconds (the unit backoff policies use).
    pub fn advance_ms(&self, delta_ms: u64) -> u64 {
        self.advance_ns(delta_ms.saturating_mul(1_000_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance_ms(3), 3_000_000);
        assert_eq!(c.advance_ns(500), 3_000_500);
        assert_eq!(c.now_ns(), 3_000_500);
    }

    #[test]
    fn concurrent_advances_are_lossless() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.advance_ns(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4000);
    }
}
