//! The failure vocabulary of a hosted-LLM call.

use std::fmt;

/// Errors a hosted-model client can produce — injected by a
/// [`crate::FaultPlan`] in chaos runs, or surfaced by the resilience layer
/// itself (breaker open, retry budget exhausted).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// HTTP 429-style rejection; the server suggests a minimum wait.
    RateLimited {
        /// Server-suggested minimum delay before the next attempt.
        retry_after_ms: u64,
    },
    /// The request exceeded its per-request timeout.
    Timeout {
        /// How long the request ran before being cut off.
        after_ms: u64,
    },
    /// HTTP 5xx-style transient server error.
    Transient(String),
    /// The response arrived but failed validation (wrong cardinality,
    /// non-finite scores, unparseable payload).
    Malformed(String),
    /// The per-backend circuit breaker is open; the call was rejected
    /// locally without reaching the backend.
    BreakerOpen {
        /// Backend label the breaker guards.
        backend: String,
    },
    /// Every retry attempt failed; carries the final underlying error.
    RetriesExhausted {
        /// Number of attempts made (including the first).
        attempts: u32,
        /// The last error observed.
        last: Box<FaultError>,
    },
    /// Retrying would exceed the per-call deadline budget.
    DeadlineExceeded {
        /// The configured budget that would have been exceeded.
        budget_ms: u64,
    },
}

impl FaultError {
    /// `true` for faults that a retry may plausibly clear (rate limits,
    /// timeouts, transient server errors, malformed responses); `false`
    /// for the resilience layer's own terminal verdicts.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FaultError::RateLimited { .. }
                | FaultError::Timeout { .. }
                | FaultError::Transient(_)
                | FaultError::Malformed(_)
        )
    }

    /// Short kind label used in metrics and trace events.
    pub fn kind_label(&self) -> &'static str {
        match self {
            FaultError::RateLimited { .. } => "rate-limit",
            FaultError::Timeout { .. } => "timeout",
            FaultError::Transient(_) => "transient",
            FaultError::Malformed(_) => "malformed",
            FaultError::BreakerOpen { .. } => "breaker-open",
            FaultError::RetriesExhausted { .. } => "retries-exhausted",
            FaultError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms}ms)")
            }
            FaultError::Timeout { after_ms } => write!(f, "request timed out after {after_ms}ms"),
            FaultError::Transient(msg) => write!(f, "transient backend error: {msg}"),
            FaultError::Malformed(msg) => write!(f, "malformed response: {msg}"),
            FaultError::BreakerOpen { backend } => {
                write!(f, "circuit breaker open for backend `{backend}`")
            }
            FaultError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            FaultError::DeadlineExceeded { budget_ms } => {
                write!(f, "call deadline budget of {budget_ms}ms exceeded")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_partitions_the_vocabulary() {
        assert!(FaultError::RateLimited { retry_after_ms: 5 }.is_retryable());
        assert!(FaultError::Timeout { after_ms: 9 }.is_retryable());
        assert!(FaultError::Transient("500".into()).is_retryable());
        assert!(FaultError::Malformed("short".into()).is_retryable());
        assert!(!FaultError::BreakerOpen {
            backend: "GPT-4".into()
        }
        .is_retryable());
        assert!(!FaultError::DeadlineExceeded { budget_ms: 1 }.is_retryable());
        assert!(!FaultError::RetriesExhausted {
            attempts: 3,
            last: Box::new(FaultError::Timeout { after_ms: 1 }),
        }
        .is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = FaultError::RetriesExhausted {
            attempts: 4,
            last: Box::new(FaultError::RateLimited { retry_after_ms: 250 }),
        };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains("rate limited"), "{s}");
        assert!(FaultError::BreakerOpen {
            backend: "SOLAR".into()
        }
        .to_string()
        .contains("SOLAR"));
    }
}
