//! # em-faults — deterministic fault injection and resilience primitives
//!
//! The paper's best matchers (MatchGPT over the GPT series) run against
//! hosted APIs that rate-limit, time out, and return malformed output in
//! production. This crate provides the machinery to *exercise* those
//! failure modes deterministically and to *survive* them:
//!
//! * a seeded [`FaultPlan`] that decides, as a pure function of
//!   `(seed, call key, attempt)`, whether a call faults and how —
//!   configurable from the environment via `EM_FAULTS=seed,rate,kinds`
//!   ([`plan`]);
//! * a [`VirtualClock`] so retry schedules are computed (and asserted on)
//!   without any wall-time sleeps ([`clock`]);
//! * exponential backoff with decorrelated jitter, again a pure function
//!   of the seed and attempt ([`backoff`]);
//! * a consecutive-failure [`CircuitBreaker`] with open/half-open/closed
//!   states over virtual time ([`breaker`]);
//! * a retry executor combining all of the above with a per-call deadline
//!   budget ([`retry`]).
//!
//! Everything is deterministic by construction: the same `EM_FAULTS`
//! specification yields the same injected faults, the same backoff
//! delays, and the same breaker transitions, so a chaos run can be gated
//! on *exact* metric equality with the fault-free baseline.
//!
//! Observability: injection, retry, breaker, and degradation activity is
//! recorded through the always-on `faults.*` counters in
//! [`em_obs::metrics`] (these sit on failure paths, never on scoring hot
//! loops, so they are not gated on capture).

pub mod backoff;
pub mod breaker;
pub mod clock;
pub mod error;
pub mod plan;
pub mod retry;

pub use backoff::BackoffPolicy;
pub use breaker::{BreakerState, CircuitBreaker};
pub use clock::VirtualClock;
pub use error::FaultError;
pub use plan::{FaultKind, FaultPlan};
pub use retry::{call_with_retries, RetryContext};

/// SplitMix64 finalizer: the bit mixer behind every deterministic decision
/// in this crate (fault rolls, jitter, injected delay magnitudes).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash onto the unit interval `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_nearby_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "nearby inputs must diverge");
    }

    #[test]
    fn unit_f64_stays_in_range() {
        for x in [0u64, 1, u64::MAX, 0xdead_beef] {
            let u = unit_f64(mix64(x));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}
