//! Seeded, configuration-driven fault plans.
//!
//! A [`FaultPlan`] decides whether one call attempt faults — and with
//! which [`FaultKind`] — as a *pure function* of `(plan seed, call key,
//! attempt)`. No shared RNG state means no cross-thread ordering effects:
//! the injected fault schedule is identical no matter how chunks are
//! scheduled, which is what lets chaos runs be gated on exact metric
//! equality with the fault-free baseline.

use crate::{mix64, unit_f64};

/// The four production failure modes of a hosted-LLM API that the plan can
/// inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// HTTP 429: the request is rejected with a suggested retry delay.
    RateLimit,
    /// The request hangs past its timeout and is cut off.
    Timeout,
    /// HTTP 5xx: a transient server-side error.
    Transient,
    /// The response arrives but is corrupted (wrong cardinality or
    /// non-finite scores) — it must be *detected* by the client, not
    /// handed an error.
    Malformed,
}

impl FaultKind {
    /// Every kind, in the order used for kind selection.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::RateLimit,
        FaultKind::Timeout,
        FaultKind::Transient,
        FaultKind::Malformed,
    ];

    /// Spec/metric token for the kind (`EM_FAULTS` uses these).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RateLimit => "rate-limit",
            FaultKind::Timeout => "timeout",
            FaultKind::Transient => "transient",
            FaultKind::Malformed => "malformed",
        }
    }

    fn parse(token: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.label() == token)
    }
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// Builds a plan injecting `kinds` at probability `rate` per attempt.
    pub fn new(seed: u64, rate: f64, kinds: Vec<FaultKind>) -> Result<FaultPlan, String> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        if kinds.is_empty() {
            return Err("fault plan needs at least one kind".into());
        }
        Ok(FaultPlan { seed, rate, kinds })
    }

    /// Parses the `EM_FAULTS` specification `seed,rate,kinds` where
    /// `kinds` is `all` or a `+`-joined subset of the kind labels, e.g.
    /// `42,0.1,all` or `7,0.25,rate-limit+timeout`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let parts: Vec<&str> = spec.trim().split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "expected `seed,rate,kinds`, got `{spec}` ({} fields)",
                parts.len()
            ));
        }
        let seed: u64 = parts[0]
            .trim()
            .parse()
            .map_err(|e| format!("bad seed `{}`: {e}", parts[0]))?;
        let rate: f64 = parts[1]
            .trim()
            .parse()
            .map_err(|e| format!("bad rate `{}`: {e}", parts[1]))?;
        let kinds_spec = parts[2].trim();
        let kinds = if kinds_spec == "all" {
            FaultKind::ALL.to_vec()
        } else {
            kinds_spec
                .split('+')
                .map(|t| {
                    FaultKind::parse(t.trim())
                        .ok_or_else(|| format!("unknown fault kind `{}`", t.trim()))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        FaultPlan::new(seed, rate, kinds)
    }

    /// Reads the plan from the `EM_FAULTS` environment variable. Returns
    /// `None` when the variable is absent or empty; panics on a malformed
    /// specification (a configuration error should fail fast, not
    /// silently run fault-free).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("EM_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("invalid EM_FAULTS: {e}")))
    }

    /// Plan seed (also seeds the backoff jitter of resilient clients).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-attempt fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Enabled fault kinds.
    pub fn kinds(&self) -> &[FaultKind] {
        &self.kinds
    }

    /// Decides the fault (if any) for one call attempt. Pure: the same
    /// `(seed, key, attempt)` always yields the same outcome, independent
    /// of thread scheduling or call interleaving.
    pub fn fault_for(&self, key: u64, attempt: u32) -> Option<FaultKind> {
        let roll = mix64(self.seed ^ key.rotate_left(17) ^ (u64::from(attempt) << 48));
        if unit_f64(roll) >= self.rate {
            return None;
        }
        let pick = mix64(roll ^ 0x6b69_6e64); // "kind"
        Some(self.kinds[(pick % self.kinds.len() as u64) as usize])
    }

    /// Deterministic auxiliary magnitude for an injected fault (used for
    /// `retry_after` hints, timeout durations, and malformed-corruption
    /// choices), in `[lo, hi)`.
    pub fn magnitude(&self, key: u64, attempt: u32, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let h = mix64(self.seed ^ key ^ (u64::from(attempt) << 40) ^ 0x6d61_676e);
        lo + h % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_readme_examples() {
        let p = FaultPlan::parse("42,0.1,all").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.rate(), 0.1);
        assert_eq!(p.kinds(), &FaultKind::ALL);

        let p = FaultPlan::parse("7, 0.25, rate-limit+timeout").unwrap();
        assert_eq!(p.kinds(), &[FaultKind::RateLimit, FaultKind::Timeout]);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("42,0.1").is_err());
        assert!(FaultPlan::parse("x,0.1,all").is_err());
        assert!(FaultPlan::parse("1,nope,all").is_err());
        assert!(FaultPlan::parse("1,1.5,all").is_err());
        assert!(FaultPlan::parse("1,0.5,gremlins").is_err());
    }

    #[test]
    fn fault_decision_is_a_pure_function() {
        let p = FaultPlan::parse("9,0.5,all").unwrap();
        for key in 0..64u64 {
            for attempt in 0..4u32 {
                assert_eq!(p.fault_for(key, attempt), p.fault_for(key, attempt));
            }
        }
    }

    #[test]
    fn rate_zero_never_faults_and_rate_one_always_faults() {
        let zero = FaultPlan::new(3, 0.0, FaultKind::ALL.to_vec()).unwrap();
        let one = FaultPlan::new(3, 1.0, FaultKind::ALL.to_vec()).unwrap();
        for key in 0..256u64 {
            assert_eq!(zero.fault_for(key, 0), None);
            assert!(one.fault_for(key, 0).is_some());
        }
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let p = FaultPlan::new(11, 0.1, FaultKind::ALL.to_vec()).unwrap();
        let faults = (0..10_000u64).filter(|&k| p.fault_for(k, 0).is_some()).count();
        // 10% ± a generous tolerance over 10k deterministic rolls.
        assert!((800..1200).contains(&faults), "observed {faults}/10000");
    }

    #[test]
    fn all_enabled_kinds_occur() {
        let p = FaultPlan::new(5, 1.0, FaultKind::ALL.to_vec()).unwrap();
        for kind in FaultKind::ALL {
            assert!(
                (0..128u64).any(|k| p.fault_for(k, 0) == Some(kind)),
                "kind {kind:?} never selected"
            );
        }
    }

    #[test]
    fn restricted_plans_only_inject_their_kinds() {
        let p = FaultPlan::parse("2,1.0,malformed").unwrap();
        for key in 0..64u64 {
            assert_eq!(p.fault_for(key, 0), Some(FaultKind::Malformed));
        }
    }

    #[test]
    fn different_attempts_roll_independently() {
        let p = FaultPlan::new(1, 0.5, FaultKind::ALL.to_vec()).unwrap();
        let per_attempt: Vec<bool> = (0..32u32).map(|a| p.fault_for(77, a).is_some()).collect();
        assert!(per_attempt.iter().any(|&f| f) && per_attempt.iter().any(|&f| !f));
    }

    #[test]
    fn magnitude_stays_in_range() {
        let p = FaultPlan::new(0, 1.0, FaultKind::ALL.to_vec()).unwrap();
        for key in 0..64u64 {
            let m = p.magnitude(key, 1, 50, 1000);
            assert!((50..1000).contains(&m));
        }
    }
}
