//! The retry executor: backoff + breaker + deadline, over virtual time.

use crate::backoff::BackoffPolicy;
use crate::breaker::CircuitBreaker;
use crate::clock::VirtualClock;
use crate::error::FaultError;

/// Everything a resilient call needs, borrowed from the owning client.
pub struct RetryContext<'a> {
    /// Backoff/deadline policy.
    pub policy: &'a BackoffPolicy,
    /// Per-backend breaker consulted before every attempt.
    pub breaker: &'a CircuitBreaker,
    /// Virtual clock advanced by backoff sleeps.
    pub clock: &'a VirtualClock,
    /// Seed for the deterministic jitter (normally the fault-plan seed).
    pub seed: u64,
}

/// Runs `op` with retries under the context's policy.
///
/// `op` receives the attempt number (0-based) and returns either the
/// value or a [`FaultError`]. Retryable errors trigger a backoff sleep on
/// the virtual clock and another attempt, until the policy's attempt or
/// deadline budget runs out; the breaker is consulted before each attempt
/// and fed the outcome of every attempt that reached the backend.
///
/// Rate-limit errors honor the server's `retry_after_ms` as a floor on
/// the next delay.
pub fn call_with_retries<T>(
    ctx: &RetryContext<'_>,
    key: u64,
    mut op: impl FnMut(u32) -> Result<T, FaultError>,
) -> Result<T, FaultError> {
    let start_ns = ctx.clock.now_ns();
    let mut prev_delay_ms = ctx.policy.base_ms;
    let mut last_err = None;
    for attempt in 0..ctx.policy.max_attempts {
        if !ctx.breaker.allow(ctx.clock.now_ns()) {
            return Err(FaultError::BreakerOpen {
                backend: ctx.breaker.backend().to_owned(),
            });
        }
        match op(attempt) {
            Ok(v) => {
                ctx.breaker.record_success();
                if attempt > 0 {
                    em_obs::metrics::counter("faults.recovered").inc();
                }
                return Ok(v);
            }
            Err(e) if e.is_retryable() => {
                ctx.breaker.record_failure(ctx.clock.now_ns());
                em_obs::event!(
                    warn,
                    "faults.attempt_failed",
                    backend = ctx.breaker.backend(),
                    kind = e.kind_label(),
                    attempt = attempt as usize
                );
                let mut delay_ms = ctx.policy.delay_ms(ctx.seed, key, attempt + 1, prev_delay_ms);
                if let FaultError::RateLimited { retry_after_ms } = e {
                    delay_ms = delay_ms.max(retry_after_ms);
                }
                let elapsed_ms = ctx.clock.now_ns().saturating_sub(start_ns) / 1_000_000;
                if elapsed_ms + delay_ms > ctx.policy.deadline_ms {
                    em_obs::metrics::counter("faults.deadline_exceeded").inc();
                    return Err(FaultError::DeadlineExceeded {
                        budget_ms: ctx.policy.deadline_ms,
                    });
                }
                em_obs::metrics::counter("faults.retries").inc();
                ctx.clock.advance_ms(delay_ms);
                prev_delay_ms = delay_ms;
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    em_obs::metrics::counter("faults.exhausted").inc();
    Err(FaultError::RetriesExhausted {
        attempts: ctx.policy.max_attempts,
        last: Box::new(last_err.unwrap_or_else(|| {
            // max_attempts >= 1 and the loop only exits after a retryable
            // failure, so an error was always recorded.
            FaultError::Transient("no attempt recorded".into())
        })),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        policy: &'a BackoffPolicy,
        breaker: &'a CircuitBreaker,
        clock: &'a VirtualClock,
    ) -> RetryContext<'a> {
        RetryContext {
            policy,
            breaker,
            clock,
            seed: 42,
        }
    }

    #[test]
    fn first_attempt_success_costs_no_virtual_time() {
        let policy = BackoffPolicy::default();
        let breaker = CircuitBreaker::new("b", 5, 30_000);
        let clock = VirtualClock::new();
        let out = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |_| Ok::<_, FaultError>(7));
        assert_eq!(out.unwrap(), 7);
        assert_eq!(clock.now_ns(), 0);
    }

    #[test]
    fn transient_failures_are_retried_until_success() {
        let policy = BackoffPolicy::default();
        let breaker = CircuitBreaker::new("b", 10, 30_000);
        let clock = VirtualClock::new();
        let out = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |attempt| {
            if attempt < 3 {
                Err(FaultError::Transient("503".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert!(clock.now_ns() > 0, "backoff must advance the virtual clock");
    }

    #[test]
    fn attempts_budget_is_enforced() {
        let policy = BackoffPolicy {
            max_attempts: 4,
            ..BackoffPolicy::default()
        };
        let breaker = CircuitBreaker::new("b", 100, 30_000);
        let clock = VirtualClock::new();
        let mut calls = 0;
        let out: Result<(), _> = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |_| {
            calls += 1;
            Err(FaultError::Timeout { after_ms: 10 })
        });
        assert_eq!(calls, 4);
        match out.unwrap_err() {
            FaultError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 4);
                assert!(matches!(*last, FaultError::Timeout { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let policy = BackoffPolicy {
            base_ms: 200,
            cap_ms: 200,
            max_attempts: 100,
            deadline_ms: 500,
        };
        let breaker = CircuitBreaker::new("b", 1000, 30_000);
        let clock = VirtualClock::new();
        let out: Result<(), _> = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |_| {
            Err(FaultError::Transient("500".into()))
        });
        assert!(matches!(
            out.unwrap_err(),
            FaultError::DeadlineExceeded { budget_ms: 500 }
        ));
        // Two 200ms sleeps fit in the 500ms budget; a third does not.
        assert_eq!(clock.now_ns(), 400 * 1_000_000);
    }

    #[test]
    fn rate_limit_retry_after_floors_the_delay() {
        let policy = BackoffPolicy {
            base_ms: 1,
            cap_ms: 5,
            max_attempts: 2,
            deadline_ms: 60_000,
        };
        let breaker = CircuitBreaker::new("b", 100, 30_000);
        let clock = VirtualClock::new();
        let _ = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |attempt| {
            if attempt == 0 {
                Err(FaultError::RateLimited {
                    retry_after_ms: 750,
                })
            } else {
                Ok(())
            }
        });
        assert!(clock.now_ns() >= 750 * 1_000_000, "{}", clock.now_ns());
    }

    #[test]
    fn open_breaker_short_circuits_without_calling_op() {
        let policy = BackoffPolicy::default();
        let breaker = CircuitBreaker::new("gpt", 1, 60_000);
        let clock = VirtualClock::new();
        breaker.force_open(clock.now_ns());
        let mut calls = 0;
        let out: Result<(), _> = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 0);
        assert!(matches!(out.unwrap_err(), FaultError::BreakerOpen { .. }));
    }

    #[test]
    fn non_retryable_errors_pass_through() {
        let policy = BackoffPolicy::default();
        let breaker = CircuitBreaker::new("b", 100, 30_000);
        let clock = VirtualClock::new();
        let mut calls = 0;
        let out: Result<(), _> = call_with_retries(&ctx(&policy, &breaker, &clock), 1, |_| {
            calls += 1;
            Err(FaultError::BreakerOpen {
                backend: "inner".into(),
            })
        });
        assert_eq!(calls, 1);
        assert!(matches!(out.unwrap_err(), FaultError::BreakerOpen { .. }));
    }

    #[test]
    fn retry_schedule_is_deterministic() {
        let run = || {
            let policy = BackoffPolicy::default();
            let breaker = CircuitBreaker::new("b", 100, 30_000);
            let clock = VirtualClock::new();
            let _ = call_with_retries(&ctx(&policy, &breaker, &clock), 33, |attempt| {
                if attempt < 4 {
                    Err(FaultError::Transient("x".into()))
                } else {
                    Ok(())
                }
            });
            clock.now_ns()
        };
        assert_eq!(run(), run());
        assert!(run() > 0);
    }
}
