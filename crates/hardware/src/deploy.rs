//! The deployment simulator: memory footprint → model parallelism → max
//! batch search → throughput, reproducing the mechanics behind Table 5.
//!
//! The pipeline mirrors the paper's experimental procedure:
//! 1. weights are deployed at 16-bit precision; if they exceed one GPU's
//!    memory, the model is distributed over 2, then 4 GPUs;
//! 2. the maximum usable batch size is found "by testing exponentially
//!    growing batch sizes and checking for memory issues";
//! 3. throughput is measured at that batch size; methods not using all four
//!    GPUs are extrapolated linearly ("our inference is embarrassingly
//!    parallel").

use crate::gpu::Machine;
use crate::profile::{ArchClass, ModelProfile, BENCH_SEQ_LEN};

/// Fraction of device memory usable for weights+activations (allocator and
/// framework overhead).
const USABLE_MEMORY_FRACTION: f64 = 0.97;

/// Framework cap on batch size (the paper's searches stop at 8192).
const MAX_BATCH: usize = 8192;

/// Base compute utilization by model scale: small models are launch-bound,
/// mid-size dense models hit the tensor-core sweet spot, very large models
/// lose some efficiency to memory traffic. Calibrated once against Table 5.
fn base_utilization(params_millions: f64) -> f64 {
    if params_millions < 500.0 {
        0.16
    } else if params_millions < 20_000.0 {
        0.55
    } else {
        0.50
    }
}

/// Multiplicative efficiency penalty per additional model-parallel GPU
/// (activation transfers between devices).
const MODEL_PARALLEL_PENALTY: f64 = 0.60;

/// Efficiency penalty of a MoE prediction head (routing after the dense
/// encoder, halved effective batching — Unicorn's DeBERTa).
const MOE_HEAD_PENALTY: f64 = 0.31;

/// Efficiency penalty of fully sparse MoE routing (Mixtral).
const MOE_SPARSE_PENALTY: f64 = 0.16;

/// Result of deploying one model on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// Weights memory at fp16, GiB.
    pub ram_gib: f64,
    /// GPUs one replica occupies (model parallelism degree).
    pub gpus_per_replica: usize,
    /// Replicas that fit on the machine.
    pub replicas: usize,
    /// Maximum batch size per replica (power of two).
    pub max_batch: usize,
    /// Machine-level throughput in tokens/s.
    pub tokens_per_s: f64,
}

/// fp16 weight footprint in GiB.
pub fn weights_ram_gib(profile: &ModelProfile) -> f64 {
    profile
        .reported_ram_gib
        .unwrap_or(profile.params_millions * 1e6 * 2.0 / (1024.0 * 1024.0 * 1024.0))
}

/// Per-example activation footprint in GiB at the benchmark sequence
/// length.
pub fn activation_gib_per_example(profile: &ModelProfile) -> f64 {
    let bytes = profile.layers as f64
        * profile.hidden as f64
        * BENCH_SEQ_LEN as f64
        * 2.0
        * profile.activation_mult;
    bytes / (1024.0 * 1024.0 * 1024.0)
}

/// Number of GPUs required to hold the weights.
pub fn gpus_required(profile: &ModelProfile, machine: &Machine) -> usize {
    let per_gpu = machine.gpu.memory_gib * USABLE_MEMORY_FRACTION;
    let needed = (weights_ram_gib(profile) / per_gpu).ceil() as usize;
    needed.max(1).next_power_of_two()
}

/// Exponential batch-size search: the largest power of two whose
/// activations fit in the memory left after the weights.
pub fn max_batch(profile: &ModelProfile, machine: &Machine) -> usize {
    let gpus = gpus_required(profile, machine);
    let budget =
        machine.gpu.memory_gib * USABLE_MEMORY_FRACTION * gpus as f64 - weights_ram_gib(profile);
    let act = activation_gib_per_example(profile);
    let mut batch = 1usize;
    while batch < MAX_BATCH && (batch * 2) as f64 * act <= budget {
        batch *= 2;
    }
    batch
}

/// Deploys the model on a machine and derives all Table 5 quantities.
pub fn deploy(profile: &ModelProfile, machine: &Machine) -> Deployment {
    let gpus_per_replica = gpus_required(profile, machine);
    assert!(
        gpus_per_replica <= machine.gpus,
        "{} does not fit on {} GPUs",
        profile.name,
        machine.gpus
    );
    let replicas = machine.gpus / gpus_per_replica;
    let batch = max_batch(profile, machine);

    // Throughput model: effective FLOPs per token = 2·active-params.
    let active_params = match profile.arch {
        // Sparse MoE activates roughly a quarter of its parameters.
        ArchClass::MoeSparse => profile.params_millions * 0.25,
        _ => profile.params_millions,
    };
    let flops_per_token = 2.0 * active_params * 1e6;
    let mut util = base_utilization(profile.params_millions);
    match profile.arch {
        ArchClass::MoeHead => util *= MOE_HEAD_PENALTY,
        ArchClass::MoeSparse => util *= MOE_SPARSE_PENALTY,
        _ => {}
    }
    util *= MODEL_PARALLEL_PENALTY.powi(gpus_per_replica as i32 - 1);
    let tokens_per_s = machine.total_tflops() * 1e12 * util / flops_per_token;

    Deployment {
        ram_gib: weights_ram_gib(profile),
        gpus_per_replica,
        replicas,
        max_batch: batch,
        tokens_per_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_by_name, TABLE5_MODELS};

    fn node() -> Machine {
        Machine::hpc_node()
    }

    #[test]
    fn slm_weights_fit_one_gpu() {
        for name in ["BERT", "GPT-2", "DeBERTa", "T5", "LLaMA3.2", "LLaMA2-13B"] {
            let p = profile_by_name(name).unwrap();
            assert_eq!(gpus_required(p, &node()), 1, "{name}");
        }
    }

    #[test]
    fn big_models_need_model_parallelism() {
        assert_eq!(
            gpus_required(profile_by_name("Mixtral-8x7B").unwrap(), &node()),
            2
        );
        assert_eq!(
            gpus_required(profile_by_name("Beluga2").unwrap(), &node()),
            4
        );
        assert_eq!(gpus_required(profile_by_name("SOLAR").unwrap(), &node()), 4);
    }

    #[test]
    fn ram_formula_matches_paper_for_dense_models() {
        // BERT: 110M × 2 B ≈ 0.20 GiB (paper: 0.21).
        let bert = weights_ram_gib(profile_by_name("BERT").unwrap());
        assert!((bert - 0.21).abs() < 0.03, "{bert}");
        // LLaMA2-13B ≈ 24.2 GiB (paper: 24.46).
        let llama = weights_ram_gib(profile_by_name("LLaMA2-13B").unwrap());
        assert!((llama - 24.46).abs() < 0.5, "{llama}");
    }

    #[test]
    fn batch_sizes_match_table5() {
        for p in &TABLE5_MODELS {
            let b = max_batch(p, &node());
            assert_eq!(b, p.paper_batch, "{}: simulated {b}", p.name);
        }
    }

    #[test]
    fn throughput_within_2x_of_paper() {
        for p in &TABLE5_MODELS {
            let d = deploy(p, &node());
            let ratio = d.tokens_per_s / p.paper_tokens_per_s;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: simulated {:.0} vs paper {:.0} (ratio {ratio:.2})",
                p.name,
                d.tokens_per_s,
                p.paper_tokens_per_s
            );
        }
    }

    #[test]
    fn throughput_ordering_matches_table5() {
        // Ditto[BERT] fastest; SOLAR slowest; SLMs ≥ 2 orders of magnitude
        // above the model-parallel LLMs.
        let sim: Vec<(String, f64)> = TABLE5_MODELS
            .iter()
            .map(|p| (p.name.to_owned(), deploy(p, &node()).tokens_per_s))
            .collect();
        let get = |n: &str| sim.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(get("BERT") > get("GPT-2"));
        assert!(get("GPT-2") > get("LLaMA2-13B"));
        assert!(get("LLaMA2-13B") > get("Mixtral-8x7B"));
        assert!(get("Mixtral-8x7B") > get("Beluga2"));
        assert!(get("BERT") / get("SOLAR") > 100.0);
    }

    #[test]
    fn doubling_gpus_doubles_throughput() {
        // The paper's extrapolation: p4d (8 GPUs) = 2× the 4-GPU node.
        let p = profile_by_name("BERT").unwrap();
        let four = deploy(p, &node()).tokens_per_s;
        let eight = deploy(p, &Machine::p4d_24xlarge()).tokens_per_s;
        assert!((eight / four - 2.0).abs() < 1e-9);
    }

    #[test]
    fn replicas_derive_from_parallelism() {
        let d = deploy(profile_by_name("Mixtral-8x7B").unwrap(), &node());
        assert_eq!(d.gpus_per_replica, 2);
        assert_eq!(d.replicas, 2);
        let d = deploy(profile_by_name("BERT").unwrap(), &node());
        assert_eq!(d.replicas, 4);
    }
}
