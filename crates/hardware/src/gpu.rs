//! Accelerator specifications.
//!
//! The study's throughput experiment (Section 4.2.1) runs on a machine with
//! four NVIDIA A100 (40 GB) GPUs; the cost analysis (Section 4.2.2)
//! extrapolates to a p4d.24xlarge cloud instance with eight of the same
//! GPU.

/// A GPU device model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device memory in GiB.
    pub memory_gib: f64,
    /// Dense fp16 peak throughput in TFLOPS.
    pub fp16_tflops: f64,
}

/// NVIDIA A100 with 40 GB HBM2 (the paper's hardware).
pub const A100_40GB: GpuSpec = GpuSpec {
    name: "A100-40GB",
    memory_gib: 40.0,
    fp16_tflops: 312.0,
};

/// A multi-GPU machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Device model.
    pub gpu: GpuSpec,
    /// Number of devices.
    pub gpus: usize,
}

impl Machine {
    /// The paper's academic HPC node: 4×A100-40GB.
    pub fn hpc_node() -> Machine {
        Machine {
            gpu: A100_40GB,
            gpus: 4,
        }
    }

    /// AWS p4d.24xlarge: 8×A100-40GB.
    pub fn p4d_24xlarge() -> Machine {
        Machine {
            gpu: A100_40GB,
            gpus: 8,
        }
    }

    /// Total device memory in GiB.
    pub fn total_memory_gib(&self) -> f64 {
        self.gpu.memory_gib * self.gpus as f64
    }

    /// Total dense fp16 TFLOPS.
    pub fn total_tflops(&self) -> f64 {
        self.gpu.fp16_tflops * self.gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_spec() {
        assert_eq!(A100_40GB.memory_gib, 40.0);
        assert_eq!(A100_40GB.fp16_tflops, 312.0);
    }

    #[test]
    fn machines_aggregate() {
        let node = Machine::hpc_node();
        assert_eq!(node.total_memory_gib(), 160.0);
        assert_eq!(node.total_tflops(), 1248.0);
        let p4d = Machine::p4d_24xlarge();
        assert_eq!(p4d.gpus, 8);
        // p4d has exactly twice the GPUs of the HPC node (the paper's
        // extrapolation factor of 2).
        assert_eq!(p4d.gpus, 2 * node.gpus);
    }
}
