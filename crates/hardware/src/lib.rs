//! # em-hardware — accelerator deployment simulator
//!
//! The paper measures inference throughput on 4×A100-40GB hardware
//! (Table 5), which is unavailable here. This crate *derives* every
//! Table 5 quantity from first principles: fp16 weight footprints, model
//! parallelism requirements, exponential max-batch search against an
//! activation-memory model, and a roofline-style throughput model with
//! model-parallel and MoE penalties. Calibration constants are fitted once
//! against the paper's published measurements and then held fixed; the
//! crate's tests assert that the *derived* batch sizes match Table 5
//! exactly and throughput lands within 2× with the correct ordering.

pub mod deploy;
pub mod gpu;
pub mod profile;

pub use deploy::{
    activation_gib_per_example, deploy, gpus_required, max_batch, weights_ram_gib, Deployment,
};
pub use gpu::{GpuSpec, Machine, A100_40GB};
pub use profile::{profile_by_name, ArchClass, ModelProfile, BENCH_SEQ_LEN, TABLE5_MODELS};
