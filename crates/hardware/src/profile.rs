//! Architecture profiles of the open-weight models in Table 5.
//!
//! Layer counts and hidden sizes are the published architectures; the
//! activation multiplier and utilization class are calibration constants of
//! the simulator (see DESIGN.md §1 — constants are fitted once against the
//! paper's published A100 measurements, then every Table 5 quantity is
//! *derived* from the model).

/// Architecture family, which drives efficiency characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchClass {
    /// Encoder-only classifier (BERT).
    Encoder,
    /// Decoder-only / encoder-decoder LM (GPT-2, T5, LLaMA).
    Decoder,
    /// Mixture-of-experts prediction head on a dense encoder (Unicorn's
    /// DeBERTa): routing overhead only after the encoder.
    MoeHead,
    /// Fully sparse mixture-of-experts transformer (Mixtral): per-layer
    /// routing and poor expert batching.
    MoeSparse,
}

/// Profile of one deployable model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Model name as printed in Table 5.
    pub name: &'static str,
    /// Matcher that uses this model.
    pub used_by: &'static str,
    /// Parameter count in millions.
    pub params_millions: f64,
    /// Transformer layers (published architecture).
    pub layers: usize,
    /// Hidden size (published architecture).
    pub hidden: usize,
    /// Architecture class.
    pub arch: ArchClass,
    /// Activation-memory multiplier (calibrated constant).
    pub activation_mult: f64,
    /// Paper-reported RAM (GiB) — used when the measured footprint deviates
    /// from the fp16-weights formula (e.g. Mixtral's shared layers).
    pub reported_ram_gib: Option<f64>,
    /// Paper-reported throughput (tokens/s, 4×A100) for comparison columns.
    pub paper_tokens_per_s: f64,
    /// Paper-reported max batch size for comparison columns.
    pub paper_batch: usize,
}

/// Sequence length assumed by the throughput experiment (DBGO records).
pub const BENCH_SEQ_LEN: usize = 256;

/// The nine open-weight models of Table 5, in the paper's row order.
pub const TABLE5_MODELS: [ModelProfile; 9] = [
    ModelProfile {
        name: "BERT",
        used_by: "Ditto",
        params_millions: 110.0,
        layers: 12,
        hidden: 768,
        arch: ArchClass::Encoder,
        activation_mult: 1.0,
        reported_ram_gib: None,
        paper_tokens_per_s: 862_001.0,
        paper_batch: 8192,
    },
    ModelProfile {
        name: "GPT-2",
        used_by: "AnyMatch",
        params_millions: 124.0,
        layers: 12,
        hidden: 768,
        arch: ArchClass::Decoder,
        activation_mult: 1.0,
        reported_ram_gib: None,
        paper_tokens_per_s: 693_999.0,
        paper_batch: 8192,
    },
    ModelProfile {
        name: "DeBERTa",
        used_by: "Unicorn",
        params_millions: 143.0,
        layers: 12,
        hidden: 768,
        arch: ArchClass::MoeHead,
        activation_mult: 2.0,
        reported_ram_gib: None,
        paper_tokens_per_s: 216_396.0,
        paper_batch: 4096,
    },
    ModelProfile {
        name: "T5",
        used_by: "AnyMatch",
        params_millions: 220.0,
        layers: 12,
        hidden: 768,
        arch: ArchClass::Decoder,
        activation_mult: 1.05,
        reported_ram_gib: Some(0.54),
        paper_tokens_per_s: 530_656.0,
        paper_batch: 8192,
    },
    ModelProfile {
        name: "LLaMA3.2",
        used_by: "AnyMatch",
        params_millions: 1_300.0,
        layers: 16,
        hidden: 2048,
        arch: ArchClass::Decoder,
        activation_mult: 0.5,
        reported_ram_gib: None,
        paper_tokens_per_s: 264_952.0,
        paper_batch: 4096,
    },
    ModelProfile {
        name: "LLaMA2-13B",
        used_by: "Jellyfish",
        params_millions: 13_000.0,
        layers: 40,
        hidden: 5120,
        arch: ArchClass::Decoder,
        activation_mult: 1.0,
        reported_ram_gib: None,
        paper_tokens_per_s: 26_721.0,
        paper_batch: 128,
    },
    ModelProfile {
        name: "Mixtral-8x7B",
        used_by: "MatchGPT",
        params_millions: 56_000.0,
        layers: 32,
        hidden: 4096,
        arch: ArchClass::MoeSparse,
        activation_mult: 1.5,
        reported_ram_gib: Some(73.73),
        paper_tokens_per_s: 2_108.0,
        paper_batch: 32,
    },
    ModelProfile {
        name: "Beluga2",
        used_by: "MatchGPT",
        params_millions: 70_000.0,
        layers: 80,
        hidden: 8192,
        arch: ArchClass::Decoder,
        activation_mult: 1.5,
        reported_ram_gib: None,
        paper_tokens_per_s: 1_079.0,
        paper_batch: 32,
    },
    ModelProfile {
        name: "SOLAR",
        used_by: "MatchGPT",
        params_millions: 70_000.0,
        layers: 48,
        hidden: 8192,
        arch: ArchClass::Decoder,
        activation_mult: 1.5,
        reported_ram_gib: None,
        paper_tokens_per_s: 752.0,
        paper_batch: 64,
    },
];

/// Looks a profile up by name.
pub fn profile_by_name(name: &str) -> Option<&'static ModelProfile> {
    TABLE5_MODELS.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_models_in_table5_order() {
        assert_eq!(TABLE5_MODELS.len(), 9);
        assert_eq!(TABLE5_MODELS[0].name, "BERT");
        assert_eq!(TABLE5_MODELS[8].name, "SOLAR");
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("LLaMA2-13B").is_some());
        assert!(profile_by_name("GPT-5").is_none());
    }

    #[test]
    fn params_are_ascending_except_moe_quirks() {
        // Table 5 is sorted by parameter count.
        let params: Vec<f64> = TABLE5_MODELS.iter().map(|m| m.params_millions).collect();
        let mut sorted = params.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(params, sorted);
    }

    #[test]
    fn paper_throughputs_span_three_orders_of_magnitude() {
        let max = TABLE5_MODELS
            .iter()
            .map(|m| m.paper_tokens_per_s)
            .fold(0.0f64, f64::max);
        let min = TABLE5_MODELS
            .iter()
            .map(|m| m.paper_tokens_per_s)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1_000.0);
    }
}
