//! Model configurations and the family presets used by the study.
//!
//! The original study runs HuggingFace checkpoints with 110M–1.76T
//! parameters. This reproduction instantiates each family as a *tiny*
//! transformer whose **relative capacity ordering matches the paper**
//! (BERT ≈ GPT-2 < DeBERTa < T5 < LLaMA3.2 < LLaMA2-13B < open LLMs <
//! GPT-4). `claimed_params_millions` carries the paper's published
//! parameter count for the tables and figures; `ModelConfig::actual`
//! capacities are what we train on a laptop CPU.

/// Architecture hyper-parameters of an encoder classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Total vocabulary size (hashed words + specials).
    pub vocab: u32,
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads per block.
    pub n_heads: usize,
    /// FFN hidden size multiplier.
    pub ff_mult: usize,
    /// Maximum sequence length (learned positions).
    pub max_seq: usize,
    /// Dropout probability during training.
    pub dropout: f32,
    /// The parameter count (in millions) the paper reports for this model,
    /// used when printing Tables 3–6 and Figures 3/4.
    pub claimed_params_millions: f64,
}

impl ModelConfig {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} not divisible by heads {}",
                self.d_model, self.n_heads
            ));
        }
        if self.max_seq < 8 {
            return Err("max_seq must be at least 8".into());
        }
        if self.vocab <= 32 {
            return Err("vocab too small".into());
        }
        Ok(())
    }
}

/// The small-language-model families fine-tuned in the study (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlmFamily {
    /// BERT-base (Ditto's encoder), 110M claimed.
    Bert,
    /// GPT-2 (AnyMatch), 124M claimed.
    Gpt2,
    /// DeBERTa (Unicorn's encoder), 143M claimed.
    Deberta,
    /// T5-base (AnyMatch), 220M claimed.
    T5,
    /// LLaMA3.2-1B (AnyMatch), 1,300M claimed.
    Llama32,
    /// LLaMA2-13B (Jellyfish), 13,000M claimed.
    Llama2_13b,
}

impl SlmFamily {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            SlmFamily::Bert => "BERT",
            SlmFamily::Gpt2 => "GPT-2",
            SlmFamily::Deberta => "DeBERTa",
            SlmFamily::T5 => "T5",
            SlmFamily::Llama32 => "LLaMA3.2",
            SlmFamily::Llama2_13b => "LLaMA2-13B",
        }
    }

    /// Tiny-instantiation config preserving the family capacity ordering.
    pub fn config(&self) -> ModelConfig {
        let (d_model, n_layers, n_heads, claimed) = match self {
            SlmFamily::Bert => (24, 1, 2, 110.0),
            SlmFamily::Gpt2 => (24, 1, 2, 124.0),
            SlmFamily::Deberta => (24, 1, 2, 143.0),
            SlmFamily::T5 => (28, 1, 2, 220.0),
            SlmFamily::Llama32 => (40, 2, 2, 1_300.0),
            SlmFamily::Llama2_13b => (44, 2, 2, 13_000.0),
        };
        ModelConfig {
            vocab: 2048,
            d_model,
            n_layers,
            n_heads,
            ff_mult: 2,
            max_seq: 32,
            dropout: 0.0,
            claimed_params_millions: claimed,
        }
    }
}

/// Capability tiers of the prompted large language models (MatchGPT's
/// backends plus the GPT series). Larger tiers get more capacity and more
/// pretraining exposure (see `em_lm::zoo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmTier {
    /// Mixtral-8x7B, 56,000M claimed.
    Mixtral8x7b,
    /// SOLAR-70B, 70,000M claimed.
    Solar,
    /// StableBeluga2-70B, 70,000M claimed.
    Beluga2,
    /// GPT-3.5-Turbo, 175,000M claimed.
    Gpt35Turbo,
    /// GPT-4o-Mini, 8,000M claimed.
    Gpt4oMini,
    /// GPT-4, 1,760,000M claimed (8×220B per the paper's assumption).
    Gpt4,
}

impl LlmTier {
    /// All tiers in Table 3 order.
    pub const ALL: [LlmTier; 6] = [
        LlmTier::Mixtral8x7b,
        LlmTier::Solar,
        LlmTier::Beluga2,
        LlmTier::Gpt4oMini,
        LlmTier::Gpt35Turbo,
        LlmTier::Gpt4,
    ];

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            LlmTier::Mixtral8x7b => "Mixtral-8x7B",
            LlmTier::Solar => "SOLAR",
            LlmTier::Beluga2 => "Beluga2",
            LlmTier::Gpt35Turbo => "GPT-3.5-Turbo",
            LlmTier::Gpt4oMini => "GPT-4o-Mini",
            LlmTier::Gpt4 => "GPT-4",
        }
    }

    /// Claimed parameter count in millions (paper's assumptions).
    pub fn claimed_params_millions(&self) -> f64 {
        match self {
            LlmTier::Mixtral8x7b => 56_000.0,
            LlmTier::Solar | LlmTier::Beluga2 => 70_000.0,
            LlmTier::Gpt35Turbo => 175_000.0,
            LlmTier::Gpt4oMini => 8_000.0,
            LlmTier::Gpt4 => 1_760_000.0,
        }
    }

    /// Tiny-instantiation config. Sequence budget is larger than the SLM
    /// families because prompts may carry in-context demonstrations.
    pub fn config(&self) -> ModelConfig {
        // Capability ordering (paper's Table 3 means):
        // GPT-3.5 < Mixtral ≈ SOLAR < Beluga2 < GPT-4o-mini < GPT-4.
        let (d_model, n_layers) = match self {
            LlmTier::Gpt35Turbo => (24, 1),
            LlmTier::Mixtral8x7b => (28, 1),
            LlmTier::Solar => (28, 1),
            LlmTier::Beluga2 => (32, 1),
            LlmTier::Gpt4oMini => (40, 2),
            LlmTier::Gpt4 => (48, 2),
        };
        ModelConfig {
            vocab: 4096,
            d_model,
            n_layers,
            n_heads: 2,
            ff_mult: 2,
            max_seq: 64,
            dropout: 0.0,
            claimed_params_millions: self.claimed_params_millions(),
        }
    }

    /// Number of synthetic pretraining examples the tier is exposed to
    /// (scales with capability).
    pub fn pretrain_examples(&self) -> usize {
        match self {
            LlmTier::Gpt35Turbo => 2_000,
            LlmTier::Mixtral8x7b => 4_000,
            LlmTier::Solar => 4_500,
            LlmTier::Beluga2 => 6_000,
            LlmTier::Gpt4oMini => 9_000,
            LlmTier::Gpt4 => 12_000,
        }
    }

    /// Pretraining epochs per tier (stronger tiers train longer).
    pub fn pretrain_epochs(&self) -> usize {
        match self {
            LlmTier::Gpt35Turbo | LlmTier::Mixtral8x7b | LlmTier::Solar => 2,
            LlmTier::Beluga2 => 2,
            LlmTier::Gpt4oMini | LlmTier::Gpt4 => 3,
        }
    }

    /// Query-side token budget at prompting time: how much of each record
    /// the tier effectively attends to. Weaker models extract less usable
    /// information from long serialized records — the second capability
    /// knob of the substitution (with [`Self::label_noise`]).
    pub fn query_side_budget(&self) -> usize {
        match self {
            LlmTier::Gpt35Turbo => 6,
            LlmTier::Mixtral8x7b => 8,
            LlmTier::Solar => 8,
            LlmTier::Beluga2 => 10,
            LlmTier::Gpt4oMini => 13,
            LlmTier::Gpt4 => 16,
        }
    }

    /// Label-noise rate of the tier's pretraining corpus. This is the
    /// primary capability knob of the substitution: a weaker commercial
    /// model is modelled as one whose internalized matching knowledge is
    /// noisier. Rates are calibrated so the zero-shot means reproduce the
    /// paper's Table 3 ordering (GPT-3.5 < Mixtral < SOLAR < Beluga2 <
    /// GPT-4o-Mini < GPT-4).
    pub fn label_noise(&self) -> f64 {
        match self {
            LlmTier::Gpt35Turbo => 0.22,
            LlmTier::Mixtral8x7b => 0.14,
            LlmTier::Solar => 0.13,
            LlmTier::Beluga2 => 0.09,
            LlmTier::Gpt4oMini => 0.04,
            LlmTier::Gpt4 => 0.01,
        }
    }

    /// Fraction of pretraining sequences rendered in demonstration format
    /// (in-context examples followed by a query). Only the strongest tier
    /// has seen enough demo-formatted data to *benefit* from demonstrations
    /// at inference time — this reproduces the Table 4 effect.
    pub fn demo_format_fraction(&self) -> f64 {
        match self {
            LlmTier::Gpt4 => 0.35,
            LlmTier::Gpt4oMini => 0.15,
            _ => 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_slm_configs_validate() {
        for fam in [
            SlmFamily::Bert,
            SlmFamily::Gpt2,
            SlmFamily::Deberta,
            SlmFamily::T5,
            SlmFamily::Llama32,
            SlmFamily::Llama2_13b,
        ] {
            fam.config().validate().unwrap();
        }
    }

    #[test]
    fn all_llm_configs_validate() {
        for tier in LlmTier::ALL {
            tier.config().validate().unwrap();
        }
    }

    #[test]
    fn capacity_ordering_matches_paper() {
        // Claimed sizes follow the published numbers.
        assert!(
            SlmFamily::Bert.config().claimed_params_millions
                < SlmFamily::Gpt2.config().claimed_params_millions
        );
        assert_eq!(LlmTier::Gpt4.claimed_params_millions(), 1_760_000.0);
        // Actual capacity: LLaMA3.2 variant is the biggest fine-tuned SLM.
        let slm_dims: Vec<usize> = [
            SlmFamily::Bert,
            SlmFamily::Gpt2,
            SlmFamily::Deberta,
            SlmFamily::T5,
        ]
        .iter()
        .map(|f| f.config().d_model)
        .collect();
        assert!(slm_dims
            .iter()
            .all(|&d| d <= SlmFamily::Llama32.config().d_model));
        // GPT-4 tier is the largest frozen model.
        assert!(LlmTier::ALL
            .iter()
            .all(|t| t.config().d_model <= LlmTier::Gpt4.config().d_model));
    }

    #[test]
    fn gpt4_has_the_most_pretraining_and_demo_exposure() {
        for t in LlmTier::ALL {
            assert!(t.pretrain_examples() <= LlmTier::Gpt4.pretrain_examples());
            assert!(t.demo_format_fraction() <= LlmTier::Gpt4.demo_format_fraction());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SlmFamily::Bert.config();
        cfg.n_heads = 5;
        assert!(cfg.validate().is_err());
        let mut cfg = SlmFamily::Bert.config();
        cfg.max_seq = 4;
        assert!(cfg.validate().is_err());
        let mut cfg = SlmFamily::Bert.config();
        cfg.vocab = 16;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(SlmFamily::Llama32.label(), "LLaMA3.2");
        assert_eq!(LlmTier::Gpt4oMini.label(), "GPT-4o-Mini");
    }
}
