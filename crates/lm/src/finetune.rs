//! Fine-tuning loop: mini-batch Adam training of an [`EncoderClassifier`]
//! on labelled, already-encoded sequences.
//!
//! The hot loop is built around three invariants (see `DESIGN.md` §8):
//!
//! * **Zero-copy collation** — batches gather rows by index straight from
//!   the example pool into one reused [`Batch`]
//!   ([`Batch::collate_into`]); no `Encoded` is cloned per step.
//! * **Pad-to-batch-max** — each batch is trimmed to its longest valid
//!   row. Length bucketing (seeded shuffle → stable sort by valid length
//!   → batch-order shuffle) keeps rows of similar length together so the
//!   trim actually bites, while staying deterministic under `seed`.
//! * **Fused optimizer** — norm → clip → AdamW update → gradient zeroing
//!   run as one arena-backed parallel pass ([`FusedAdam`]), bitwise
//!   identical at every thread count.

use crate::model::{Batch, EncoderClassifier};
use crate::tokenizer::Encoded;
use em_nn::{bce_with_logits, FusedAdam};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Positive-class loss weight (1.0 = unweighted).
    pub pos_weight: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Shuffling / ordering seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 32,
            lr: 3e-3,
            pos_weight: 1.0,
            clip: 1.0,
            seed: 0,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch, weighted by example count (the last batch of
    /// an epoch is usually smaller than the rest; weighting by batch count
    /// would overweight its examples).
    pub epoch_losses: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: u64,
}

/// Token-throughput counters, resolved once so the metric-registry lock
/// never sits on the step path.
struct FinetuneMetrics {
    /// Tokens actually pushed through `forward_train` (post-trim).
    tokens: std::sync::Arc<em_obs::metrics::Counter>,
    /// Pad tokens that full-length collation would have added on top.
    padded_saved: std::sync::Arc<em_obs::metrics::Counter>,
}

fn finetune_metrics() -> &'static FinetuneMetrics {
    static METRICS: std::sync::OnceLock<FinetuneMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| FinetuneMetrics {
        tokens: em_obs::metrics::counter("finetune.tokens"),
        padded_saved: em_obs::metrics::counter("finetune.padded_tokens_saved"),
    })
}

/// Builds this epoch's batch schedule: a seeded shuffle for tie-breaking,
/// a *stable* sort by valid length so similar-length rows land in the same
/// batch (pad-to-batch-max then trims aggressively), then a seeded shuffle
/// of the batch order so the length curriculum is not monotone. Fully
/// deterministic under the caller's rng.
fn bucketed_batches(
    order: &mut [usize],
    valid: &[usize],
    batch_size: usize,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    order.shuffle(rng);
    order.sort_by_key(|&i| valid[i]);
    let mut batches: Vec<Vec<usize>> = order.chunks(batch_size).map(<[usize]>::to_vec).collect();
    batches.shuffle(rng);
    batches
}

/// Trains the model in place; returns per-epoch mean losses.
///
/// # Panics
/// Panics if `examples` is empty or sequence lengths are inconsistent.
pub fn train(
    model: &mut EncoderClassifier,
    examples: &[(Encoded, bool)],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!examples.is_empty(), "no training examples");
    let full_len = examples[0].0.len();
    // Valid lengths drive the length bucketing; computed once, not per epoch.
    let valid: Vec<usize> = examples
        .iter()
        .map(|(e, _)| e.mask.iter().rposition(|&m| m).map_or(0, |p| p + 1))
        .collect();
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_696e);
    let mut opt = FusedAdam::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut batch = Batch::empty();
    let mut labels: Vec<bool> = Vec::with_capacity(cfg.batch_size);
    let batch_size = cfg.batch_size.max(1);
    for _ in 0..cfg.epochs {
        let mut total_loss = 0.0f32;
        for chunk in bucketed_batches(&mut order, &valid, batch_size, &mut rng) {
            let _span = em_obs::span!("finetune.step", batch = chunk.len());
            batch.collate_into(examples, &chunk);
            labels.clear();
            labels.extend(chunk.iter().map(|&i| examples[i].1));
            if em_obs::capture_enabled() {
                let m = finetune_metrics();
                m.tokens.add((batch.n * batch.seq) as u64);
                m.padded_saved.add(batch.padded_tokens_saved(full_len) as u64);
            }
            let logits = model.forward_train(&batch);
            let (loss, dlogits) = bce_with_logits(&logits, &labels, cfg.pos_weight);
            model.backward(&dlogits);
            opt.step(&mut model.params_mut(), Some(cfg.clip));
            total_loss += loss * chunk.len() as f32;
        }
        epoch_losses.push(total_loss / examples.len() as f32);
    }
    TrainReport {
        epoch_losses,
        steps: opt.steps(),
    }
}

/// Predicts match probabilities (sigmoid of logits) for a slice of encoded
/// sequences, batching internally. Each batch reuses one collation buffer
/// and is trimmed to its longest valid row, exactly like training.
pub fn predict_proba(
    model: &EncoderClassifier,
    examples: &[Encoded],
    batch_size: usize,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(examples.len());
    let mut batch = Batch::empty();
    for chunk in examples.chunks(batch_size.max(1)) {
        batch.collate_refs_into(chunk);
        for logit in model.forward(&batch) {
            out.push(em_nn::sigmoid_f32(logit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::tokenizer::{encode_pair, HashTokenizer};
    use em_core::SerializedPair;
    use rand::Rng;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            vocab: 512,
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            ff_mult: 2,
            max_seq: 20,
            dropout: 0.0,
            claimed_params_millions: 1.0,
        }
    }

    /// Synthetic EM task: positives share their token multiset (possibly
    /// reordered), negatives are disjoint.
    fn synthetic_pairs(n: usize, seed: u64) -> Vec<(SerializedPair, bool)> {
        let words = [
            "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
            "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let a: Vec<&str> = (0..4)
                    .map(|_| words[rng.gen_range(0..words.len())])
                    .collect();
                if i % 2 == 0 {
                    let mut b = a.clone();
                    b.swap(0, 3);
                    (
                        SerializedPair {
                            left: a.join(" ").into(),
                            right: b.join(" ").into(),
                        },
                        true,
                    )
                } else {
                    let b: Vec<&str> = (0..4)
                        .map(|_| words[rng.gen_range(0..words.len())])
                        .collect();
                    (
                        SerializedPair {
                            left: a.join(" ").into(),
                            right: b.join(" ").into(),
                        },
                        false,
                    )
                }
            })
            .collect()
    }

    fn encode_all(
        pairs: &[(SerializedPair, bool)],
        tok: &HashTokenizer,
        seq: usize,
    ) -> Vec<(Encoded, bool)> {
        pairs
            .iter()
            .map(|(p, y)| (encode_pair(tok, p, seq), *y))
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(200, 0), &tok, 20);
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses[3] < report.epoch_losses[0],
            "loss should drop: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn tiny_model_learns_token_overlap_matching() {
        // The core feasibility check for the whole reproduction: a tiny
        // transformer must learn "same tokens on both sides = match" and
        // generalise to unseen token combinations.
        let tok = HashTokenizer::new(512);
        let train_data = encode_all(&synthetic_pairs(600, 1), &tok, 20);
        let test_pairs = synthetic_pairs(200, 999); // different seed = unseen combos
        let test_data = encode_all(&test_pairs, &tok, 20);
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        train(
            &mut model,
            &train_data,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let probs = predict_proba(
            &model,
            &test_data.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
            64,
        );
        let preds: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
        let labels: Vec<bool> = test_data.iter().map(|(_, y)| *y).collect();
        let f1 = em_core::f1_percent(&preds, &labels).unwrap();
        assert!(
            f1 > 80.0,
            "tiny model should learn overlap matching, F1 = {f1}"
        );
    }

    #[test]
    fn pos_weight_increases_positive_rate() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(200, 2), &tok, 20);
        let encoded: Vec<Encoded> = data.iter().map(|(e, _)| e.clone()).collect();
        let mut balanced = EncoderClassifier::new(tiny_config(), 1);
        train(
            &mut balanced,
            &data,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let mut boosted = EncoderClassifier::new(tiny_config(), 1);
        train(
            &mut boosted,
            &data,
            &TrainConfig {
                epochs: 1,
                pos_weight: 20.0,
                ..Default::default()
            },
        );
        let pb: f32 = predict_proba(&balanced, &encoded, 64).iter().sum();
        let pw: f32 = predict_proba(&boosted, &encoded, 64).iter().sum();
        assert!(
            pw > pb,
            "pos_weight should push probabilities up: {pw} vs {pb}"
        );
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(60, 3), &tok, 20);
        let encoded: Vec<Encoded> = data.iter().map(|(e, _)| e.clone()).collect();
        let mut m1 = EncoderClassifier::new(tiny_config(), 5);
        let mut m2 = EncoderClassifier::new(tiny_config(), 5);
        let cfg = TrainConfig {
            epochs: 1,
            ..Default::default()
        };
        train(&mut m1, &data, &cfg);
        train(&mut m2, &data, &cfg);
        assert_eq!(
            predict_proba(&m1, &encoded, 32),
            predict_proba(&m2, &encoded, 32)
        );
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn empty_training_panics() {
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        let _ = train(&mut model, &[], &TrainConfig::default());
    }

    #[test]
    fn epoch_loss_is_weighted_by_example_count() {
        // 3 examples with batch_size 2 → one full batch and one singleton.
        // With lr = 0 the model never changes, so the epoch loss must equal
        // the mean of the three per-example losses regardless of batching.
        // The old `total / batches` formula averaged batch means, which
        // overweights the ragged tail batch.
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(3, 7), &tok, 20);
        let frozen = TrainConfig {
            epochs: 1,
            batch_size: 2,
            lr: 0.0,
            ..Default::default()
        };
        let mut model = EncoderClassifier::new(tiny_config(), 11);
        let report = train(&mut model, &data, &frozen);
        // Per-example losses from the same frozen model, one at a time.
        let mut expected = 0.0f32;
        for (e, y) in &data {
            let mut probe = EncoderClassifier::new(tiny_config(), 11);
            let single = train(
                &mut probe,
                &[(e.clone(), *y)],
                &TrainConfig {
                    batch_size: 1,
                    ..frozen
                },
            );
            expected += single.epoch_losses[0];
        }
        expected /= data.len() as f32;
        let got = report.epoch_losses[0];
        assert!(
            (got - expected).abs() < 1e-5,
            "epoch loss {got} should be the example-weighted mean {expected}"
        );
    }

    #[test]
    fn batch_size_larger_than_dataset_is_fine() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(5, 8), &tok, 20);
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 1,
                batch_size: 64,
                ..Default::default()
            },
        );
        assert_eq!(report.steps, 1);
        assert!(report.epoch_losses[0].is_finite());
    }
}
