//! Fine-tuning loop: mini-batch Adam training of an [`EncoderClassifier`]
//! on labelled, already-encoded sequences.

use crate::model::{Batch, EncoderClassifier};
use crate::tokenizer::Encoded;
use em_nn::{bce_with_logits, clip_grad_norm, zero_grads, Adam};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Positive-class loss weight (1.0 = unweighted).
    pub pos_weight: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Shuffling / ordering seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 32,
            lr: 3e-3,
            pos_weight: 1.0,
            clip: 1.0,
            seed: 0,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: u64,
}

/// Trains the model in place; returns per-epoch mean losses.
///
/// # Panics
/// Panics if `examples` is empty or sequence lengths are inconsistent.
pub fn train(
    model: &mut EncoderClassifier,
    examples: &[(Encoded, bool)],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!examples.is_empty(), "no training examples");
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_696e);
    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut scratch: Vec<Encoded> = Vec::with_capacity(cfg.batch_size);
    let mut labels: Vec<bool> = Vec::with_capacity(cfg.batch_size);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _span = em_obs::span!("finetune.step", batch = chunk.len());
            scratch.clear();
            labels.clear();
            for &i in chunk {
                scratch.push(examples[i].0.clone());
                labels.push(examples[i].1);
            }
            let batch = Batch::collate(&scratch);
            let logits = model.forward_train(&batch);
            let (loss, dlogits) = bce_with_logits(&logits, &labels, cfg.pos_weight);
            model.backward(&dlogits);
            {
                let mut params = model.params_mut();
                clip_grad_norm(&mut params, cfg.clip);
                opt.step(&mut params);
                zero_grads(&mut params);
            }
            total_loss += loss;
            batches += 1;
        }
        epoch_losses.push(total_loss / batches.max(1) as f32);
    }
    TrainReport {
        epoch_losses,
        steps: opt.steps(),
    }
}

/// Predicts match probabilities (sigmoid of logits) for a slice of encoded
/// sequences, batching internally.
pub fn predict_proba(
    model: &EncoderClassifier,
    examples: &[Encoded],
    batch_size: usize,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(examples.len());
    for chunk in examples.chunks(batch_size.max(1)) {
        let batch = Batch::collate(chunk);
        for logit in model.forward(&batch) {
            out.push(em_nn::sigmoid_f32(logit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::tokenizer::{encode_pair, HashTokenizer};
    use em_core::SerializedPair;
    use rand::Rng;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            vocab: 512,
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            ff_mult: 2,
            max_seq: 20,
            dropout: 0.0,
            claimed_params_millions: 1.0,
        }
    }

    /// Synthetic EM task: positives share their token multiset (possibly
    /// reordered), negatives are disjoint.
    fn synthetic_pairs(n: usize, seed: u64) -> Vec<(SerializedPair, bool)> {
        let words = [
            "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
            "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let a: Vec<&str> = (0..4)
                    .map(|_| words[rng.gen_range(0..words.len())])
                    .collect();
                if i % 2 == 0 {
                    let mut b = a.clone();
                    b.swap(0, 3);
                    (
                        SerializedPair {
                            left: a.join(" "),
                            right: b.join(" "),
                        },
                        true,
                    )
                } else {
                    let b: Vec<&str> = (0..4)
                        .map(|_| words[rng.gen_range(0..words.len())])
                        .collect();
                    (
                        SerializedPair {
                            left: a.join(" "),
                            right: b.join(" "),
                        },
                        false,
                    )
                }
            })
            .collect()
    }

    fn encode_all(
        pairs: &[(SerializedPair, bool)],
        tok: &HashTokenizer,
        seq: usize,
    ) -> Vec<(Encoded, bool)> {
        pairs
            .iter()
            .map(|(p, y)| (encode_pair(tok, p, seq), *y))
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(200, 0), &tok, 20);
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses[3] < report.epoch_losses[0],
            "loss should drop: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn tiny_model_learns_token_overlap_matching() {
        // The core feasibility check for the whole reproduction: a tiny
        // transformer must learn "same tokens on both sides = match" and
        // generalise to unseen token combinations.
        let tok = HashTokenizer::new(512);
        let train_data = encode_all(&synthetic_pairs(600, 1), &tok, 20);
        let test_pairs = synthetic_pairs(200, 999); // different seed = unseen combos
        let test_data = encode_all(&test_pairs, &tok, 20);
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        train(
            &mut model,
            &train_data,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let probs = predict_proba(
            &model,
            &test_data.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
            64,
        );
        let preds: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
        let labels: Vec<bool> = test_data.iter().map(|(_, y)| *y).collect();
        let f1 = em_core::f1_percent(&preds, &labels).unwrap();
        assert!(
            f1 > 80.0,
            "tiny model should learn overlap matching, F1 = {f1}"
        );
    }

    #[test]
    fn pos_weight_increases_positive_rate() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(200, 2), &tok, 20);
        let encoded: Vec<Encoded> = data.iter().map(|(e, _)| e.clone()).collect();
        let mut balanced = EncoderClassifier::new(tiny_config(), 1);
        train(
            &mut balanced,
            &data,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let mut boosted = EncoderClassifier::new(tiny_config(), 1);
        train(
            &mut boosted,
            &data,
            &TrainConfig {
                epochs: 1,
                pos_weight: 20.0,
                ..Default::default()
            },
        );
        let pb: f32 = predict_proba(&balanced, &encoded, 64).iter().sum();
        let pw: f32 = predict_proba(&boosted, &encoded, 64).iter().sum();
        assert!(
            pw > pb,
            "pos_weight should push probabilities up: {pw} vs {pb}"
        );
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let tok = HashTokenizer::new(512);
        let data = encode_all(&synthetic_pairs(60, 3), &tok, 20);
        let encoded: Vec<Encoded> = data.iter().map(|(e, _)| e.clone()).collect();
        let mut m1 = EncoderClassifier::new(tiny_config(), 5);
        let mut m2 = EncoderClassifier::new(tiny_config(), 5);
        let cfg = TrainConfig {
            epochs: 1,
            ..Default::default()
        };
        train(&mut m1, &data, &cfg);
        train(&mut m2, &data, &cfg);
        assert_eq!(
            predict_proba(&m1, &encoded, 32),
            predict_proba(&m2, &encoded, 32)
        );
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn empty_training_panics() {
        let mut model = EncoderClassifier::new(tiny_config(), 0);
        let _ = train(&mut model, &[], &TrainConfig::default());
    }
}
