//! The hosted-LLM client abstraction and its resilience stack.
//!
//! The paper's MatchGPT matchers call hosted APIs (OpenAI, together.ai)
//! that rate-limit, time out, and occasionally return malformed output.
//! The simulated [`PretrainedLlm`] never does — so this module splits the
//! scoring path into three layers that can be composed freely:
//!
//! 1. [`HostedLlm`] — the client trait: score one ≤[`HOSTED_CHUNK`]-pair
//!    chunk, fallibly. [`PretrainedLlm`] implements it as the always-up
//!    "origin server".
//! 2. [`FaultInjectedLlm`] — a wrapper that consults a deterministic
//!    [`FaultPlan`] per `(call key, attempt)` and injects rate-limit,
//!    timeout, transient, and malformed-response faults.
//! 3. [`ResilientLlm`] — the production client: retry with exponential
//!    backoff + decorrelated jitter on a virtual clock, a per-call
//!    deadline budget, and a per-backend circuit breaker. Malformed
//!    responses are *detected* here (cardinality + finiteness checks)
//!    regardless of where they came from.
//!
//! Chunks are retried independently; tokens re-sent on retry attempts are
//! charged to the `faults.retried_tokens` counter, which
//! `em_cost::billed_prompt_tokens` folds into the API bill.
//!
//! Determinism: fault decisions and backoff jitter are pure functions of
//! the plan seed, and the breaker runs on the client's own virtual clock,
//! so a chunk's retry schedule — and therefore the whole run's `faults.*`
//! counters and final metrics — is reproducible bit-for-bit. To keep the
//! breaker's transition history schedule-independent, [`ResilientLlm`]
//! scores its chunks sequentially; parallelism still happens *inside*
//! each chunk (`EncoderClassifier::forward` fans sub-chunks and attention
//! bands out on the shared thread budget).

use crate::prompt::Demonstration;
use crate::zoo::PretrainedLlm;
use em_core::SerializedPair;
use em_faults::{
    call_with_retries, BackoffPolicy, CircuitBreaker, FaultError, FaultKind, FaultPlan,
    RetryContext, VirtualClock,
};
use std::sync::Arc;

/// Chunk size of the hosted scoring path (mirrors the batch size the
/// simulated backend scores per forward call).
pub const HOSTED_CHUNK: usize = 64;

/// Identity of one call attempt, threaded through wrappers so fault
/// injection can be a pure function of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallCtx {
    /// Stable key of the logical call (chunk content hash); identical
    /// across retries, runs, and thread schedules.
    pub key: u64,
    /// 0-based attempt number within the logical call.
    pub attempt: u32,
}

/// A hosted language-model backend scoring pair chunks, fallibly.
pub trait HostedLlm: Send + Sync {
    /// Backend label (breaker identity, events, Table 6 lookups).
    fn backend(&self) -> String;

    /// Scores one chunk of at most [`HOSTED_CHUNK`] pairs. Implementations
    /// may fail with any [`FaultError`]; they may also return corrupted
    /// output (wrong length, non-finite scores) — callers must validate.
    fn score_chunk(
        &self,
        ctx: CallCtx,
        pairs: &[SerializedPair],
        demos: &[Demonstration],
    ) -> Result<Vec<f32>, FaultError>;

    /// Real (non-padding) prompt tokens one request for this chunk sends,
    /// the unit the API bills — retried attempts re-send them.
    fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64;
}

impl HostedLlm for PretrainedLlm {
    fn backend(&self) -> String {
        self.tier.label().to_owned()
    }

    fn score_chunk(
        &self,
        _ctx: CallCtx,
        pairs: &[SerializedPair],
        demos: &[Demonstration],
    ) -> Result<Vec<f32>, FaultError> {
        // The simulated backend's only failure mode is a worker panic in
        // the scoring kernels; surface it as a transient server error so
        // the resilience layer treats it like an HTTP 500.
        self.try_score_batch(pairs, demos)
            .map_err(|e| FaultError::Transient(e.to_string()))
    }

    fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
        pairs
            .iter()
            .map(|p| self.prompt_token_count(p, demos) as u64)
            .sum()
    }
}

impl<T: HostedLlm + ?Sized> HostedLlm for Arc<T> {
    fn backend(&self) -> String {
        (**self).backend()
    }
    fn score_chunk(
        &self,
        ctx: CallCtx,
        pairs: &[SerializedPair],
        demos: &[Demonstration],
    ) -> Result<Vec<f32>, FaultError> {
        (**self).score_chunk(ctx, pairs, demos)
    }
    fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
        (**self).chunk_tokens(pairs, demos)
    }
}

/// Wraps a backend with deterministic fault injection.
pub struct FaultInjectedLlm<C: HostedLlm> {
    inner: C,
    plan: FaultPlan,
}

impl<C: HostedLlm> FaultInjectedLlm<C> {
    /// Injects `plan`'s faults in front of `inner`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        FaultInjectedLlm { inner, plan }
    }
}

impl<C: HostedLlm> HostedLlm for FaultInjectedLlm<C> {
    fn backend(&self) -> String {
        self.inner.backend()
    }

    fn score_chunk(
        &self,
        ctx: CallCtx,
        pairs: &[SerializedPair],
        demos: &[Demonstration],
    ) -> Result<Vec<f32>, FaultError> {
        let Some(kind) = self.plan.fault_for(ctx.key, ctx.attempt) else {
            return self.inner.score_chunk(ctx, pairs, demos);
        };
        em_obs::metrics::counter("faults.injected").inc();
        em_obs::metrics::counter(&format!("faults.injected.{}", kind.label())).inc();
        em_obs::event!(
            warn,
            "faults.inject",
            backend = self.inner.backend().as_str(),
            kind = kind.label(),
            attempt = ctx.attempt as usize
        );
        match kind {
            FaultKind::RateLimit => Err(FaultError::RateLimited {
                retry_after_ms: self.plan.magnitude(ctx.key, ctx.attempt, 50, 1_000),
            }),
            FaultKind::Timeout => Err(FaultError::Timeout {
                after_ms: self.plan.magnitude(ctx.key, ctx.attempt, 1_000, 30_000),
            }),
            FaultKind::Transient => Err(FaultError::Transient("injected 503".into())),
            FaultKind::Malformed => {
                // The backend "responds", but the payload is corrupted:
                // either a score is dropped or poisoned to NaN. Returning
                // Ok exercises the *detection* path in ResilientLlm.
                let mut scores = self.inner.score_chunk(ctx, pairs, demos)?;
                if scores.is_empty() || self.plan.magnitude(ctx.key, ctx.attempt, 0, 2) == 0 {
                    scores.pop();
                } else {
                    let i = self.plan.magnitude(ctx.key, ctx.attempt, 0, scores.len() as u64);
                    scores[i as usize] = f32::NAN;
                }
                Ok(scores)
            }
        }
    }

    fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
        self.inner.chunk_tokens(pairs, demos)
    }
}

/// Configuration of the resilient client.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Retry/backoff/deadline policy.
    pub backoff: BackoffPolicy,
    /// Consecutive failures (attempts, across chunks) before the breaker
    /// opens.
    pub breaker_threshold: u32,
    /// Breaker cooldown in virtual milliseconds.
    pub breaker_cooldown_ms: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            backoff: BackoffPolicy::default(),
            // Above the per-call attempt budget (6), so one unlucky chunk
            // alone cannot trip the breaker — it takes failures spilling
            // across consecutive chunks, the signature of a down backend.
            breaker_threshold: 8,
            breaker_cooldown_ms: 30_000,
        }
    }
}

/// The production hosted-LLM client: retries, deadline budgets, and a
/// circuit breaker around any [`HostedLlm`] backend.
pub struct ResilientLlm {
    client: Box<dyn HostedLlm>,
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    clock: Arc<VirtualClock>,
    seed: u64,
}

impl ResilientLlm {
    /// Wraps `client` with the given resilience configuration. `seed`
    /// drives the deterministic backoff jitter (pass the fault-plan seed
    /// in chaos runs).
    pub fn new(client: Box<dyn HostedLlm>, config: ResilienceConfig, seed: u64) -> ResilientLlm {
        let breaker = CircuitBreaker::new(
            client.backend(),
            config.breaker_threshold,
            config.breaker_cooldown_ms,
        );
        ResilientLlm {
            client,
            config,
            breaker,
            clock: Arc::new(VirtualClock::new()),
            seed,
        }
    }

    /// Convenience constructor for the common wiring: the frozen tier as
    /// origin, fault-injected when a plan is given (e.g. from
    /// [`FaultPlan::from_env`]), default resilience policy.
    pub fn for_tier(llm: Arc<PretrainedLlm>, plan: Option<FaultPlan>) -> ResilientLlm {
        match plan {
            Some(plan) => {
                let seed = plan.seed();
                ResilientLlm::new(
                    Box::new(FaultInjectedLlm::new(llm, plan)),
                    ResilienceConfig::default(),
                    seed,
                )
            }
            None => ResilientLlm::new(Box::new(llm), ResilienceConfig::default(), 0),
        }
    }

    /// Backend label (used in degradation events and result rows).
    pub fn backend(&self) -> String {
        self.client.backend()
    }

    /// The per-backend circuit breaker (exposed for chaos drills: force
    /// it open to rehearse degradation).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The virtual clock accumulating backoff sleeps; its reading after a
    /// run *is* the retry schedule's total, compared across runs by the
    /// determinism tests.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Scores a batch through the resilient path. Chunks are scored
    /// sequentially (see module docs) and each chunk independently
    /// retried; the first chunk that exhausts its budget or hits an open
    /// breaker fails the batch, signalling the caller to degrade.
    pub fn score_batch(
        &self,
        pairs: &[SerializedPair],
        demos: &[Demonstration],
    ) -> Result<Vec<f32>, FaultError> {
        let mut out = Vec::with_capacity(pairs.len());
        let ctx = RetryContext {
            policy: &self.config.backoff,
            breaker: &self.breaker,
            clock: &self.clock,
            seed: self.seed,
        };
        for (ci, chunk) in pairs.chunks(HOSTED_CHUNK).enumerate() {
            let key = chunk_key(ci, chunk, demos);
            let scores = call_with_retries(&ctx, key, |attempt| {
                if attempt > 0 {
                    em_obs::metrics::counter("faults.retried_tokens")
                        .add(self.client.chunk_tokens(chunk, demos));
                }
                let scores = self.client.score_chunk(CallCtx { key, attempt }, chunk, demos)?;
                validate_scores(scores, chunk.len())
            })?;
            out.extend(scores);
        }
        Ok(out)
    }
}

/// Response validation: a well-formed chunk response has exactly one
/// finite score per pair. Anything else is a malformed response — the
/// client-side detection that makes injected `Malformed` faults (which
/// arrive as `Ok`) retryable.
fn validate_scores(scores: Vec<f32>, expected: usize) -> Result<Vec<f32>, FaultError> {
    if scores.len() != expected {
        em_obs::metrics::counter("faults.malformed_detected").inc();
        return Err(FaultError::Malformed(format!(
            "{} scores for {expected} pairs",
            scores.len()
        )));
    }
    if scores.iter().any(|s| !s.is_finite()) {
        em_obs::metrics::counter("faults.malformed_detected").inc();
        return Err(FaultError::Malformed("non-finite score".into()));
    }
    Ok(scores)
}

/// Stable identity of a chunk request: FNV-1a over the chunk index, pair
/// texts, and demonstration count. Identical across runs and thread
/// schedules, distinct across chunks, and shared by all retry attempts
/// of the same logical call.
fn chunk_key(chunk_index: usize, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (chunk_index as u64);
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        h = (h ^ 0xff).wrapping_mul(0x0100_0000_01b3);
    };
    for p in pairs {
        eat(&p.left);
        eat(&p.right);
    }
    h ^ (demos.len() as u64).rotate_left(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    /// A scripted backend: responds with `pair index as f32 / 10` and
    /// counts calls; never faults on its own.
    struct Scripted {
        calls: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl Scripted {
        fn new() -> Self {
            Scripted {
                calls: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            }
        }
    }

    impl HostedLlm for Scripted {
        fn backend(&self) -> String {
            "Scripted".into()
        }
        fn score_chunk(
            &self,
            _ctx: CallCtx,
            pairs: &[SerializedPair],
            _demos: &[Demonstration],
        ) -> Result<Vec<f32>, FaultError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok((0..pairs.len()).map(|i| i as f32 / 10.0).collect())
        }
        fn chunk_tokens(&self, pairs: &[SerializedPair], _demos: &[Demonstration]) -> u64 {
            pairs.len() as u64 * 10
        }
    }

    fn pairs(n: usize) -> Vec<SerializedPair> {
        (0..n).map(|i| sp(&format!("item {i}"), "item")).collect()
    }

    #[test]
    fn fault_free_resilient_path_is_transparent() {
        let r = ResilientLlm::new(Box::new(Scripted::new()), ResilienceConfig::default(), 0);
        let out = r.score_batch(&pairs(130), &[]).unwrap();
        assert_eq!(out.len(), 130);
        // Three chunks (64 + 64 + 2), no retries, no virtual time burned.
        assert_eq!(r.clock().now_ns(), 0);
    }

    #[test]
    fn injected_faults_are_retried_to_the_same_answer() {
        let plan = FaultPlan::new(42, 0.3, FaultKind::ALL.to_vec()).unwrap();
        let faulted = ResilientLlm::new(
            Box::new(FaultInjectedLlm::new(Scripted::new(), plan)),
            ResilienceConfig::default(),
            42,
        );
        let clean = ResilientLlm::new(Box::new(Scripted::new()), ResilienceConfig::default(), 0);
        let p = pairs(200);
        assert_eq!(faulted.score_batch(&p, &[]).unwrap(), clean.score_batch(&p, &[]).unwrap());
    }

    #[test]
    fn retry_schedule_is_reproducible_across_runs() {
        let run = || {
            let plan = FaultPlan::new(7, 0.5, FaultKind::ALL.to_vec()).unwrap();
            let r = ResilientLlm::new(
                Box::new(FaultInjectedLlm::new(Scripted::new(), plan)),
                ResilienceConfig::default(),
                7,
            );
            let scores = r.score_batch(&pairs(150), &[]).unwrap();
            (scores, r.clock().now_ns(), r.breaker().transitions())
        };
        let (s1, t1, b1) = run();
        let (s2, t2, b2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2, "virtual retry schedule must be identical");
        assert_eq!(b1, b2, "breaker transition history must be identical");
        assert!(t1 > 0, "a 50% fault rate must force retries");
    }

    #[test]
    fn malformed_responses_are_detected_and_retried() {
        // A backend whose first attempt always returns a corrupted (but
        // Ok!) payload: validation must detect it and the retry recover.
        struct CorruptFirst(Scripted);
        impl HostedLlm for CorruptFirst {
            fn backend(&self) -> String {
                "CorruptFirst".into()
            }
            fn score_chunk(
                &self,
                ctx: CallCtx,
                pairs: &[SerializedPair],
                demos: &[Demonstration],
            ) -> Result<Vec<f32>, FaultError> {
                let mut v = self.0.score_chunk(ctx, pairs, demos)?;
                if ctx.attempt == 0 {
                    v[0] = f32::INFINITY;
                }
                Ok(v)
            }
            fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
                self.0.chunk_tokens(pairs, demos)
            }
        }
        let before = em_obs::metrics::counter("faults.malformed_detected").get();
        let r = ResilientLlm::new(
            Box::new(CorruptFirst(Scripted::new())),
            ResilienceConfig::default(),
            0,
        );
        let out = r.score_batch(&pairs(3), &[]).unwrap();
        assert!(out.iter().all(|s| s.is_finite()));
        assert!(em_obs::metrics::counter("faults.malformed_detected").get() > before);
    }

    #[test]
    fn total_fault_rate_exhausts_and_opens_the_breaker() {
        let plan = FaultPlan::new(1, 1.0, vec![FaultKind::Transient]).unwrap();
        let r = ResilientLlm::new(
            Box::new(FaultInjectedLlm::new(Scripted::new(), plan)),
            ResilienceConfig::default(),
            1,
        );
        let p = pairs(200); // several chunks
        let err = r.score_batch(&p, &[]).unwrap_err();
        assert!(
            matches!(
                err,
                FaultError::RetriesExhausted { .. } | FaultError::BreakerOpen { .. }
            ),
            "{err:?}"
        );
        // Keep failing: the breaker opens and later batches short-circuit.
        let _ = r.score_batch(&p, &[]);
        let err = r.score_batch(&p, &[]).unwrap_err();
        assert!(matches!(err, FaultError::BreakerOpen { .. }), "{err:?}");
    }

    #[test]
    fn forced_open_breaker_rejects_without_backend_calls() {
        let scripted = Scripted::new();
        let calls = scripted.calls.clone();
        let r = ResilientLlm::new(Box::new(scripted), ResilienceConfig::default(), 0);
        r.breaker().force_open(r.clock().now_ns());
        let err = r.score_batch(&pairs(5), &[]).unwrap_err();
        assert!(matches!(err, FaultError::BreakerOpen { .. }));
        // No attempt reached the backend.
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn retried_tokens_are_charged() {
        struct FailOnce(Scripted);
        impl HostedLlm for FailOnce {
            fn backend(&self) -> String {
                "FailOnce".into()
            }
            fn score_chunk(
                &self,
                ctx: CallCtx,
                pairs: &[SerializedPair],
                demos: &[Demonstration],
            ) -> Result<Vec<f32>, FaultError> {
                if ctx.attempt == 0 {
                    Err(FaultError::Transient("503".into()))
                } else {
                    self.0.score_chunk(ctx, pairs, demos)
                }
            }
            fn chunk_tokens(&self, pairs: &[SerializedPair], demos: &[Demonstration]) -> u64 {
                self.0.chunk_tokens(pairs, demos)
            }
        }
        let before = em_obs::metrics::counter("faults.retried_tokens").get();
        let r = ResilientLlm::new(Box::new(FailOnce(Scripted::new())), ResilienceConfig::default(), 0);
        let out = r.score_batch(&pairs(4), &[]).unwrap();
        assert_eq!(out.len(), 4);
        // One retry of a 4-pair chunk at 10 tokens/pair.
        assert_eq!(
            em_obs::metrics::counter("faults.retried_tokens").get() - before,
            40
        );
    }

    #[test]
    fn chunk_keys_are_content_stable_and_index_distinct() {
        let a = pairs(4);
        assert_eq!(chunk_key(0, &a, &[]), chunk_key(0, &a, &[]));
        assert_ne!(chunk_key(0, &a, &[]), chunk_key(1, &a, &[]));
        let b = pairs(5);
        assert_ne!(chunk_key(0, &a, &[]), chunk_key(0, &b, &[]));
    }
}
