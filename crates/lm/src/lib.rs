//! # em-lm — language-model substrate
//!
//! Tiny-but-real transformer language models built on `em-nn`, covering all
//! model roles of the study:
//!
//! * a hashed-word tokenizer with special/segment ids ([`tokenizer`]);
//! * model family presets preserving the paper's capacity ordering
//!   ([`config`]);
//! * the encoder classifier with plain and mixture-of-experts heads
//!   ([`model`]);
//! * the fine-tuning loop ([`finetune`]);
//! * prompt assembly with in-context demonstrations ([`prompt`]) and a
//!   shared-prefix cache that encodes the demonstration prefix once per
//!   sweep ([`prefix`]);
//! * frozen pre-trained capability tiers standing in for the prompted
//!   commercial/open LLMs ([`zoo`]);
//! * the hosted-API client abstraction with deterministic fault injection
//!   and a retry/backoff/circuit-breaker resilience stack ([`hosted`]).

pub mod config;
pub mod finetune;
pub mod hosted;
pub mod model;
pub mod prefix;
pub mod prompt;
pub mod tokenizer;
pub mod zoo;

pub use config::{LlmTier, ModelConfig, SlmFamily};
pub use finetune::{predict_proba, train, TrainConfig, TrainReport};
pub use hosted::{
    CallCtx, FaultInjectedLlm, HostedLlm, ResilienceConfig, ResilientLlm, HOSTED_CHUNK,
};
pub use model::{Batch, EncoderClassifier, Head, MoeHead, PrefixState};
pub use em_nn::qgemm::InferencePrecision;
pub use prefix::{collate_suffixes, PrefixCache, PrefixVariant};
pub use prompt::{encode_prompt, Demonstration, PromptBudget};
pub use tokenizer::{encode_pair, segment, special, Encoded, HashTokenizer};
pub use zoo::{
    pretrain_backbone, pretrain_tier, random_demonstrations, PretrainCorpus, PretrainedLlm,
};
