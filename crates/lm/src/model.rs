//! The encoder classifier: embeddings (token + position + segment) →
//! transformer blocks → final LayerNorm → masked mean pooling → prediction
//! head. Two heads are provided:
//!
//! * [`Head::Linear`] — the standard single-logit head (Ditto, AnyMatch,
//!   Jellyfish, and the frozen LLM tiers);
//! * [`Head::Moe`] — a mixture-of-experts head reproducing Unicorn's
//!   design: a gating network mixes expert FFNs before the final logit.

use crate::config::ModelConfig;
use crate::tokenizer::{overlap, segment, Encoded};
use em_nn::qgemm::InferencePrecision;
use em_nn::{softmax_inplace, Embedding, Gelu, LayerNorm, Linear, Param, Tensor, TransformerBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A collated batch of encoded sequences.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Token ids, `n · seq` entries.
    pub ids: Vec<u32>,
    /// Segment ids, aligned with `ids`.
    pub segments: Vec<u32>,
    /// Validity mask, aligned with `ids`.
    pub mask: Vec<bool>,
    /// Overlap flags, aligned with `ids`.
    pub overlap: Vec<u32>,
    /// Number of sequences.
    pub n: usize,
    /// Sequence length.
    pub seq: usize,
}

impl Batch {
    /// An empty batch whose buffers get reused across
    /// [`Self::collate_into`] / [`Self::collate_refs_into`] calls.
    pub fn empty() -> Batch {
        Batch {
            ids: Vec::new(),
            segments: Vec::new(),
            mask: Vec::new(),
            overlap: Vec::new(),
            n: 0,
            seq: 0,
        }
    }

    /// Collates encoded sequences (all must share one length), padded to
    /// that full length. One-shot allocating variant; the training and
    /// prediction hot loops use the buffer-reusing, pad-trimming
    /// [`Self::collate_into`] / [`Self::collate_refs_into`] instead.
    pub fn collate(examples: &[Encoded]) -> Batch {
        assert!(!examples.is_empty(), "cannot collate an empty batch");
        let seq = examples[0].len();
        assert!(
            examples.iter().all(|e| e.len() == seq),
            "all sequences must share one length"
        );
        let n = examples.len();
        let mut ids = Vec::with_capacity(n * seq);
        let mut segments = Vec::with_capacity(n * seq);
        let mut mask = Vec::with_capacity(n * seq);
        let mut ovl = Vec::with_capacity(n * seq);
        for e in examples {
            ids.extend_from_slice(&e.ids);
            segments.extend_from_slice(&e.segments);
            mask.extend_from_slice(&e.mask);
            ovl.extend_from_slice(&e.overlap);
        }
        Batch {
            ids,
            segments,
            mask,
            overlap: ovl,
            n,
            seq,
        }
    }

    /// Zero-copy collation for the fine-tuning loop: gathers the rows of
    /// `chunk` (indices into `examples`) straight from the labelled pool
    /// into this batch's reused buffers — no per-example `Encoded` clone,
    /// no fresh allocations after the first batch.
    ///
    /// The batch is trimmed to its longest *valid* row (pad-to-batch-max):
    /// masked attention gives padded keys zero weight and masked mean
    /// pooling ignores padded positions, so trailing-pad columns are inert
    /// and the logits are identical to full-length padding (proven bitwise
    /// in `tests/finetune_parity.rs`).
    pub fn collate_into(&mut self, examples: &[(Encoded, bool)], chunk: &[usize]) {
        self.gather(chunk.len(), |i| &examples[chunk[i]].0);
    }

    /// [`Self::collate_into`] for an unlabelled slice (the prediction
    /// path): same reused buffers, same pad-to-batch-max trimming.
    pub fn collate_refs_into(&mut self, examples: &[Encoded]) {
        self.gather(examples.len(), |i| &examples[i]);
    }

    /// [`Self::collate_refs_into`] through an index view: gathers the
    /// rows of `idx` (positions into `pool`) without materialising a
    /// reordered `Encoded` slice. This is what lets the serve-time
    /// length-bucketing sort *indices* by encoded length and collate each
    /// bucket straight from the original pool — no per-bucket clone of
    /// the encodings, same pad-to-batch-max trimming.
    pub fn collate_indices_into(&mut self, pool: &[Encoded], idx: &[usize]) {
        self.gather(idx.len(), |i| &pool[idx[i]]);
    }

    fn gather<'a>(&mut self, n: usize, get: impl Fn(usize) -> &'a Encoded) {
        assert!(n > 0, "cannot collate an empty batch");
        let full = get(0).len();
        // Pad-to-batch-max: the longest valid row decides the batch's
        // sequence length (floor 1 so shapes stay well-formed).
        let mut seq = 1usize;
        for i in 0..n {
            let e = get(i);
            assert_eq!(e.len(), full, "all sequences must share one length");
            let valid = e.mask.iter().rposition(|&m| m).map_or(0, |p| p + 1);
            seq = seq.max(valid);
        }
        self.ids.clear();
        self.segments.clear();
        self.mask.clear();
        self.overlap.clear();
        self.ids.reserve(n * seq);
        self.segments.reserve(n * seq);
        self.mask.reserve(n * seq);
        self.overlap.reserve(n * seq);
        for i in 0..n {
            let e = get(i);
            self.ids.extend_from_slice(&e.ids[..seq]);
            self.segments.extend_from_slice(&e.segments[..seq]);
            self.mask.extend_from_slice(&e.mask[..seq]);
            self.overlap.extend_from_slice(&e.overlap[..seq]);
        }
        self.n = n;
        self.seq = seq;
    }

    /// Tokens a full-length collation of the same rows would have carried
    /// on top of this one — `n · (full_len − seq)` — for the
    /// `finetune.padded_tokens_saved` counter.
    pub fn padded_tokens_saved(&self, full_len: usize) -> usize {
        self.n * full_len.saturating_sub(self.seq)
    }
}

/// Mixture-of-experts head (Unicorn): gated combination of expert FFNs
/// applied to the pooled representation, followed by a single-logit layer.
#[derive(Debug, Clone)]
pub struct MoeHead {
    /// Gating network: pooled → expert logits.
    pub gate: Linear,
    /// Expert FFNs: (expand, activation, contract).
    pub experts: Vec<(Linear, Gelu, Linear)>,
    /// Final logit layer on the mixed representation.
    pub out: Linear,
    cache: Option<MoeCache>,
}

#[derive(Debug, Clone)]
struct MoeCache {
    pooled: Tensor,
    gate_probs: Tensor,
    expert_outs: Vec<Tensor>,
}

impl MoeHead {
    /// New MoE head with `n_experts` experts of hidden size `hidden`.
    pub fn new(dim: usize, hidden: usize, n_experts: usize, rng: &mut StdRng) -> Self {
        MoeHead {
            gate: Linear::new(dim, n_experts, rng),
            experts: (0..n_experts)
                .map(|_| {
                    (
                        Linear::new(dim, hidden, rng),
                        Gelu::new(),
                        Linear::new(hidden, dim, rng),
                    )
                })
                .collect(),
            out: Linear::new(dim, 1, rng),
            cache: None,
        }
    }

    fn gate_probs(&self, pooled: &Tensor) -> Tensor {
        let mut logits = self.gate.forward_inference(pooled);
        for i in 0..logits.rows() {
            softmax_inplace(logits.row_mut(i));
        }
        logits
    }

    /// Forward with caching; returns per-row logits.
    pub fn forward(&mut self, pooled: &Tensor) -> Vec<f32> {
        let gate_probs = {
            let mut logits = self.gate.forward(pooled);
            for i in 0..logits.rows() {
                softmax_inplace(logits.row_mut(i));
            }
            logits
        };
        let mut mixed = Tensor::zeros(pooled.rows(), pooled.cols());
        let mut expert_outs = Vec::with_capacity(self.experts.len());
        for (k, (e1, act, e2)) in self.experts.iter_mut().enumerate() {
            let h = e1.forward(pooled);
            let h = act.forward(&h);
            let o = e2.forward(&h);
            for i in 0..o.rows() {
                let g = gate_probs.get(i, k);
                for (m, &v) in mixed.row_mut(i).iter_mut().zip(o.row(i)) {
                    *m += g * v;
                }
            }
            expert_outs.push(o);
        }
        let logits = self.out.forward(&mixed);
        self.cache = Some(MoeCache {
            pooled: pooled.clone(),
            gate_probs,
            expert_outs,
        });
        logits.data().to_vec()
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, pooled: &Tensor) -> Vec<f32> {
        let gate_probs = self.gate_probs(pooled);
        let mut mixed = Tensor::zeros(pooled.rows(), pooled.cols());
        for (k, (e1, act, e2)) in self.experts.iter().enumerate() {
            let h = e1.forward_inference(pooled);
            let h = act.forward_inference(&h);
            let o = e2.forward_inference(&h);
            for i in 0..o.rows() {
                let g = gate_probs.get(i, k);
                for (m, &v) in mixed.row_mut(i).iter_mut().zip(o.row(i)) {
                    *m += g * v;
                }
            }
        }
        self.out.forward_inference(&mixed).data().to_vec()
    }

    /// Backward; returns gradient w.r.t. the pooled input.
    pub fn backward(&mut self, dlogits: &[f32]) -> Tensor {
        let cache = self.cache.take().expect("backward before forward");
        let n = cache.pooled.rows();
        let dim = cache.pooled.cols();
        let k_experts = self.experts.len();
        let dlog = Tensor::from_vec(n, 1, dlogits.to_vec());
        let dmixed = self.out.backward(&dlog);

        let mut dpooled = Tensor::zeros(n, dim);
        // Gate gradient: dgate_k = <dmixed_i, expert_out_k_i>, then softmax
        // backward to gate logits.
        let mut dgate_probs = Tensor::zeros(n, k_experts);
        for (k, o) in cache.expert_outs.iter().enumerate() {
            for i in 0..n {
                let d: f32 = dmixed.row(i).iter().zip(o.row(i)).map(|(a, b)| a * b).sum();
                dgate_probs.set(i, k, d);
            }
        }
        let mut dgate_logits = Tensor::zeros(n, k_experts);
        for i in 0..n {
            let probs = cache.gate_probs.row(i);
            let dp = dgate_probs.row(i);
            let inner: f32 = probs.iter().zip(dp).map(|(a, b)| a * b).sum();
            for k in 0..k_experts {
                dgate_logits.set(i, k, probs[k] * (dp[k] - inner));
            }
        }
        dpooled.add_assign(&self.gate.backward(&dgate_logits));

        // Expert gradients: each expert receives gate-weighted dmixed.
        for (k, (e1, act, e2)) in self.experts.iter_mut().enumerate() {
            let mut dout_k = Tensor::zeros(n, dim);
            for i in 0..n {
                let g = cache.gate_probs.get(i, k);
                for (d, &v) in dout_k.row_mut(i).iter_mut().zip(dmixed.row(i)) {
                    *d = g * v;
                }
            }
            let dh = e2.backward(&dout_k);
            let dh = act.backward(&dh);
            dpooled.add_assign(&e1.backward(&dh));
        }
        dpooled
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.gate.params_mut();
        for (e1, _, e2) in &mut self.experts {
            ps.extend(e1.params_mut());
            ps.extend(e2.params_mut());
        }
        ps.extend(self.out.params_mut());
        ps
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.gate.param_count()
            + self
                .experts
                .iter()
                .map(|(a, _, b)| a.param_count() + b.param_count())
                .sum::<usize>()
            + self.out.param_count()
    }
}

/// Prediction head variants.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one head per model; size is irrelevant
pub enum Head {
    /// Single linear logit layer.
    Linear(Linear),
    /// Mixture-of-experts head (Unicorn).
    Moe(MoeHead),
}

/// The full encoder classifier.
#[derive(Debug, Clone)]
pub struct EncoderClassifier {
    /// Architecture configuration.
    pub config: ModelConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    seg_emb: Embedding,
    ovl_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Head,
    pooled_cache: Option<PoolCache>,
    dropout_rng: StdRng,
}

#[derive(Debug, Clone)]
struct PoolCache {
    mask: Vec<bool>,
    counts: Vec<f32>,
    n: usize,
    seq: usize,
}

/// A demonstration prefix encoded once by
/// [`EncoderClassifier::encode_prefix`]: the embedded rows plus every
/// block-0 per-row projection that is independent of the per-pair suffix.
/// Reused verbatim across all pairs of a sweep by
/// [`EncoderClassifier::forward_with_prefix`].
#[derive(Debug, Clone)]
pub struct PrefixState {
    /// Prefix length in tokens.
    pub len: usize,
    /// Embedded prefix rows (`len × d_model`): token + position + segment
    /// + overlap embeddings at positions `0..len`.
    pub x: Tensor,
    /// Block-0 query projection of `ln1(x)`.
    pub q1: Tensor,
    /// Block-0 key projection of `ln1(x)`.
    pub k1: Tensor,
    /// Block-0 value projection of `ln1(x)`.
    pub v1: Tensor,
}

impl EncoderClassifier {
    /// Builds a model with a plain linear head.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        Self::build(config, seed, false)
    }

    /// Builds a model with a mixture-of-experts head (Unicorn).
    pub fn new_moe(config: ModelConfig, seed: u64) -> Self {
        Self::build(config, seed, true)
    }

    fn build(config: ModelConfig, seed: u64, moe: bool) -> Self {
        config.validate().expect("invalid model config");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_64656c);
        let d = config.d_model;
        let head = if moe {
            Head::Moe(MoeHead::new(d, d * 2, 4, &mut rng))
        } else {
            Head::Linear(Linear::new(d, 1, &mut rng))
        };
        EncoderClassifier {
            tok_emb: Embedding::new(config.vocab as usize, d, &mut rng),
            pos_emb: Embedding::new(config.max_seq, d, &mut rng),
            seg_emb: Embedding::new(segment::COUNT, d, &mut rng),
            ovl_emb: Embedding::new(overlap::COUNT, d, &mut rng),
            blocks: (0..config.n_layers)
                .map(|_| {
                    TransformerBlock::new(
                        d,
                        config.n_heads,
                        config.ff_mult,
                        config.dropout,
                        &mut rng,
                    )
                })
                .collect(),
            ln_f: LayerNorm::new(d),
            head,
            pooled_cache: None,
            dropout_rng: StdRng::seed_from_u64(seed ^ 0x64726f70),
            config,
        }
    }

    /// Actual trainable parameter count of the tiny instantiation.
    pub fn param_count(&self) -> usize {
        let head = match &self.head {
            Head::Linear(l) => l.param_count(),
            Head::Moe(m) => m.param_count(),
        };
        self.tok_emb.param_count()
            + self.pos_emb.param_count()
            + self.seg_emb.param_count()
            + self.ovl_emb.param_count()
            + self.blocks.iter().map(|b| b.param_count()).sum::<usize>()
            + self.ln_f.param_count()
            + head
    }

    /// Position ids `0..seq` repeated `n` times, built with a single
    /// allocation (the previous `flat_map` allocated one `Vec<u32>` per
    /// sequence on every forward call).
    fn position_ids(n: usize, seq: usize) -> Vec<u32> {
        let mut ids = Vec::with_capacity(n * seq);
        for _ in 0..n {
            ids.extend(0..seq as u32);
        }
        ids
    }

    fn embed(&self, batch: &Batch) -> (Tensor, Vec<u32>) {
        let pos_ids = Self::position_ids(batch.n, batch.seq);
        // One fused gather: per element `((tok + pos) + seg) + ovl`, the
        // same order (and therefore the same bits) as chaining lookup +
        // three add_assigns, without materializing four tensors.
        let d = self.config.d_model;
        let mut x = Tensor::zeros(batch.ids.len(), d);
        let out = x.data_mut();
        for (r, (((&id, &pid), &sid), &oid)) in batch
            .ids
            .iter()
            .zip(&pos_ids)
            .zip(&batch.segments)
            .zip(&batch.overlap)
            .enumerate()
        {
            let tok = self.tok_emb.table.value.row(id as usize);
            let pos = self.pos_emb.table.value.row(pid as usize);
            let seg = self.seg_emb.table.value.row(sid as usize);
            let ovl = self.ovl_emb.table.value.row(oid as usize);
            for (c, o) in out[r * d..(r + 1) * d].iter_mut().enumerate() {
                *o = ((tok[c] + pos[c]) + seg[c]) + ovl[c];
            }
        }
        (x, pos_ids)
    }

    fn pool(&self, h: &Tensor, batch: &Batch) -> (Tensor, Vec<f32>) {
        self.pool_masked(h, &batch.mask, batch.n, batch.seq)
    }

    /// Masked mean pooling over an explicit mask — shared by the batch
    /// path ([`Self::pool`]) and the prefix-stitched path, whose mask
    /// covers prefix + suffix rows and so never lives in a [`Batch`].
    fn pool_masked(&self, h: &Tensor, mask: &[bool], n: usize, seq: usize) -> (Tensor, Vec<f32>) {
        let mut pooled = Tensor::zeros(n, self.config.d_model);
        let mut counts = Vec::with_capacity(n);
        for b in 0..n {
            let mut count = 0.0f32;
            for t in 0..seq {
                if mask[b * seq + t] {
                    count += 1.0;
                    let src = h.row(b * seq + t);
                    for (p, &v) in pooled.row_mut(b).iter_mut().zip(src) {
                        *p += v;
                    }
                }
            }
            let denom = count.max(1.0);
            pooled.row_mut(b).iter_mut().for_each(|p| *p /= denom);
            counts.push(denom);
        }
        (pooled, counts)
    }

    /// Training forward: returns one logit per sequence; caches for
    /// [`Self::backward`].
    pub fn forward_train(&mut self, batch: &Batch) -> Vec<f32> {
        assert!(
            batch.seq <= self.config.max_seq,
            "sequence exceeds positions"
        );
        // Embeddings (cache ids inside the embedding layers).
        let pos_ids = Self::position_ids(batch.n, batch.seq);
        let mut x = self.tok_emb.forward(&batch.ids);
        x.add_assign(&self.pos_emb.forward(&pos_ids));
        x.add_assign(&self.seg_emb.forward(&batch.segments));
        x.add_assign(&self.ovl_emb.forward(&batch.overlap));
        for block in &mut self.blocks {
            x = block.forward(&x, batch.seq, &batch.mask, &mut self.dropout_rng);
        }
        let h = self.ln_f.forward(&x);
        let (pooled, counts) = self.pool(&h, batch);
        self.pooled_cache = Some(PoolCache {
            mask: batch.mask.clone(),
            counts,
            n: batch.n,
            seq: batch.seq,
        });
        match &mut self.head {
            Head::Linear(l) => l.forward(&pooled).data().to_vec(),
            Head::Moe(m) => m.forward(&pooled),
        }
    }

    /// Sequences per inference sub-chunk. Small enough that a typical
    /// scoring chunk (64 pairs) splits across an 8-way budget, large
    /// enough that each sub-chunk's GEMMs stay well-shaped.
    const INFER_CHUNK_SEQS: usize = 8;

    /// Inference forward (no caching, `&self`).
    ///
    /// Large batches are split into sub-chunks of [`Self::INFER_CHUNK_SEQS`]
    /// sequences fanned out over the shared `em_nn::threadpool` budget.
    /// Every per-sequence computation (attention is intra-sequence; GEMM
    /// rows, LayerNorm, embedding lookup, and pooling are per-row) is
    /// independent of the rest of the batch, so any partition is bitwise
    /// identical to the unsplit forward. Nested reservations degrade
    /// gracefully: when evaluation workers already hold the budget, the
    /// chunks (and the attention fan-out below them) run sequentially.
    pub fn forward(&self, batch: &Batch) -> Vec<f32> {
        assert!(
            batch.seq <= self.config.max_seq,
            "sequence exceeds positions"
        );
        let nchunks = batch.n.div_ceil(Self::INFER_CHUNK_SEQS);
        if nchunks <= 1 {
            return self.forward_chunk(batch);
        }
        let ranges = Self::chunk_ranges(batch.n);
        let chunks = em_core::run_chunks(&ranges, |&(s0, s1)| {
            self.forward_chunk(&Self::sub_batch(batch, s0, s1))
        })
        // forward() is infallible by signature; a worker panic here is a
        // model bug, so re-raise it on the calling thread.
        .unwrap_or_else(|e| panic!("{e}"));
        chunks.into_iter().flatten().collect()
    }

    /// `[s0, s1)` sequence ranges of [`Self::INFER_CHUNK_SEQS`] each.
    fn chunk_ranges(n: usize) -> Vec<(usize, usize)> {
        (0..n.div_ceil(Self::INFER_CHUNK_SEQS))
            .map(|c| {
                let s0 = c * Self::INFER_CHUNK_SEQS;
                (s0, (s0 + Self::INFER_CHUNK_SEQS).min(n))
            })
            .collect()
    }

    /// One sequential inference sub-chunk (the pre-split forward body).
    fn forward_chunk(&self, batch: &Batch) -> Vec<f32> {
        let (mut x, _) = self.embed(batch);
        for block in &self.blocks {
            x = block.forward_inference(&x, batch.seq, &batch.mask);
        }
        let h = self.ln_f.forward_inference(&x);
        let (pooled, _) = self.pool(&h, batch);
        match &self.head {
            Head::Linear(l) => l.forward_inference(&pooled).data().to_vec(),
            Head::Moe(m) => m.forward_inference(&pooled),
        }
    }

    /// Copies sequences `[s0, s1)` of `batch` into a standalone sub-batch.
    fn sub_batch(batch: &Batch, s0: usize, s1: usize) -> Batch {
        let r = s0 * batch.seq..s1 * batch.seq;
        Batch {
            ids: batch.ids[r.clone()].to_vec(),
            segments: batch.segments[r.clone()].to_vec(),
            mask: batch.mask[r.clone()].to_vec(),
            overlap: batch.overlap[r].to_vec(),
            n: s1 - s0,
            seq: batch.seq,
        }
    }

    /// Switches every layer on the inference path to the given numeric
    /// mode: Linears (attention projections, FFNs, head) flip between f32
    /// and int8 GEMMs; the attention softmax, GELUs, and LayerNorms flip
    /// between exact and vectorized elementwise kernels. Embeddings stay
    /// f32 (a table lookup has no arithmetic to quantize). Training
    /// forwards never consult any of the fast copies, so this only
    /// affects [`Self::forward`] / [`Self::forward_with_prefix`].
    pub fn set_inference_precision(&mut self, precision: InferencePrecision) {
        for block in &mut self.blocks {
            block.set_precision(precision);
        }
        self.ln_f.set_precision(precision);
        match &mut self.head {
            Head::Linear(l) => l.set_precision(precision),
            Head::Moe(m) => {
                m.gate.set_precision(precision);
                for (e1, act, e2) in &mut m.experts {
                    e1.set_precision(precision);
                    act.set_precision(precision);
                    e2.set_precision(precision);
                }
                m.out.set_precision(precision);
            }
        }
    }

    /// Encodes a shared demonstration prefix once: embeds its tokens and
    /// precomputes every per-row block-0 quantity that does not depend on
    /// the per-pair suffix.
    ///
    /// The bidirectional architecture bounds what is reusable. Embedding
    /// adds, block-0 LN1, and the block-0 Q/K/V projections are per-row
    /// operations, so prefix rows computed here are **bitwise identical**
    /// to computing them inside a full stitched sequence (the GEMM
    /// partitions output rows and accumulates each element serially over
    /// `k`; the int8 path quantizes activations per row and accumulates in
    /// exact i32). Block-0 attention mixes prefix and suffix rows, so
    /// everything from there on must run on the full sequence.
    ///
    /// All `mask` entries of the prefix are implicitly `true`: the prefix
    /// is CLS + rendered demonstrations, never padding.
    pub fn encode_prefix(&self, ids: &[u32], segments: &[u32], overlap: &[u32]) -> PrefixState {
        let len = ids.len();
        assert!(len > 0, "prefix must contain at least CLS");
        assert!(len <= self.config.max_seq, "prefix exceeds positions");
        assert_eq!(segments.len(), len);
        assert_eq!(overlap.len(), len);
        let pos_ids: Vec<u32> = (0..len as u32).collect();
        let mut x = self.tok_emb.lookup(ids);
        x.add_assign(&self.pos_emb.lookup(&pos_ids));
        x.add_assign(&self.seg_emb.lookup(segments));
        x.add_assign(&self.ovl_emb.lookup(overlap));
        let b0 = &self.blocks[0];
        let h = b0.ln1.forward_inference(&x);
        let mut qh = None;
        let q1 = b0.attn.wq.forward_inference_shared(&h, &mut qh);
        let k1 = b0.attn.wk.forward_inference_shared(&h, &mut qh);
        let v1 = b0.attn.wv.forward_inference_shared(&h, &mut qh);
        PrefixState { len, x, q1, k1, v1 }
    }

    /// Inference forward over per-pair suffixes that all share one encoded
    /// prefix. Scores are **bitwise identical** to [`Self::forward`] on
    /// the full stitched sequences (see [`Self::encode_prefix`] for why);
    /// `tests/prefix_equivalence.rs` asserts it at 1/2/8 threads.
    ///
    /// `suffix.seq` counts suffix positions only; each stitched sequence
    /// is `prefix.len + suffix.seq` tokens and must fit `max_seq`.
    pub fn forward_with_prefix(&self, prefix: &PrefixState, suffix: &Batch) -> Vec<f32> {
        assert!(
            prefix.len + suffix.seq <= self.config.max_seq,
            "prefix + suffix exceeds positions"
        );
        let nchunks = suffix.n.div_ceil(Self::INFER_CHUNK_SEQS);
        if nchunks <= 1 {
            return self.forward_chunk_with_prefix(prefix, suffix);
        }
        let ranges = Self::chunk_ranges(suffix.n);
        let chunks = em_core::run_chunks(&ranges, |&(s0, s1)| {
            self.forward_chunk_with_prefix(prefix, &Self::sub_batch(suffix, s0, s1))
        })
        .unwrap_or_else(|e| panic!("{e}"));
        chunks.into_iter().flatten().collect()
    }

    /// One sequential prefix-stitched sub-chunk: block 0 runs suffix-only
    /// per-row work and reuses the prefix rows from `prefix`; every later
    /// operation runs on the full stitched sequences.
    fn forward_chunk_with_prefix(&self, prefix: &PrefixState, suffix: &Batch) -> Vec<f32> {
        let (p, s, n) = (prefix.len, suffix.seq, suffix.n);
        let seq = p + s;
        let d = self.config.d_model;

        // Suffix embeddings at their stitched positions `p..p+s`.
        let mut pos_ids = Vec::with_capacity(n * s);
        for _ in 0..n {
            pos_ids.extend(p as u32..seq as u32);
        }
        let mut xs = self.tok_emb.lookup(&suffix.ids);
        xs.add_assign(&self.pos_emb.lookup(&pos_ids));
        xs.add_assign(&self.seg_emb.lookup(&suffix.segments));
        xs.add_assign(&self.ovl_emb.lookup(&suffix.overlap));

        // Full mask: prefix tokens are always real.
        let mut mask = Vec::with_capacity(n * seq);
        for b in 0..n {
            mask.extend(std::iter::repeat(true).take(p));
            mask.extend_from_slice(&suffix.mask[b * s..(b + 1) * s]);
        }

        // Block 0: per-row work on suffix rows only, then attention over
        // the stitched q/k/v.
        let b0 = &self.blocks[0];
        let hs = b0.ln1.forward_inference(&xs);
        let mut qhs = None;
        let qs = b0.attn.wq.forward_inference_shared(&hs, &mut qhs);
        let ks = b0.attn.wk.forward_inference_shared(&hs, &mut qhs);
        let vs = b0.attn.wv.forward_inference_shared(&hs, &mut qhs);
        let x_full = Self::stitch(&prefix.x, &xs, n, p, s, d);
        let q_full = Self::stitch(&prefix.q1, &qs, n, p, s, d);
        let k_full = Self::stitch(&prefix.k1, &ks, n, p, s, d);
        let v_full = Self::stitch(&prefix.v1, &vs, n, p, s, d);
        let a = b0
            .attn
            .forward_inference_precomputed(&q_full, &k_full, &v_full, seq, &mask);
        let mut x1 = x_full;
        x1.add_assign(&a);
        let h2 = b0.ln2.forward_inference(&x1);
        let f = b0.ff1.forward_inference(&h2);
        let f = b0.act.forward_inference(&f);
        let f = b0.ff2.forward_inference(&f);
        let mut x = x1;
        x.add_assign(&f);

        for block in &self.blocks[1..] {
            x = block.forward_inference(&x, seq, &mask);
        }
        let h = self.ln_f.forward_inference(&x);
        let (pooled, _) = self.pool_masked(&h, &mask, n, seq);
        match &self.head {
            Head::Linear(l) => l.forward_inference(&pooled).data().to_vec(),
            Head::Moe(m) => m.forward_inference(&pooled),
        }
    }

    /// Interleaves the shared prefix rows with each sequence's suffix rows
    /// into one `(n·(p+s)) × d` tensor — two contiguous copies per
    /// sequence.
    fn stitch(prefix_rows: &Tensor, suffix_rows: &Tensor, n: usize, p: usize, s: usize, d: usize) -> Tensor {
        debug_assert_eq!(prefix_rows.rows(), p);
        debug_assert_eq!(suffix_rows.rows(), n * s);
        let seq = p + s;
        let mut out = Tensor::zeros(n * seq, d);
        for b in 0..n {
            out.data_mut()[b * seq * d..(b * seq + p) * d].copy_from_slice(prefix_rows.data());
            out.data_mut()[(b * seq + p) * d..(b + 1) * seq * d]
                .copy_from_slice(&suffix_rows.data()[b * s * d..(b + 1) * s * d]);
        }
        out
    }

    /// Backward from per-sequence logit gradients; accumulates all
    /// parameter gradients.
    pub fn backward(&mut self, dlogits: &[f32]) {
        let cache = self.pooled_cache.take().expect("backward before forward");
        assert_eq!(dlogits.len(), cache.n);
        let dpooled = match &mut self.head {
            Head::Linear(l) => {
                let d = Tensor::from_vec(cache.n, 1, dlogits.to_vec());
                l.backward(&d)
            }
            Head::Moe(m) => m.backward(dlogits),
        };
        // Un-pool: distribute each pooled gradient over the valid tokens.
        let d = self.config.d_model;
        let mut dh = Tensor::zeros(cache.n * cache.seq, d);
        for b in 0..cache.n {
            let inv = 1.0 / cache.counts[b];
            for t in 0..cache.seq {
                if cache.mask[b * cache.seq + t] {
                    let dst = dh.row_mut(b * cache.seq + t);
                    for (x, &g) in dst.iter_mut().zip(dpooled.row(b)) {
                        *x = g * inv;
                    }
                }
            }
        }
        let mut dx = self.ln_f.backward(&dh);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        // All four embeddings received the same upstream gradient.
        self.tok_emb.backward(&dx);
        self.pos_emb.backward(&dx);
        self.seg_emb.backward(&dx);
        self.ovl_emb.backward(&dx);
    }

    /// Visits all parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.tok_emb.params_mut();
        ps.extend(self.pos_emb.params_mut());
        ps.extend(self.seg_emb.params_mut());
        ps.extend(self.ovl_emb.params_mut());
        for b in &mut self.blocks {
            ps.extend(b.params_mut());
        }
        ps.extend(self.ln_f.params_mut());
        match &mut self.head {
            Head::Linear(l) => ps.extend(l.params_mut()),
            Head::Moe(m) => ps.extend(m.params_mut()),
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlmFamily;
    use crate::tokenizer::{encode_pair, HashTokenizer};
    use em_core::SerializedPair;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            vocab: 256,
            d_model: 8,
            n_layers: 1,
            n_heads: 2,
            ff_mult: 2,
            max_seq: 16,
            dropout: 0.0,
            claimed_params_millions: 1.0,
        }
    }

    fn batch_of(pairs: &[(&str, &str)], seq: usize) -> Batch {
        let tok = HashTokenizer::new(256);
        let encoded: Vec<_> = pairs
            .iter()
            .map(|(l, r)| {
                encode_pair(
                    &tok,
                    &SerializedPair {
                        left: (*l).into(),
                        right: (*r).into(),
                    },
                    seq,
                )
            })
            .collect();
        Batch::collate(&encoded)
    }

    #[test]
    fn forward_returns_one_logit_per_sequence() {
        let model = EncoderClassifier::new(tiny_config(), 0);
        let batch = batch_of(&[("a b", "a b"), ("a b", "x y"), ("c", "c d")], 16);
        let logits = model.forward(&batch);
        assert_eq!(logits.len(), 3);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn train_and_inference_forward_agree_without_dropout() {
        let mut model = EncoderClassifier::new(tiny_config(), 1);
        let batch = batch_of(&[("p q r", "p q"), ("s", "t u")], 16);
        let a = model.forward_train(&batch);
        let b = model.forward(&batch);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn chunked_inference_matches_unsplit_forward() {
        // 20 sequences → 3 sub-chunks on a 4-way budget; the split path
        // must be bitwise identical to one sequential pass (every op is
        // per-sequence independent and the thread budget never changes
        // reduction order).
        let model = EncoderClassifier::new(tiny_config(), 5);
        let owned: Vec<(String, String)> = (0..20)
            .map(|i| (format!("item number {i}"), format!("item number {}", i % 3)))
            .collect();
        let pairs: Vec<(&str, &str)> = owned.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
        let batch = batch_of(&pairs, 16);
        em_nn::threadpool::set_max_threads(Some(4));
        let split = model.forward(&batch);
        em_nn::threadpool::set_max_threads(None);
        let unsplit = model.forward_chunk(&batch);
        assert_eq!(split, unsplit, "sub-chunked inference diverged");
    }

    #[test]
    fn deterministic_under_seed() {
        let m1 = EncoderClassifier::new(tiny_config(), 9);
        let m2 = EncoderClassifier::new(tiny_config(), 9);
        let batch = batch_of(&[("a", "a")], 16);
        assert_eq!(m1.forward(&batch), m2.forward(&batch));
        let m3 = EncoderClassifier::new(tiny_config(), 10);
        assert_ne!(m1.forward(&batch), m3.forward(&batch));
    }

    #[test]
    fn backward_fills_all_gradients() {
        let mut model = EncoderClassifier::new(tiny_config(), 2);
        let batch = batch_of(&[("a b c", "a b c"), ("d", "e")], 16);
        let logits = model.forward_train(&batch);
        let d: Vec<f32> = logits.iter().map(|_| 1.0).collect();
        model.backward(&d);
        let nonzero = model
            .params_mut()
            .iter()
            .filter(|p| p.grad.frobenius_norm() > 0.0)
            .count();
        // Every parameter group except unused embedding rows gets gradient.
        assert!(nonzero >= 10, "only {nonzero} params received gradient");
    }

    #[test]
    fn model_gradient_checks_end_to_end() {
        // Finite-difference check through the entire model via the token
        // embedding of a used token.
        let mut model = EncoderClassifier::new(tiny_config(), 3);
        // Scale the embedding tables up so the finite-difference signal is
        // well above f32 noise (init is σ=0.02, tiny relative to h).
        for p in model.params_mut().into_iter().take(3) {
            p.value.scale(20.0);
        }
        let batch = batch_of(&[("zz", "zz")], 12);
        let used_id = batch.ids[1] as usize; // first real token
        let logits = model.forward_train(&batch);
        model.backward(&[1.0]);
        let _ = logits;
        let analytic: Vec<f32> = {
            let ps = model.params_mut();
            ps[0].grad.row(used_id).to_vec()
        };
        let dim = model.config.d_model;
        let h = 1e-2f32;
        let mut numeric = Vec::with_capacity(dim);
        for j in 0..dim {
            let eval_at = |delta: f32| {
                let mut probe = model.clone();
                let mut ps = probe.params_mut();
                ps[0].value.row_mut(used_id)[j] += delta;
                drop(ps);
                probe.forward(&batch)[0]
            };
            numeric.push((eval_at(h) - eval_at(-h)) / (2.0 * h));
        }
        let err = em_nn::max_relative_error(&analytic, &numeric);
        assert!(err < 0.08, "gradient check error {err}");
    }

    #[test]
    fn moe_head_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut moe = MoeHead::new(4, 8, 3, &mut rng);
        let pooled: Vec<f32> = vec![0.3, -0.2, 0.7, 0.1, -0.5, 0.4, 0.0, 0.9];
        let x = Tensor::from_vec(2, 4, pooled.clone());
        let _ = moe.forward(&x);
        let dpooled = moe.backward(&[1.0, -0.5]);
        let numeric = em_nn::numeric_gradient(
            &pooled,
            |vals| {
                let xt = Tensor::from_vec(2, 4, vals.to_vec());
                let l = moe.forward_inference(&xt);
                l[0] - 0.5 * l[1]
            },
            1e-2,
        );
        let err = em_nn::max_relative_error(dpooled.data(), &numeric);
        assert!(err < 0.05, "moe gradient check error {err}");
    }

    #[test]
    fn moe_model_builds_and_runs() {
        let model = EncoderClassifier::new_moe(tiny_config(), 4);
        let batch = batch_of(&[("m n", "m n")], 16);
        let logits = model.forward(&batch);
        assert_eq!(logits.len(), 1);
        assert!(model.param_count() > EncoderClassifier::new(tiny_config(), 4).param_count());
    }

    #[test]
    fn family_configs_build_real_models() {
        for fam in [SlmFamily::Bert, SlmFamily::Llama32] {
            let model = EncoderClassifier::new(fam.config(), 0);
            assert!(model.param_count() > 10_000);
        }
    }

    #[test]
    #[should_panic(expected = "cannot collate an empty batch")]
    fn empty_collate_panics() {
        let _ = Batch::collate(&[]);
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn ragged_collate_panics() {
        let tok = HashTokenizer::new(256);
        let a = encode_pair(
            &tok,
            &SerializedPair {
                left: "a".into(),
                right: "b".into(),
            },
            12,
        );
        let b = encode_pair(
            &tok,
            &SerializedPair {
                left: "a".into(),
                right: "b".into(),
            },
            16,
        );
        let _ = Batch::collate(&[a, b]);
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
