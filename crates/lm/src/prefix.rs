//! Shared-prefix cache for batched zoo scoring.
//!
//! Every pair scored in one sweep shares the same demonstration set, so
//! the prompt `[CLS] (demoL [SEP] demoR [SEP] YES|NO [SEP])* queryL [SEP]
//! queryR [SEP]` is byte-identical up to the query. The seed path
//! re-tokenized and re-encoded that prefix for every pair;
//! [`PrefixCache`] does it once per sweep:
//!
//! * demonstration sides are tokenized and truncated once at
//!   construction;
//! * each *variant* of the prefix (demonstrations are dropped from the
//!   front when a long query overflows the budget, so different queries
//!   can see different prefixes) renders its token stream once, lazily;
//! * each variant's [`PrefixState`] — embedded rows plus the block-0
//!   per-row projections — is encoded by the model once, lazily.
//!
//! The token streams produced here are **identical** to
//! [`encode_prompt`](crate::prompt::encode_prompt): prefix tokens ++
//! suffix tokens ++ padding reproduces its output exactly
//! (`tests/prefix_equivalence.rs` asserts it), and the stitched forward
//! pass is bitwise-identical to the full recompute because trailing
//! padding is inert and every reused quantity is per-row (see
//! [`EncoderClassifier::encode_prefix`]).

use crate::model::{Batch, EncoderClassifier, PrefixState};
use crate::prompt::{Demonstration, PromptBudget};
use crate::tokenizer::{overlap, overlap_flags, segment, special, Encoded, HashTokenizer};
use em_core::SerializedPair;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One rendered prefix variant: `[CLS]` plus the demonstrations that
/// survive after dropping the oldest `drop`.
#[derive(Debug)]
pub struct PrefixVariant {
    /// Number of demonstrations dropped from the front.
    pub drop: usize,
    /// Prefix token ids (`[CLS]` + rendered demonstrations, no padding).
    pub ids: Vec<u32>,
    /// Segment ids aligned with `ids`.
    pub segments: Vec<u32>,
    /// Overlap flags aligned with `ids`.
    pub overlap: Vec<u32>,
    state: OnceLock<PrefixState>,
}

impl PrefixVariant {
    /// Prefix length in tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when only `[CLS]` remains (all demonstrations dropped or
    /// none supplied) — never truly empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The model-encoded prefix, computed on first use. The boolean is
    /// `true` when the state was already cached (feeds `lm.prefix_hits`).
    pub fn state(&self, model: &EncoderClassifier) -> (&PrefixState, bool) {
        if let Some(s) = self.state.get() {
            return (s, true);
        }
        (
            self.state
                .get_or_init(|| model.encode_prefix(&self.ids, &self.segments, &self.overlap)),
            false,
        )
    }
}

/// Per-(demo-set, budget) prompt prefix cache. Shared read-only across
/// scoring workers; variant creation is guarded by an internal mutex and
/// model encoding by per-variant [`OnceLock`]s.
#[derive(Debug)]
pub struct PrefixCache {
    budget: PromptBudget,
    /// Tokenized, truncated demonstration sides (the once-per-sweep work).
    demo_tokens: Vec<(Vec<u32>, Vec<u32>, bool)>,
    /// `tail_costs[d]` = positions the demonstrations `d..` occupy
    /// (`len_l + len_r + 4` each); `tail_costs[len]` = 0.
    tail_costs: Vec<usize>,
    variants: Mutex<HashMap<usize, Arc<PrefixVariant>>>,
}

impl PrefixCache {
    /// Tokenizes the demonstration set once under `budget`.
    pub fn new(tok: &HashTokenizer, demos: &[Demonstration], budget: PromptBudget) -> Self {
        assert!(budget.max_seq >= 8, "sequence budget too small");
        let demo_tokens: Vec<(Vec<u32>, Vec<u32>, bool)> = demos
            .iter()
            .map(|d| {
                let mut l = tok.encode_text(&d.pair.left);
                l.truncate(budget.demo_side);
                let mut r = tok.encode_text(&d.pair.right);
                r.truncate(budget.demo_side);
                (l, r, d.label)
            })
            .collect();
        let mut tail_costs = vec![0usize; demo_tokens.len() + 1];
        for d in (0..demo_tokens.len()).rev() {
            tail_costs[d] = tail_costs[d + 1] + demo_tokens[d].0.len() + demo_tokens[d].1.len() + 4;
        }
        PrefixCache {
            budget,
            demo_tokens,
            tail_costs,
            variants: Mutex::new(HashMap::new()),
        }
    }

    /// Tokenizes and trims one query exactly as
    /// [`encode_prompt`](crate::prompt::encode_prompt) does, returning the
    /// drop count its prefix variant needs and the unpadded suffix
    /// (`queryL [SEP] queryR [SEP]`, every position real).
    pub fn encode_suffix(&self, tok: &HashTokenizer, query: &SerializedPair) -> (usize, Encoded) {
        let mut q_left = tok.encode_text(&query.left);
        q_left.truncate(self.budget.query_side);
        let mut q_right = tok.encode_text(&query.right);
        q_right.truncate(self.budget.query_side);
        while q_left.len() + q_right.len() + 3 > self.budget.max_seq {
            if q_left.len() >= q_right.len() {
                q_left.pop();
            } else {
                q_right.pop();
            }
        }
        let query_cost = q_left.len() + q_right.len() + 2;
        let drop = self.drop_for(query_cost);

        let mut ids = Vec::with_capacity(query_cost);
        let mut segments = Vec::with_capacity(query_cost);
        let mut flags = Vec::with_capacity(query_cost);
        let (qlf, qrf) = overlap_flags(&q_left, &q_right);
        for (&t, &f) in q_left.iter().zip(&qlf) {
            ids.push(t);
            segments.push(segment::LEFT);
            flags.push(f);
        }
        ids.push(special::SEP);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
        for (&t, &f) in q_right.iter().zip(&qrf) {
            ids.push(t);
            segments.push(segment::RIGHT);
            flags.push(f);
        }
        ids.push(special::SEP);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
        let mask = vec![true; ids.len()];
        (
            drop,
            Encoded {
                ids,
                segments,
                mask,
                overlap: flags,
            },
        )
    }

    /// Smallest drop count whose surviving demonstrations fit beside a
    /// query of `query_cost` positions: equivalent to `encode_prompt`'s
    /// drop-from-the-front loop (the tail cost shrinks monotonically, and
    /// the query trim guarantees a fit once everything is dropped).
    fn drop_for(&self, query_cost: usize) -> usize {
        (0..=self.demo_tokens.len())
            .find(|&d| 1 + self.tail_costs[d] + query_cost <= self.budget.max_seq)
            .expect("trimmed query always fits with every demonstration dropped")
    }

    /// Prefix length (in tokens) of the variant for `drop`, without
    /// rendering it: `[CLS]` + surviving demonstration positions.
    pub fn variant_len(&self, drop: usize) -> usize {
        1 + self.tail_costs[drop]
    }

    /// The rendered prefix variant for `drop`, building it on first use.
    pub fn variant(&self, drop: usize) -> Arc<PrefixVariant> {
        if let Some(v) = self.variants.lock().unwrap().get(&drop) {
            return v.clone();
        }
        let built = Arc::new(self.render_variant(drop));
        self.variants
            .lock()
            .unwrap()
            .entry(drop)
            .or_insert(built)
            .clone()
    }

    /// Renders `[CLS] (demoL [SEP] demoR [SEP] YES|NO [SEP])*` for the
    /// demonstrations surviving `drop` — the exact front half of
    /// `encode_prompt`'s token stream.
    fn render_variant(&self, drop: usize) -> PrefixVariant {
        let len = self.variant_len(drop);
        let mut ids: Vec<u32> = Vec::with_capacity(len);
        let mut segments: Vec<u32> = Vec::with_capacity(len);
        let mut flags: Vec<u32> = Vec::with_capacity(len);
        ids.push(special::CLS);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
        for (l, r, label) in &self.demo_tokens[drop..] {
            let (lf, rf) = overlap_flags(l, r);
            for (&t, &f) in l.iter().zip(&lf) {
                ids.push(t);
                segments.push(segment::DEMO);
                flags.push(f);
            }
            ids.push(special::SEP);
            segments.push(segment::SPECIAL);
            flags.push(overlap::NA);
            for (&t, &f) in r.iter().zip(&rf) {
                ids.push(t);
                segments.push(segment::DEMO);
                flags.push(f);
            }
            ids.push(special::SEP);
            segments.push(segment::SPECIAL);
            flags.push(overlap::NA);
            ids.push(if *label { special::YES } else { special::NO });
            segments.push(segment::DEMO);
            flags.push(overlap::NA);
            ids.push(special::SEP);
            segments.push(segment::SPECIAL);
            flags.push(overlap::NA);
        }
        debug_assert_eq!(ids.len(), len, "variant length bookkeeping diverged");
        PrefixVariant {
            drop,
            ids,
            segments,
            overlap: flags,
            state: OnceLock::new(),
        }
    }

    /// Real prompt tokens one request for `query` sends — prefix length
    /// arithmetic plus one O(suffix) query tokenization, never a full
    /// prompt re-encode.
    pub fn prompt_token_count(&self, tok: &HashTokenizer, query: &SerializedPair) -> usize {
        let (drop, suffix) = self.encode_suffix(tok, query);
        self.variant_len(drop) + suffix.len()
    }
}

/// Collates unpadded suffixes of one variant group, padded to the group's
/// longest suffix. Shorter rows get the same `PAD`/`SPECIAL`/`NA`/masked
/// filler as full-prompt padding, so the stitched forward treats them
/// exactly as `encode_prompt`'s trailing padding.
pub fn collate_suffixes(suffixes: &[&Encoded]) -> Batch {
    assert!(!suffixes.is_empty(), "cannot collate an empty group");
    let seq = suffixes.iter().map(|e| e.len()).max().unwrap().max(1);
    let n = suffixes.len();
    let mut ids = Vec::with_capacity(n * seq);
    let mut segments = Vec::with_capacity(n * seq);
    let mut mask = Vec::with_capacity(n * seq);
    let mut ovl = Vec::with_capacity(n * seq);
    for e in suffixes {
        ids.extend_from_slice(&e.ids);
        segments.extend_from_slice(&e.segments);
        mask.extend_from_slice(&e.mask);
        ovl.extend_from_slice(&e.overlap);
        for _ in e.len()..seq {
            ids.push(special::PAD);
            segments.push(segment::SPECIAL);
            mask.push(false);
            ovl.push(overlap::NA);
        }
    }
    Batch {
        ids,
        segments,
        mask,
        overlap: ovl,
        n,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::encode_prompt;

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    fn demo(l: &str, r: &str, label: bool) -> Demonstration {
        Demonstration {
            pair: sp(l, r),
            label,
        }
    }

    /// prefix tokens ++ suffix tokens ++ padding must equal
    /// `encode_prompt` exactly, including when long queries force
    /// demonstration drops.
    #[test]
    fn prefix_plus_suffix_reproduces_encode_prompt() {
        let tok = HashTokenizer::new(1024);
        let demos = vec![
            demo("alpha beta gamma", "alpha beta", true),
            demo("delta", "epsilon zeta eta", false),
            demo("theta iota", "theta iota", true),
        ];
        let budget = PromptBudget {
            max_seq: 48,
            demo_side: 5,
            query_side: 10,
        };
        let cache = PrefixCache::new(&tok, &demos, budget);
        for query in [
            sp("one two", "one three"),
            sp("a much longer query with many tokens here", "and a long right side too yes"),
            sp("", ""),
        ] {
            let oracle = encode_prompt(&tok, &query, &demos, budget);
            let (drop, suffix) = cache.encode_suffix(&tok, &query);
            let variant = cache.variant(drop);
            assert_eq!(variant.len(), cache.variant_len(drop));
            let used = variant.len() + suffix.len();
            assert_eq!(used, cache.prompt_token_count(&tok, &query));
            assert_eq!(used, oracle.token_count(), "query {:?}", query.left);

            let mut ids = variant.ids.clone();
            ids.extend_from_slice(&suffix.ids);
            ids.resize(budget.max_seq, special::PAD);
            assert_eq!(ids, oracle.ids);
            let mut segs = variant.segments.clone();
            segs.extend_from_slice(&suffix.segments);
            segs.resize(budget.max_seq, segment::SPECIAL);
            assert_eq!(segs, oracle.segments);
            let mut ovl = variant.overlap.clone();
            ovl.extend_from_slice(&suffix.overlap);
            ovl.resize(budget.max_seq, overlap::NA);
            assert_eq!(ovl, oracle.overlap);
            let mut mask = vec![true; used];
            mask.resize(budget.max_seq, false);
            assert_eq!(mask, oracle.mask);
        }
    }

    #[test]
    fn variants_are_cached_per_drop() {
        let tok = HashTokenizer::new(1024);
        let demos = vec![demo("a b c d e", "a b c d e", true); 4];
        let budget = PromptBudget {
            max_seq: 32,
            demo_side: 5,
            query_side: 10,
        };
        let cache = PrefixCache::new(&tok, &demos, budget);
        let short = cache.encode_suffix(&tok, &sp("x", "y")).0;
        let long = cache
            .encode_suffix(
                &tok,
                &sp(
                    "one two three four five six seven eight nine ten",
                    "one two three four five six seven eight nine ten",
                ),
            )
            .0;
        assert!(long > short, "longer queries must drop more demos");
        assert!(Arc::ptr_eq(&cache.variant(short), &cache.variant(short)));
        assert!(!Arc::ptr_eq(&cache.variant(short), &cache.variant(long)));
    }

    #[test]
    fn zero_demos_prefix_is_cls_only() {
        let tok = HashTokenizer::new(1024);
        let cache = PrefixCache::new(&tok, &[], PromptBudget::default());
        let (drop, _) = cache.encode_suffix(&tok, &sp("a", "b"));
        assert_eq!(drop, 0);
        let v = cache.variant(drop);
        assert_eq!(v.ids, vec![special::CLS]);
    }

    #[test]
    fn collate_pads_to_group_max() {
        let tok = HashTokenizer::new(1024);
        let cache = PrefixCache::new(&tok, &[], PromptBudget::default());
        let (_, a) = cache.encode_suffix(&tok, &sp("one", "two"));
        let (_, b) = cache.encode_suffix(&tok, &sp("one two three", "four five"));
        let batch = collate_suffixes(&[&a, &b]);
        assert_eq!(batch.n, 2);
        assert_eq!(batch.seq, b.len());
        assert!(batch.mask[..a.len()].iter().all(|&m| m));
        assert!(batch.mask[a.len()..batch.seq].iter().all(|&m| !m));
    }
}
