//! Prompt construction for the prompted-LLM matchers (MatchGPT): the
//! serialized query pair, optionally preceded by in-context demonstrations
//! drawn from the transfer pool (never from the target dataset —
//! Section 4.1.1's cross-dataset demonstration protocol).

use crate::tokenizer::{overlap, overlap_flags, segment, special, Encoded, HashTokenizer};
use em_core::SerializedPair;

/// One in-context demonstration: a labelled pair from a transfer dataset.
#[derive(Debug, Clone)]
pub struct Demonstration {
    /// The demonstrated pair.
    pub pair: SerializedPair,
    /// Its ground-truth label.
    pub label: bool,
}

/// Token budgets for prompt assembly.
#[derive(Debug, Clone, Copy)]
pub struct PromptBudget {
    /// Total sequence length (padded).
    pub max_seq: usize,
    /// Tokens per demonstration record side.
    pub demo_side: usize,
    /// Tokens per query record side.
    pub query_side: usize,
}

impl Default for PromptBudget {
    fn default() -> Self {
        PromptBudget {
            max_seq: 64,
            demo_side: 5,
            query_side: 10,
        }
    }
}

/// Encodes `[CLS] (demoL [SEP] demoR [SEP] YES|NO [SEP])* queryL [SEP]
/// queryR [SEP]` with demonstration tokens in the DEMO segment and query
/// tokens in LEFT/RIGHT segments. Demonstrations that do not fit the budget
/// are dropped from the front (oldest first).
pub fn encode_prompt(
    tok: &HashTokenizer,
    query: &SerializedPair,
    demos: &[Demonstration],
    budget: PromptBudget,
) -> Encoded {
    assert!(budget.max_seq >= 8, "sequence budget too small");
    let mut ids: Vec<u32> = vec![special::CLS];
    let mut segments: Vec<u32> = vec![segment::SPECIAL];
    let mut flags: Vec<u32> = vec![overlap::NA];

    // Query cost (computed up front so demos can be dropped if needed).
    let mut q_left = tok.encode_text(&query.left);
    q_left.truncate(budget.query_side);
    let mut q_right = tok.encode_text(&query.right);
    q_right.truncate(budget.query_side);
    // Tiny budgets: trim the query itself (longest side first) so the bare
    // `CLS left SEP right SEP` skeleton always fits.
    while q_left.len() + q_right.len() + 3 > budget.max_seq {
        if q_left.len() >= q_right.len() {
            q_left.pop();
        } else {
            q_right.pop();
        }
    }
    let query_cost = q_left.len() + q_right.len() + 2;

    // Encode demos; drop from the front while over budget.
    let mut demo_tokens: Vec<(Vec<u32>, Vec<u32>, bool)> = demos
        .iter()
        .map(|d| {
            let mut l = tok.encode_text(&d.pair.left);
            l.truncate(budget.demo_side);
            let mut r = tok.encode_text(&d.pair.right);
            r.truncate(budget.demo_side);
            (l, r, d.label)
        })
        .collect();
    // Each demo emits `l SEP r SEP label SEP`: l + r + 4 positions.
    let demo_cost = |d: &(Vec<u32>, Vec<u32>, bool)| d.0.len() + d.1.len() + 4;
    while !demo_tokens.is_empty()
        && 1 + demo_tokens.iter().map(demo_cost).sum::<usize>() + query_cost > budget.max_seq
    {
        demo_tokens.remove(0);
    }

    for (l, r, label) in &demo_tokens {
        let (lf, rf) = overlap_flags(l, r);
        for (&t, &f) in l.iter().zip(&lf) {
            ids.push(t);
            segments.push(segment::DEMO);
            flags.push(f);
        }
        ids.push(special::SEP);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
        for (&t, &f) in r.iter().zip(&rf) {
            ids.push(t);
            segments.push(segment::DEMO);
            flags.push(f);
        }
        ids.push(special::SEP);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
        ids.push(if *label { special::YES } else { special::NO });
        segments.push(segment::DEMO);
        flags.push(overlap::NA);
        ids.push(special::SEP);
        segments.push(segment::SPECIAL);
        flags.push(overlap::NA);
    }

    let (qlf, qrf) = overlap_flags(&q_left, &q_right);
    for (&t, &f) in q_left.iter().zip(&qlf) {
        ids.push(t);
        segments.push(segment::LEFT);
        flags.push(f);
    }
    ids.push(special::SEP);
    segments.push(segment::SPECIAL);
    flags.push(overlap::NA);
    for (&t, &f) in q_right.iter().zip(&qrf) {
        ids.push(t);
        segments.push(segment::RIGHT);
        flags.push(f);
    }
    ids.push(special::SEP);
    segments.push(segment::SPECIAL);
    flags.push(overlap::NA);

    debug_assert!(ids.len() <= budget.max_seq, "prompt exceeded budget");
    let used = ids.len();
    let mut mask = vec![true; used];
    ids.resize(budget.max_seq, special::PAD);
    segments.resize(budget.max_seq, segment::SPECIAL);
    flags.resize(budget.max_seq, overlap::NA);
    mask.resize(budget.max_seq, false);
    Encoded {
        ids,
        segments,
        mask,
        overlap: flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    fn demo(l: &str, r: &str, label: bool) -> Demonstration {
        Demonstration {
            pair: sp(l, r),
            label,
        }
    }

    #[test]
    fn zero_demos_is_a_plain_pair_prompt() {
        let tok = HashTokenizer::new(1024);
        let e = encode_prompt(&tok, &sp("a b", "c"), &[], PromptBudget::default());
        assert_eq!(e.ids[0], special::CLS);
        assert!(!e.segments.contains(&segment::DEMO));
        assert!(e.segments.contains(&segment::LEFT));
        assert!(e.segments.contains(&segment::RIGHT));
    }

    #[test]
    fn demos_carry_label_tokens() {
        let tok = HashTokenizer::new(1024);
        let demos = vec![demo("x", "x", true), demo("p", "q", false)];
        let e = encode_prompt(&tok, &sp("a", "b"), &demos, PromptBudget::default());
        let yes_count = e.ids.iter().filter(|&&t| t == special::YES).count();
        let no_count = e.ids.iter().filter(|&&t| t == special::NO).count();
        assert_eq!(yes_count, 1);
        assert_eq!(no_count, 1);
        assert!(e.segments.contains(&segment::DEMO));
    }

    #[test]
    fn query_tokens_come_after_demo_tokens() {
        let tok = HashTokenizer::new(1024);
        let demos = vec![demo("d1", "d2", true)];
        let e = encode_prompt(&tok, &sp("q1", "q2"), &demos, PromptBudget::default());
        let last_demo = e
            .segments
            .iter()
            .rposition(|&s| s == segment::DEMO)
            .unwrap();
        let first_query = e.segments.iter().position(|&s| s == segment::LEFT).unwrap();
        assert!(last_demo < first_query);
    }

    #[test]
    fn over_budget_drops_oldest_demos_first() {
        let tok = HashTokenizer::new(1024);
        let demos: Vec<Demonstration> = (0..20)
            .map(|i| demo(&format!("left{i} a b c d"), "right e f g h", i % 2 == 0))
            .collect();
        let budget = PromptBudget {
            max_seq: 48,
            demo_side: 5,
            query_side: 8,
        };
        let e = encode_prompt(&tok, &sp("query alpha", "query beta"), &demos, budget);
        assert_eq!(e.len(), 48);
        // Query survives.
        assert!(e.segments.contains(&segment::LEFT));
        assert!(e.segments.contains(&segment::RIGHT));
        // Fewer than 20 demos fit.
        let labels = e
            .ids
            .iter()
            .filter(|&&t| t == special::YES || t == special::NO)
            .count();
        assert!((1..20).contains(&labels));
    }

    #[test]
    fn prompt_never_exceeds_budget() {
        let tok = HashTokenizer::new(1024);
        let long = "word ".repeat(100);
        let demos = vec![demo(&long, &long, true); 5];
        for max_seq in [16, 32, 64, 96] {
            let e = encode_prompt(
                &tok,
                &sp(&long, &long),
                &demos,
                PromptBudget {
                    max_seq,
                    demo_side: 6,
                    query_side: 12,
                },
            );
            assert_eq!(e.len(), max_seq);
        }
    }

    #[test]
    fn query_only_prompt_matches_manual_layout() {
        let tok = HashTokenizer::new(1024);
        let e = encode_prompt(
            &tok,
            &sp("aa", "bb"),
            &[],
            PromptBudget {
                max_seq: 16,
                demo_side: 4,
                query_side: 4,
            },
        );
        // CLS aa SEP bb SEP → 5 tokens.
        assert_eq!(e.token_count(), 5);
        assert_eq!(e.ids[2], special::SEP);
        assert_eq!(e.ids[4], special::SEP);
    }
}
