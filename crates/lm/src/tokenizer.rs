//! Hashed-word tokenizer with special tokens and segment ids.
//!
//! Real language models carry learned subword vocabularies; for the tiny
//! model instantiations in this reproduction a deterministic hashed-word
//! vocabulary preserves what matters for entity matching: *identical
//! surface tokens get identical ids*, so cross-record token overlap is
//! visible to the attention mechanism. Long words additionally emit
//! 4-character chunk tokens, which gives partial overlap for typo'd or
//! truncated values (the analogue of subword sharing).

use em_core::SerializedPair;

/// Special token ids.
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Classification token, always first.
    pub const CLS: u32 = 1;
    /// Separator between serialized records and prompt sections.
    pub const SEP: u32 = 2;
    /// In-context label token "yes" (demonstrations).
    pub const YES: u32 = 3;
    /// In-context label token "no" (demonstrations).
    pub const NO: u32 = 4;
    /// Number of reserved ids.
    pub const COUNT: u32 = 5;
}

/// Overlap flags: whether a token's id also occurs on the *other side* of
/// its record pair. This is pure input-derivable structure (exactly what a
/// pretrained LM's attention extracts); exposing it as an embedding gives
/// the tiny from-scratch models the pattern-matching prior that real
/// pretrained checkpoints carry — see DESIGN.md §1.
pub mod overlap {
    /// Token id does not occur on the other side.
    pub const ABSENT: u32 = 0;
    /// Token id occurs on the other side.
    pub const SHARED: u32 = 1;
    /// Not applicable (special tokens, padding).
    pub const NA: u32 = 2;
    /// Number of flag kinds.
    pub const COUNT: usize = 3;
}

/// Segment ids distinguishing the roles of tokens (BERT-style segment
/// embeddings, extended with a demonstration segment).
pub mod segment {
    /// Special tokens and padding.
    pub const SPECIAL: u32 = 0;
    /// Tokens of the left record.
    pub const LEFT: u32 = 1;
    /// Tokens of the right record.
    pub const RIGHT: u32 = 2;
    /// Tokens belonging to in-context demonstrations.
    pub const DEMO: u32 = 3;
    /// Number of segment kinds.
    pub const COUNT: usize = 4;
}

/// Deterministic hashed-word tokenizer.
#[derive(Debug, Clone)]
pub struct HashTokenizer {
    vocab: u32,
}

impl HashTokenizer {
    /// New tokenizer with the given total vocabulary size (including the
    /// reserved special ids).
    ///
    /// # Panics
    /// Panics if `vocab` leaves no room for regular tokens.
    pub fn new(vocab: u32) -> Self {
        assert!(vocab > special::COUNT + 16, "vocabulary too small");
        HashTokenizer { vocab }
    }

    /// Total vocabulary size.
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    fn hash_to_id(&self, s: &str, salt: u64) -> u32 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        special::COUNT + (h % (self.vocab - special::COUNT) as u64) as u32
    }

    /// Tokenizes free text into hashed word ids plus 4-char chunk ids for
    /// words longer than 5 characters.
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for word in em_text::words(text) {
            out.push(self.hash_to_id(&word, 0));
            if word.len() > 5 {
                let chars: Vec<char> = word.chars().collect();
                for chunk in chars.chunks(4) {
                    let piece: String = chunk.iter().collect();
                    out.push(self.hash_to_id(&piece, 0x9e37));
                }
            }
        }
        out
    }
}

/// One encoded sequence ready for the model: token ids, segment ids, and a
/// validity mask, all of length `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// Token ids (padded with [`special::PAD`]).
    pub ids: Vec<u32>,
    /// Segment ids aligned with `ids`.
    pub segments: Vec<u32>,
    /// `true` for real tokens, `false` for padding.
    pub mask: Vec<bool>,
    /// Overlap flags aligned with `ids` (see [`overlap`]).
    pub overlap: Vec<u32>,
}

impl Encoded {
    /// Sequence length (including padding).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the sequence contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of non-padding tokens.
    pub fn token_count(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }
}

/// Computes per-token overlap flags for two token-id slices.
pub fn overlap_flags(left: &[u32], right: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let rset: std::collections::HashSet<u32> = right.iter().copied().collect();
    let lset: std::collections::HashSet<u32> = left.iter().copied().collect();
    let lf = left
        .iter()
        .map(|t| {
            if rset.contains(t) {
                overlap::SHARED
            } else {
                overlap::ABSENT
            }
        })
        .collect();
    let rf = right
        .iter()
        .map(|t| {
            if lset.contains(t) {
                overlap::SHARED
            } else {
                overlap::ABSENT
            }
        })
        .collect();
    (lf, rf)
}

/// Encodes a serialized pair as `[CLS] left [SEP] right [SEP]`, truncating
/// each side to fit `max_seq` and padding to exactly `max_seq`.
pub fn encode_pair(tok: &HashTokenizer, pair: &SerializedPair, max_seq: usize) -> Encoded {
    assert!(max_seq >= 8, "sequence budget too small");
    let budget = (max_seq - 3) / 2; // CLS + 2 SEP overhead
    let mut left = tok.encode_text(&pair.left);
    left.truncate(budget);
    let mut right = tok.encode_text(&pair.right);
    right.truncate(max_seq - 3 - left.len());
    let (lflags, rflags) = overlap_flags(&left, &right);

    let mut ids = Vec::with_capacity(max_seq);
    let mut segments = Vec::with_capacity(max_seq);
    let mut flags = Vec::with_capacity(max_seq);
    ids.push(special::CLS);
    segments.push(segment::SPECIAL);
    flags.push(overlap::NA);
    for (&t, &f) in left.iter().zip(&lflags) {
        ids.push(t);
        segments.push(segment::LEFT);
        flags.push(f);
    }
    ids.push(special::SEP);
    segments.push(segment::SPECIAL);
    flags.push(overlap::NA);
    for (&t, &f) in right.iter().zip(&rflags) {
        ids.push(t);
        segments.push(segment::RIGHT);
        flags.push(f);
    }
    ids.push(special::SEP);
    segments.push(segment::SPECIAL);
    flags.push(overlap::NA);

    let used = ids.len();
    let mut mask = vec![true; used];
    ids.resize(max_seq, special::PAD);
    segments.resize(max_seq, segment::SPECIAL);
    flags.resize(max_seq, overlap::NA);
    mask.resize(max_seq, false);
    Encoded {
        ids,
        segments,
        mask,
        overlap: flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    #[test]
    fn identical_words_share_ids() {
        let tok = HashTokenizer::new(1024);
        // "coolpix" (7 chars) and "camera" (6 chars) expand to word + 2
        // chunk tokens; "nikon" (5 chars) stays a single token.
        let a = tok.encode_text("nikon coolpix camera");
        let b = tok.encode_text("camera nikon");
        assert_eq!(a.len(), 7);
        assert_eq!(a[0], b[3]); // "nikon" is b's 4th token (after camera+chunks)
        assert_eq!(a[4], b[0]); // "camera" word token
    }

    #[test]
    fn long_words_emit_chunks() {
        let tok = HashTokenizer::new(1024);
        let ids = tok.encode_text("powershot");
        // word id + chunk ids "powe", "rsho", "t".
        assert_eq!(ids.len(), 4);
        // Short words stay single tokens.
        assert_eq!(tok.encode_text("nikon").len(), 1);
    }

    #[test]
    fn typo_preserves_some_chunks() {
        let tok = HashTokenizer::new(4096);
        let a = tok.encode_text("powershot1200");
        let b = tok.encode_text("powershot1201"); // final chunk differs
        let shared = a.iter().filter(|id| b.contains(id)).count();
        assert!(shared >= 2, "typo'd variants should share chunk ids");
        assert_ne!(a, b);
    }

    #[test]
    fn ids_stay_out_of_special_range() {
        let tok = HashTokenizer::new(256);
        for id in tok.encode_text("hello world 123 foo bar baz qux") {
            assert!(id >= special::COUNT);
            assert!(id < 256);
        }
    }

    #[test]
    fn encode_pair_layout() {
        let tok = HashTokenizer::new(1024);
        let e = encode_pair(&tok, &sp("alpha beta", "gamma"), 16);
        assert_eq!(e.len(), 16);
        assert_eq!(e.ids[0], special::CLS);
        assert_eq!(e.segments[0], segment::SPECIAL);
        assert_eq!(e.segments[1], segment::LEFT);
        assert_eq!(e.segments[2], segment::LEFT);
        assert_eq!(e.ids[3], special::SEP);
        assert_eq!(e.segments[4], segment::RIGHT);
        assert_eq!(e.ids[5], special::SEP);
        // Padding after the tokens.
        assert!(!e.mask[6..].iter().any(|&m| m));
        assert_eq!(e.token_count(), 6);
    }

    #[test]
    fn encode_pair_truncates_long_inputs() {
        let tok = HashTokenizer::new(1024);
        let long = "word ".repeat(50);
        let e = encode_pair(&tok, &sp(&long, &long), 24);
        assert_eq!(e.len(), 24);
        assert!(e.token_count() <= 24);
        // Both sides are represented.
        assert!(e.segments.contains(&segment::LEFT));
        assert!(e.segments.contains(&segment::RIGHT));
    }

    #[test]
    fn empty_pair_still_encodes() {
        let tok = HashTokenizer::new(1024);
        let e = encode_pair(&tok, &sp("", ""), 8);
        assert_eq!(e.token_count(), 3); // CLS SEP SEP
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_rejected() {
        let _ = HashTokenizer::new(8);
    }

    proptest! {
        #[test]
        fn encoding_is_deterministic(s in ".{0,64}") {
            let tok = HashTokenizer::new(512);
            prop_assert_eq!(tok.encode_text(&s), tok.encode_text(&s));
        }

        #[test]
        fn pair_encoding_invariants(l in ".{0,80}", r in ".{0,80}") {
            let tok = HashTokenizer::new(512);
            let e = encode_pair(&tok, &sp(&l, &r), 32);
            prop_assert_eq!(e.ids.len(), 32);
            prop_assert_eq!(e.segments.len(), 32);
            prop_assert_eq!(e.mask.len(), 32);
            // Mask is a prefix of trues.
            let first_pad = e.mask.iter().position(|&m| !m).unwrap_or(32);
            prop_assert!(e.mask[..first_pad].iter().all(|&m| m));
            prop_assert!(e.mask[first_pad..].iter().all(|&m| !m));
            // All padding ids are PAD.
            for i in first_pad..32 {
                prop_assert_eq!(e.ids[i], special::PAD);
            }
        }
    }
}
