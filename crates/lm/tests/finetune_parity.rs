//! Fine-tuning hot-loop parity suite, covering the two equivalences the
//! fused training step rests on:
//!
//! * **Pad-to-batch-max is exact** — collating a batch to its longest
//!   valid row produces bitwise identical logits to full-length padding.
//!   Padded keys get zero attention weight, masked mean pooling skips
//!   padded positions, and position ids of live tokens are unchanged by
//!   trimming, so trailing-pad columns are completely inert.
//! * **The training loop is thread-count invariant** — a full `train` +
//!   `predict_proba` run produces bitwise identical probabilities (and
//!   epoch losses) at 1, 2, and 8 worker threads, because every parallel
//!   region in the stack (GEMM, attention, LayerNorm/Embedding backward,
//!   fused optimizer) preserves its serial reduction order.

use em_core::SerializedPair;
use em_lm::config::ModelConfig;
use em_lm::finetune::{predict_proba, train, TrainConfig};
use em_lm::model::{Batch, EncoderClassifier};
use em_lm::tokenizer::{encode_pair, Encoded, HashTokenizer};
use em_nn::threadpool;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

fn tiny_config() -> ModelConfig {
    ModelConfig {
        vocab: 512,
        d_model: 16,
        n_layers: 2,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 24,
        dropout: 0.0,
        claimed_params_millions: 1.0,
    }
}

/// Encodes pairs with strongly varying token counts so batches are truly
/// ragged: valid lengths range from a few tokens up to (optionally) the
/// full model max.
fn ragged_examples(n: usize, seq: usize, with_full_row: bool) -> Vec<(Encoded, bool)> {
    let tok = HashTokenizer::new(512);
    let words = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel",
    ];
    let mut out: Vec<(Encoded, bool)> = (0..n)
        .map(|i| {
            let len = 1 + i % 5;
            let left: Vec<&str> = (0..len).map(|j| words[(i + j) % words.len()]).collect();
            let right: Vec<&str> = (0..len).map(|j| words[(i + j + i % 2) % words.len()]).collect();
            let pair = SerializedPair {
                left: left.join(" ").into(),
                right: right.join(" ").into(),
            };
            (encode_pair(&tok, &pair, seq), i % 2 == 0)
        })
        .collect();
    if with_full_row {
        // One row with enough tokens to fill the model max exactly, so the
        // "longest row equals model max" edge case is always present.
        let long: Vec<&str> = (0..seq).map(|j| words[j % words.len()]).collect();
        let pair = SerializedPair {
            left: long.join(" ").into(),
            right: long.join(" ").into(),
        };
        let e = encode_pair(&tok, &pair, seq);
        assert_eq!(
            e.mask.iter().rposition(|&m| m).map(|p| p + 1),
            Some(seq),
            "long row must fill the model max"
        );
        out.push((e, true));
    }
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Trimmed collation must yield bitwise identical inference logits to
/// full-length padding, on ragged batches including one whose longest row
/// equals the model max (where the trim is a no-op by construction).
#[test]
fn pad_to_batch_max_matches_full_padding_bitwise() {
    let seq = tiny_config().max_seq;
    let model = EncoderClassifier::new(tiny_config(), 3);
    for with_full_row in [false, true] {
        let examples = ragged_examples(9, seq, with_full_row);
        let encoded: Vec<Encoded> = examples.iter().map(|(e, _)| e.clone()).collect();
        let full = Batch::collate(&encoded);
        let mut trimmed = Batch::empty();
        trimmed.collate_refs_into(&encoded);
        if with_full_row {
            assert_eq!(trimmed.seq, seq, "full row must defeat the trim");
        } else {
            assert!(trimmed.seq < seq, "ragged batch must actually trim");
        }
        assert_eq!(
            bits(&model.forward(&full)),
            bits(&model.forward(&trimmed)),
            "trimmed logits diverged (full_row = {with_full_row})"
        );
    }
}

/// Same contract through the training forward (caching path), which is
/// what the fine-tuning loop actually calls.
#[test]
fn pad_to_batch_max_matches_full_padding_in_forward_train() {
    let seq = tiny_config().max_seq;
    let examples = ragged_examples(7, seq, true);
    let encoded: Vec<Encoded> = examples.iter().map(|(e, _)| e.clone()).collect();
    let full = Batch::collate(&encoded);
    let mut trimmed = Batch::empty();
    trimmed.collate_refs_into(&encoded);
    // Fresh identically-seeded models: forward_train caches internally.
    let mut m1 = EncoderClassifier::new(tiny_config(), 4);
    let mut m2 = EncoderClassifier::new(tiny_config(), 4);
    assert_eq!(
        bits(&m1.forward_train(&full)),
        bits(&m2.forward_train(&trimmed)),
        "training-forward logits diverged under trimming"
    );
}

/// Zero-copy collation must gather exactly the rows the index list names,
/// in order.
#[test]
fn collate_into_gathers_indexed_rows() {
    let seq = tiny_config().max_seq;
    let examples = ragged_examples(6, seq, false);
    let mut batch = Batch::empty();
    batch.collate_into(&examples, &[4, 1, 3]);
    assert_eq!(batch.n, 3);
    for (row, &src) in [4usize, 1, 3].iter().enumerate() {
        let e = &examples[src].0;
        assert_eq!(
            &batch.ids[row * batch.seq..(row + 1) * batch.seq],
            &e.ids[..batch.seq],
            "row {row} should be example {src}"
        );
    }
}

/// Satellite requirement: a full fine-tuning run — training and
/// prediction — is bitwise identical at 1, 2, and 8 worker threads.
#[test]
fn training_run_is_identical_at_1_2_and_8_threads() {
    let _guard = THREAD_CAP.lock().unwrap();
    let seq = tiny_config().max_seq;
    let examples = ragged_examples(33, seq, true);
    let encoded: Vec<Encoded> = examples.iter().map(|(e, _)| e.clone()).collect();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let run_at = |cap: usize| {
        threadpool::set_max_threads(Some(cap));
        let mut model = EncoderClassifier::new(tiny_config(), 9);
        let report = train(&mut model, &examples, &cfg);
        let probs = predict_proba(&model, &encoded, 16);
        threadpool::set_max_threads(None);
        (bits(&report.epoch_losses), bits(&probs))
    };
    let want = run_at(1);
    for cap in [2usize, 8] {
        let got = run_at(cap);
        assert_eq!(want.0, got.0, "epoch losses diverged at {cap} thread(s)");
        assert_eq!(want.1, got.1, "predictions diverged at {cap} thread(s)");
    }
}
