//! Prefix-cache and int8 equivalence suite for zoo scoring.
//!
//! Three contracts from the inference-path optimization work:
//!
//! 1. **Prefix caching is bitwise-invisible.** `score_batch` (grouped by
//!    drop variant, demo prefix encoded once, suffixes padded to the
//!    group max) must produce bit-identical scores to
//!    `score_batch_full_recompute` (the seed path: every prompt encoded
//!    and forwarded from scratch) — at 1, 2 and 8 worker threads.
//! 2. **Int8 drifts within bounds.** With `InferencePrecision::Int8` the
//!    per-pair score may move by at most ε, and the 0.5-threshold
//!    decision may flip on fewer than 0.5% of a seeded LODO-style slice.
//! 3. **Worker panics surface as data.** A panic inside one scoring
//!    chunk becomes `EmError::WorkerPanic` carrying the payload message,
//!    and the remaining chunks still complete.

use em_core::{EmError, SerializedPair};
use em_lm::{
    pretrain_tier, random_demonstrations, Demonstration, EncoderClassifier, HashTokenizer,
    LlmTier, ModelConfig, PretrainCorpus, PretrainedLlm, PromptBudget,
};
use em_nn::qgemm::InferencePrecision;
use em_nn::threadpool;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes tests that override the process-global worker budget.
static THREAD_CAP: Mutex<()> = Mutex::new(());

fn sp(l: &str, r: &str) -> SerializedPair {
    SerializedPair {
        left: l.into(),
        right: r.into(),
    }
}

fn toy_corpus(n: usize) -> PretrainCorpus {
    PretrainCorpus {
        pairs: (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    (
                        sp(&format!("acme widget {i} red"), &format!("acme widget {i} red")),
                        true,
                    )
                } else {
                    (
                        sp(&format!("acme widget {i} red"), &format!("zenith gadget {} blue", i + 1)),
                        false,
                    )
                }
            })
            .collect(),
    }
}

/// One shared trained tier; tests that need a different precision clone it
/// (the clone shares weights logically but owns its prefix memo).
fn shared_tier() -> Arc<PretrainedLlm> {
    static TIER: OnceLock<Arc<PretrainedLlm>> = OnceLock::new();
    // The strongest tier: its pretraining polarizes scores away from the
    // 0.5 threshold, which is what the flip-rate gate measures against.
    TIER.get_or_init(|| Arc::new(pretrain_tier(LlmTier::Gpt4, &toy_corpus(160), 0)))
        .clone()
}

fn shared_demos() -> Vec<Demonstration> {
    random_demonstrations(&toy_corpus(160).pairs, 2, 2, 7)
}

/// A LODO-style scoring slice: enough pairs to span several worker
/// chunks, with query lengths from empty to long enough to force the
/// prefix cache through multiple drop variants.
fn lodo_slice(n: usize) -> Vec<SerializedPair> {
    (0..n)
        .map(|i| match i % 5 {
            0 => sp(&format!("acme widget {i} red"), &format!("acme widget {i} red")),
            1 => sp(&format!("acme widget {i} red"), &format!("zenith gadget {} blue", i + 1)),
            2 => sp(
                &format!("portable bluetooth speaker model {i} with deep bass and long battery"),
                &format!("portable bluetooth speaker model {i} deep bass long battery life"),
            ),
            3 => sp("", &format!("thing {i}")),
            _ => sp(
                &format!("super ultra mega deluxe premium edition item number {i} in stock now today"),
                &format!("cheap knockoff item {}", i + 3),
            ),
        })
        .collect()
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Contract 1: prefix-cached scoring is bit-identical to the seed
/// full-recompute path, independent of worker count and of cache warmth
/// (the second scoring pass hits memoized `PrefixState`s).
#[test]
fn cached_scoring_matches_full_recompute_bitwise_at_every_thread_count() {
    let _guard = THREAD_CAP.lock().unwrap();
    let tier = shared_tier();
    let demos = shared_demos();
    let pairs = lodo_slice(150); // > 2 chunks of 64
    let expect = bits(&tier.score_batch_full_recompute(&pairs, &demos));
    for threads in [1usize, 2, 8] {
        threadpool::set_max_threads(Some(threads));
        let cold = bits(&tier.score_batch(&pairs, &demos));
        let warm = bits(&tier.score_batch(&pairs, &demos));
        assert_eq!(cold, expect, "cold cache diverged at {threads} threads");
        assert_eq!(warm, expect, "warm cache diverged at {threads} threads");
    }
    threadpool::set_max_threads(None);
}

/// Prefix caching must also be invisible in the zero-demo (zero-shot)
/// configuration, where the cached prefix is a lone CLS token.
#[test]
fn zero_shot_cached_scoring_matches_full_recompute() {
    let tier = shared_tier();
    let pairs = lodo_slice(70);
    assert_eq!(
        bits(&tier.score_batch(&pairs, &[])),
        bits(&tier.score_batch_full_recompute(&pairs, &[])),
    );
}

/// Contract 2: int8 inference stays within the drift bound per score and
/// flips fewer than 0.5% of 0.5-threshold decisions on a seeded slice.
#[test]
fn int8_drift_and_flip_rate_within_bounds() {
    const EPSILON: f32 = 0.05;
    let demos = shared_demos();
    let pairs = lodo_slice(400);
    let f32_scores = shared_tier().score_batch(&pairs, &demos);

    let mut int8_tier: PretrainedLlm = (*shared_tier()).clone();
    int8_tier.set_precision(InferencePrecision::Int8);
    let int8_scores = int8_tier.score_batch(&pairs, &demos);

    let mut flips = 0usize;
    for (i, (&a, &b)) in f32_scores.iter().zip(&int8_scores).enumerate() {
        let delta = (a - b).abs();
        assert!(
            delta <= EPSILON,
            "pair {i}: |Δscore| = {delta} exceeds ε = {EPSILON} ({a} vs {b})"
        );
        if (a >= 0.5) != (b >= 0.5) {
            flips += 1;
        }
    }
    let flip_rate = flips as f64 / pairs.len() as f64;
    assert!(
        flip_rate < 0.005,
        "flip rate {flip_rate} (= {flips}/{}) at the 0.5 threshold exceeds 0.5%",
        pairs.len()
    );

    // Returning to full precision restores the exact f32 bits.
    int8_tier.set_precision(InferencePrecision::Full);
    assert_eq!(bits(&int8_tier.score_batch(&pairs, &demos)), bits(&f32_scores));
}

/// Contract 3: a panic in one scoring chunk (here: the tokenizer hashes
/// into a vocab the model's embedding table does not cover) surfaces as
/// `EmError::WorkerPanic` with the payload message, at every worker
/// count, instead of poisoning the process.
#[test]
fn scoring_panic_surfaces_as_worker_panic_error() {
    let _guard = THREAD_CAP.lock().unwrap();
    let config = ModelConfig {
        vocab: 256, // embedding table far smaller than the tokenizer's ids
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 64,
        dropout: 0.0,
        claimed_params_millions: 0.0,
    };
    let tier = PretrainedLlm::from_parts(
        LlmTier::Gpt35Turbo,
        EncoderClassifier::new(config, 0),
        HashTokenizer::new(4096),
        PromptBudget {
            max_seq: 64,
            demo_side: 8,
            query_side: 10,
        },
    );
    let pairs = lodo_slice(130); // ≥ 2 chunks, so other chunks keep running
    for threads in [1usize, 8] {
        threadpool::set_max_threads(Some(threads));
        match tier.try_score_batch(&pairs, &[]) {
            Err(EmError::WorkerPanic(msg)) => {
                assert!(
                    msg.contains("out of vocab"),
                    "panic payload should be preserved, got: {msg}"
                );
            }
            other => panic!("expected WorkerPanic at {threads} threads, got {other:?}"),
        }
    }
    threadpool::set_max_threads(None);
}
