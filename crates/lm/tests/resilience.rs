//! Integration tests for the hosted-LLM resilience stack: determinism of
//! the injected fault schedule, transparency of retries, and the
//! `EM_FAULTS` environment contract.

use em_faults::FaultPlan;
use em_lm::{pretrain_tier, LlmTier, PretrainedLlm, ResilientLlm};
use em_core::SerializedPair;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn sp(l: &str, r: &str) -> SerializedPair {
    SerializedPair {
        left: l.into(),
        right: r.into(),
    }
}

/// One shared frozen tier for every test (pretraining is the expensive
/// part; the resilience layer under test wraps it without mutating it).
fn shared_tier() -> Arc<PretrainedLlm> {
    static TIER: OnceLock<Arc<PretrainedLlm>> = OnceLock::new();
    TIER.get_or_init(|| {
        let corpus = em_lm::PretrainCorpus {
            pairs: (0..160)
                .map(|i| {
                    if i % 2 == 0 {
                        (sp(&format!("item {i}"), &format!("item {i}")), true)
                    } else {
                        (sp(&format!("item {i}"), &format!("thing {}", i + 1)), false)
                    }
                })
                .collect(),
        };
        Arc::new(pretrain_tier(LlmTier::Gpt35Turbo, &corpus, 0))
    })
    .clone()
}

/// A batch spanning several `HOSTED_CHUNK`-sized API calls, so the fault
/// schedule exercises distinct chunk keys.
fn multi_chunk_batch() -> Vec<SerializedPair> {
    (0..em_lm::HOSTED_CHUNK * 2 + 10)
        .map(|i| {
            if i % 2 == 0 {
                sp(&format!("item {i}"), &format!("item {i}"))
            } else {
                sp(&format!("item {i}"), &format!("thing {}", i + 1))
            }
        })
        .collect()
}

/// Full observable outcome of one resilient run: the scores (or the
/// error's display form), the virtual-clock reading (the backoff
/// schedule's total) and the breaker transition count.
fn run_once(plan: &FaultPlan, pairs: &[SerializedPair]) -> (Result<Vec<u32>, String>, u64, u64) {
    let client = ResilientLlm::for_tier(shared_tier(), Some(plan.clone()));
    let outcome = client
        .score_batch(pairs, &[])
        .map(|scores| scores.into_iter().map(f32::to_bits).collect())
        .map_err(|e| e.to_string());
    (outcome, client.clock().now_ns(), client.breaker().transitions())
}

proptest! {
    /// The same `EM_FAULTS` plan must reproduce the same run, bit for
    /// bit: same scores (or same failure), same retry schedule (virtual
    /// clock total), same breaker transitions.
    #[test]
    fn same_plan_reproduces_schedule_and_scores(seed in 0u64..1_000, rate_milli in 0u64..=250) {
        let plan = FaultPlan::new(seed, rate_milli as f64 / 1000.0, em_faults::FaultKind::ALL.to_vec()).unwrap();
        let pairs = multi_chunk_batch();
        let a = run_once(&plan, &pairs);
        let b = run_once(&plan, &pairs);
        prop_assert_eq!(&a.0, &b.0, "scores/outcome must be deterministic");
        prop_assert_eq!(a.1, b.1, "virtual-clock retry schedule must be deterministic");
        prop_assert_eq!(a.2, b.2, "breaker transitions must be deterministic");
    }

    /// Whenever a faulty run succeeds, its scores are bit-identical to
    /// the fault-free run: retries are transparent to the metrics.
    #[test]
    fn surviving_faults_never_change_scores(seed in 0u64..1_000) {
        let plan = FaultPlan::new(seed, 0.1, em_faults::FaultKind::ALL.to_vec()).unwrap();
        let pairs = multi_chunk_batch();
        let clean = ResilientLlm::for_tier(shared_tier(), None)
            .score_batch(&pairs, &[])
            .unwrap();
        if let (Ok(scores), _, _) = run_once(&plan, &pairs) {
            let clean_bits: Vec<u32> = clean.into_iter().map(f32::to_bits).collect();
            prop_assert_eq!(scores, clean_bits);
        }
    }
}

#[test]
fn em_faults_env_contract_round_trips() {
    // `FaultPlan::from_env` reads `EM_FAULTS=seed,rate,kinds`; this test
    // owns the variable (nothing else in this binary touches it).
    std::env::set_var("EM_FAULTS", "42,0.25,rate-limit+timeout");
    let plan = FaultPlan::from_env().expect("EM_FAULTS is set");
    assert_eq!(plan.seed(), 42);
    assert!((plan.rate() - 0.25).abs() < 1e-12);
    assert_eq!(
        plan.kinds(),
        &[em_faults::FaultKind::RateLimit, em_faults::FaultKind::Timeout]
    );
    std::env::remove_var("EM_FAULTS");
    assert!(FaultPlan::from_env().is_none());
}

#[test]
fn zero_rate_plan_is_a_clean_passthrough() {
    let pairs = multi_chunk_batch();
    let plan = FaultPlan::new(7, 0.0, em_faults::FaultKind::ALL.to_vec()).unwrap();
    let (outcome, clock_ns, transitions) = run_once(&plan, &pairs);
    let clean: Vec<u32> = ResilientLlm::for_tier(shared_tier(), None)
        .score_batch(&pairs, &[])
        .unwrap()
        .into_iter()
        .map(f32::to_bits)
        .collect();
    assert_eq!(outcome.unwrap(), clean);
    assert_eq!(clock_ns, 0, "no faults means no backoff sleeps");
    assert_eq!(transitions, 0, "no faults means no breaker movement");
}
