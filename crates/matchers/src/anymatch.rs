//! AnyMatch (Zhang et al., 2024): a **model-agnostic, data-centric**
//! zero-shot matcher. No model customisation — an off-the-shelf language
//! model is fine-tuned on carefully *prepared* data:
//!
//! * **label balancing** so matches and non-matches are equally
//!   represented;
//! * **boosting-based difficult-example selection** (AutoML boosting in
//!   the original) to surface hard pairs;
//! * optional **attribute-pair augmentation** with weakly labelled
//!   attribute-level examples.
//!
//! Following the paper's Section 4.1, the GPT-2 and T5 backbones use the
//! full pipeline, while the LLaMA3.2 variant drops boosting and attribute
//! augmentation ("we do not apply the AutoML boosting and data
//! augmentation ... but retain the label balancing operation") and uses a
//! reduced learning rate.

use crate::common::{
    attribute_pair_augmentation, balance_labels, sample_transfer_pairs, select_difficult,
};
use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_lm::{
    encode_pair, predict_proba, pretrain_backbone, train, EncoderClassifier, HashTokenizer,
    PretrainCorpus, SlmFamily, TrainConfig,
};

/// AnyMatch backbone selection (the bracketed variants of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyMatchBackbone {
    /// GPT-2 (124M claimed): full data-centric pipeline.
    Gpt2,
    /// T5 (220M claimed): full data-centric pipeline.
    T5,
    /// LLaMA3.2-1B (1.3B claimed): balancing only, reduced learning rate.
    Llama32,
}

impl AnyMatchBackbone {
    fn family(&self) -> SlmFamily {
        match self {
            AnyMatchBackbone::Gpt2 => SlmFamily::Gpt2,
            AnyMatchBackbone::T5 => SlmFamily::T5,
            AnyMatchBackbone::Llama32 => SlmFamily::Llama32,
        }
    }

    /// `true` if the variant runs boosting selection + attribute
    /// augmentation.
    pub fn full_pipeline(&self) -> bool {
        !matches!(self, AnyMatchBackbone::Llama32)
    }
}

/// Configuration of the AnyMatch matcher.
#[derive(Debug, Clone, Copy)]
pub struct AnyMatchConfig {
    /// Training pairs sampled per transfer dataset.
    pub per_dataset: usize,
    /// Boosting keeps this many hard + as many easy examples.
    pub difficult_keep: usize,
    /// Attribute-pair augmentation examples.
    pub attr_aug: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Label-balancing toggle (ablation knob).
    pub balancing: bool,
    /// Boosting-selection toggle (ablation knob).
    pub boosting: bool,
    /// Attribute-augmentation toggle (ablation knob).
    pub attribute_augmentation: bool,
}

impl Default for AnyMatchConfig {
    fn default() -> Self {
        AnyMatchConfig {
            per_dataset: 100,
            difficult_keep: 350,
            attr_aug: 200,
            epochs: 3,
            balancing: true,
            boosting: true,
            attribute_augmentation: true,
        }
    }
}

/// The AnyMatch matcher.
pub struct AnyMatch {
    backbone: AnyMatchBackbone,
    cfg: AnyMatchConfig,
    tokenizer: HashTokenizer,
    model: Option<EncoderClassifier>,
    base_model: Option<EncoderClassifier>,
}

impl AnyMatch {
    /// New AnyMatch with the paper's per-backbone pipeline configuration.
    pub fn new(backbone: AnyMatchBackbone) -> Self {
        let mut cfg = AnyMatchConfig::default();
        if !backbone.full_pipeline() {
            cfg.boosting = false;
            cfg.attribute_augmentation = false;
        }
        Self::with_config(backbone, cfg)
    }

    /// New AnyMatch with explicit configuration (ablations).
    pub fn with_config(backbone: AnyMatchBackbone, cfg: AnyMatchConfig) -> Self {
        AnyMatch {
            tokenizer: HashTokenizer::new(backbone.family().config().vocab),
            backbone,
            cfg,
            model: None,
            base_model: None,
        }
    }

    /// AnyMatch starting from a pretrained backbone checkpoint (the paper
    /// fine-tunes published GPT-2 / T5 / LLaMA3.2 checkpoints). Larger
    /// backbones receive more pretraining exposure, preserving the paper's
    /// capacity ordering.
    pub fn pretrained(backbone: AnyMatchBackbone, corpus: &PretrainCorpus) -> Self {
        let mut m = Self::new(backbone);
        let n = match backbone {
            AnyMatchBackbone::Gpt2 => 4_000,
            AnyMatchBackbone::T5 => 5_000,
            AnyMatchBackbone::Llama32 => 8_000,
        };
        m.base_model = Some(pretrain_backbone(
            backbone.family().config(),
            false,
            corpus,
            n,
            0,
        ));
        m
    }

    /// Pretrained variant with an explicit pipeline configuration
    /// (ablations).
    pub fn pretrained_with_config(
        backbone: AnyMatchBackbone,
        corpus: &PretrainCorpus,
        cfg: AnyMatchConfig,
    ) -> Self {
        let mut m = Self::pretrained(backbone, corpus);
        m.cfg = cfg;
        m
    }

    /// The backbone of this instance.
    pub fn backbone(&self) -> AnyMatchBackbone {
        self.backbone
    }
}

impl Matcher for AnyMatch {
    fn name(&self) -> String {
        format!("AnyMatch [{}]", self.backbone.family().label())
    }

    fn params_millions(&self) -> Option<f64> {
        Some(self.backbone.family().config().claimed_params_millions)
    }

    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        let mut data = sample_transfer_pairs(split, self.cfg.per_dataset, seed);
        if data.is_empty() {
            return Err(EmError::InvalidInput("empty transfer pool".into()));
        }
        if self.cfg.boosting {
            data = select_difficult(&data, self.cfg.difficult_keep, seed);
        }
        if self.cfg.attribute_augmentation {
            data.extend(attribute_pair_augmentation(split, self.cfg.attr_aug, seed));
        }
        if self.cfg.balancing {
            balance_labels(&mut data, 1.0, seed);
        }
        let model_cfg = self.backbone.family().config();
        let encoded: Vec<_> = data
            .iter()
            .map(|(p, y)| (encode_pair(&self.tokenizer, p, model_cfg.max_seq), *y))
            .collect();
        let mut model = match &self.base_model {
            Some(b) => b.clone(),
            None => EncoderClassifier::new(model_cfg, seed),
        };
        let lr = if self.backbone.full_pipeline() {
            3e-3
        } else {
            1.5e-3
        };
        train(
            &mut model,
            &encoded,
            &TrainConfig {
                epochs: self.cfg.epochs,
                lr,
                seed,
                ..Default::default()
            },
        );
        self.model = Some(model);
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        let model = self.model.as_ref().ok_or_else(|| EmError::NotFitted {
            matcher: self.name(),
        })?;
        let encoded: Vec<_> = batch
            .serialized
            .iter()
            .map(|p| encode_pair(&self.tokenizer, p, model.config.max_seq))
            .collect();
        Ok(predict_proba(model, &encoded, 64)
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SerializedPair;

    #[test]
    fn names_and_sizes_match_the_tables() {
        assert_eq!(
            AnyMatch::new(AnyMatchBackbone::Gpt2).name(),
            "AnyMatch [GPT-2]"
        );
        assert_eq!(
            AnyMatch::new(AnyMatchBackbone::Llama32).name(),
            "AnyMatch [LLaMA3.2]"
        );
        assert_eq!(
            AnyMatch::new(AnyMatchBackbone::T5).params_millions(),
            Some(220.0)
        );
        assert_eq!(
            AnyMatch::new(AnyMatchBackbone::Llama32).params_millions(),
            Some(1300.0)
        );
    }

    #[test]
    fn llama_variant_drops_boosting_and_attr_aug() {
        let m = AnyMatch::new(AnyMatchBackbone::Llama32);
        assert!(!m.cfg.boosting);
        assert!(!m.cfg.attribute_augmentation);
        assert!(m.cfg.balancing);
        let full = AnyMatch::new(AnyMatchBackbone::Gpt2);
        assert!(full.cfg.boosting && full.cfg.attribute_augmentation);
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let mut m = AnyMatch::new(AnyMatchBackbone::Gpt2);
        let batch = EvalBatch {
            serialized: vec![SerializedPair {
                left: "a".into(),
                right: "a".into(),
            }],
            raw: vec![],
            attr_types: vec![],
        };
        assert!(matches!(m.predict(&batch), Err(EmError::NotFitted { .. })));
    }
}
