//! Shared fine-tuning-data machinery: sampling serialized pairs from the
//! LODO transfer pool, label balancing, and attribute-pair augmentation.

use em_core::{Benchmark, LodoSplit, SerializedPair, Serializer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// A labelled serialized pair used for fine-tuning.
pub type TrainPair = (SerializedPair, bool);

/// Samples up to `per_dataset` labelled pairs from each transfer dataset,
/// serialized under the repetition seed's column permutation (each dataset
/// has its own arity, hence its own permutation of the same seed).
pub fn sample_transfer_pairs(
    split: &LodoSplit<'_>,
    per_dataset: usize,
    seed: u64,
) -> Vec<TrainPair> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_616e);
    let mut out = Vec::with_capacity(per_dataset * split.transfer.len());
    for bench in &split.transfer {
        let ser = Serializer::shuffled(bench.arity(), seed);
        let mut idx: Vec<usize> = (0..bench.pairs.len()).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(per_dataset) {
            let lp = &bench.pairs[i];
            out.push((ser.pair(&lp.pair), lp.label));
        }
    }
    out.shuffle(&mut rng);
    out
}

/// Samples pairs from an explicit list of benchmarks (used by Jellyfish's
/// instruction-tuning on its six seen datasets).
pub fn sample_benchmark_pairs(
    benches: &[&Benchmark],
    per_dataset: usize,
    seed: u64,
) -> Vec<TrainPair> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a65_6c6c);
    let mut out = Vec::with_capacity(per_dataset * benches.len());
    for bench in benches {
        let ser = Serializer::shuffled(bench.arity(), seed);
        let mut idx: Vec<usize> = (0..bench.pairs.len()).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(per_dataset) {
            let lp = &bench.pairs[i];
            out.push((ser.pair(&lp.pair), lp.label));
        }
    }
    out.shuffle(&mut rng);
    out
}

/// Balances the label distribution by oversampling the minority class until
/// it reaches `target_ratio` of the majority count (AnyMatch's label
/// balancing heuristic). A `target_ratio` of 1.0 yields a fully balanced
/// set.
pub fn balance_labels(pairs: &mut Vec<TrainPair>, target_ratio: f64, seed: u64) {
    assert!((0.0..=1.0).contains(&target_ratio), "ratio in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6261_6c61);
    let positives: Vec<TrainPair> = pairs.iter().filter(|(_, y)| *y).cloned().collect();
    let negatives: Vec<TrainPair> = pairs.iter().filter(|(_, y)| !*y).cloned().collect();
    if positives.is_empty() || negatives.is_empty() {
        return;
    }
    let (minority, majority_count) = if positives.len() < negatives.len() {
        (positives, negatives.len())
    } else {
        (negatives, positives.len())
    };
    let target = (majority_count as f64 * target_ratio) as usize;
    let mut extra = Vec::new();
    while minority.len() + extra.len() < target {
        extra.push(minority[rng.gen_range(0..minority.len())].clone());
    }
    pairs.extend(extra);
    pairs.shuffle(&mut rng);
}

/// Attribute-pair augmentation (AnyMatch): derives weakly labelled
/// attribute-level examples from record pairs — the aligned attribute
/// values of a matching pair form positive mini-pairs, values from
/// non-matching pairs form negatives. Record pairs are sampled from the
/// transfer pool *before* serialization so individual attributes are
/// available.
pub fn attribute_pair_augmentation(split: &LodoSplit<'_>, n: usize, seed: u64) -> Vec<TrainPair> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6174_7472);
    let mut out = Vec::with_capacity(n);
    let transfer = &split.transfer;
    if transfer.is_empty() {
        return out;
    }
    let mut guard = 0;
    while out.len() < n && guard < n * 20 {
        guard += 1;
        let bench = transfer[rng.gen_range(0..transfer.len())];
        if bench.pairs.is_empty() {
            continue;
        }
        let lp = &bench.pairs[rng.gen_range(0..bench.pairs.len())];
        let col = rng.gen_range(0..bench.arity());
        let left = lp.pair.left.values[col].render();
        let right = lp.pair.right.values[col].render();
        if left.is_empty() || right.is_empty() {
            continue;
        }
        out.push((
            SerializedPair {
                left: left.into(),
                right: right.into(),
            },
            lp.label,
        ));
    }
    out
}

/// Similarity feature vector of a serialized pair, used by the boosting
/// difficulty selector and by tests.
pub fn similarity_features(pair: &SerializedPair) -> Vec<f64> {
    let ll = pair.left.to_lowercase();
    let rl = pair.right.to_lowercase();
    let lt = em_text::words(&ll);
    let rt = em_text::words(&rl);
    vec![
        em_text::ratcliff_obershelp(&ll, &rl),
        em_text::jaccard(&lt, &rt),
        em_text::overlap_coefficient(&lt, &rt),
        em_text::jaro_winkler(&ll, &rl),
        em_text::monge_elkan_symmetric(&lt, &rt),
    ]
}

/// Boosting-based difficult-example selection (AnyMatch): fits AdaBoost on
/// similarity features and keeps the `keep` highest-weight (hardest)
/// examples plus an equal number of random easy ones for stability.
pub fn select_difficult(pairs: &[TrainPair], keep: usize, seed: u64) -> Vec<TrainPair> {
    if pairs.len() <= keep * 2 {
        return pairs.to_vec();
    }
    let x: Vec<Vec<f64>> = pairs.iter().map(|(p, _)| similarity_features(p)).collect();
    let y: Vec<bool> = pairs.iter().map(|(_, l)| *l).collect();
    let model = em_ml::AdaBoost::fit(&x, &y, 20);
    let hard = model.hardest_examples(keep);
    let mut selected: Vec<TrainPair> = hard.iter().map(|&i| pairs[i].clone()).collect();
    // Complement with random easy examples.
    let hard_set: std::collections::HashSet<usize> = hard.into_iter().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6469_6666);
    let mut rest: Vec<usize> = (0..pairs.len()).filter(|i| !hard_set.contains(i)).collect();
    rest.shuffle(&mut rng);
    selected.extend(rest.into_iter().take(keep).map(|i| pairs[i].clone()));
    selected.shuffle(&mut rng);
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{lodo_split, AttrType, AttrValue, DatasetId, LabeledPair, Record};

    fn bench(id: DatasetId, n: usize) -> Benchmark {
        let pairs = (0..n)
            .map(|i| {
                let l = Record::new(
                    i as u64,
                    vec![
                        AttrValue::Text(format!("entity {i}")),
                        AttrValue::Number(i as f64),
                    ],
                );
                let r = if i % 4 == 0 {
                    l.clone()
                } else {
                    Record::new(
                        i as u64 + 500,
                        vec![
                            AttrValue::Text(format!("other {}", i + 1)),
                            AttrValue::Number((i + 7) as f64),
                        ],
                    )
                };
                LabeledPair::new(l, r, i % 4 == 0)
            })
            .collect();
        Benchmark {
            id,
            attr_types: vec![AttrType::ShortText, AttrType::Numeric],
            pairs,
        }
    }

    fn suite() -> Vec<Benchmark> {
        DatasetId::ALL.iter().map(|&id| bench(id, 40)).collect()
    }

    #[test]
    fn transfer_sampling_excludes_target() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let pairs = sample_transfer_pairs(&split, 10, 0);
        assert_eq!(pairs.len(), 100); // 10 datasets × 10
    }

    #[test]
    fn transfer_sampling_caps_per_dataset() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let pairs = sample_transfer_pairs(&split, 1000, 0);
        assert_eq!(pairs.len(), 400); // capped at full pool
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Wdc).unwrap();
        assert_eq!(
            sample_transfer_pairs(&split, 5, 3),
            sample_transfer_pairs(&split, 5, 3)
        );
        assert_ne!(
            sample_transfer_pairs(&split, 5, 3),
            sample_transfer_pairs(&split, 5, 4)
        );
    }

    #[test]
    fn balancing_reaches_target_ratio() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let mut pairs = sample_transfer_pairs(&split, 40, 0);
        let pos_before = pairs.iter().filter(|(_, y)| *y).count();
        let neg = pairs.len() - pos_before;
        assert!(pos_before * 2 < neg, "test premise: imbalanced input");
        balance_labels(&mut pairs, 1.0, 0);
        let pos_after = pairs.iter().filter(|(_, y)| *y).count();
        let neg_after = pairs.iter().filter(|(_, y)| !*y).count();
        let gap = (pos_after as f64 - neg_after as f64).abs() / neg_after as f64;
        assert!(gap < 0.05, "{pos_after} vs {neg_after}");
    }

    #[test]
    fn balancing_handles_single_class_gracefully() {
        let mut pairs: Vec<TrainPair> = (0..10)
            .map(|i| {
                (
                    SerializedPair {
                        left: format!("{i}").into(),
                        right: format!("{i}").into(),
                    },
                    true,
                )
            })
            .collect();
        balance_labels(&mut pairs, 1.0, 0);
        assert_eq!(pairs.len(), 10);
    }

    #[test]
    fn attribute_augmentation_yields_attribute_values() {
        let s = suite();
        let split = lodo_split(&s, DatasetId::Abt).unwrap();
        let aug = attribute_pair_augmentation(&split, 30, 0);
        assert_eq!(aug.len(), 30);
        // Attribute-level values are shorter than full serialized records.
        assert!(aug.iter().all(|(p, _)| !p.left.contains(", ")));
    }

    #[test]
    fn similarity_features_are_bounded() {
        let p = SerializedPair {
            left: "sony camera dx100, electronics".into(),
            right: "sony camera dx200, electronics".into(),
        };
        let f = similarity_features(&p);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)), "{f:?}");
    }

    #[test]
    fn difficult_selection_prefers_borderline_examples() {
        // Easy examples: identical or disjoint. Hard: half-overlapping with
        // contradictory labels.
        let mut pairs: Vec<TrainPair> = Vec::new();
        for i in 0..50 {
            pairs.push((
                SerializedPair {
                    left: format!("alpha beta {i}").into(),
                    right: format!("alpha beta {i}").into(),
                },
                true,
            ));
            pairs.push((
                SerializedPair {
                    left: format!("gamma delta {i}").into(),
                    right: format!("zzz qqq {}", i + 100).into(),
                },
                false,
            ));
        }
        // Borderline: share half their tokens, labelled inconsistently.
        for i in 0..10 {
            pairs.push((
                SerializedPair {
                    left: format!("mix one two {i}").into(),
                    right: format!("mix one xx {i}").into(),
                },
                i % 2 == 0,
            ));
        }
        let selected = select_difficult(&pairs, 10, 0);
        assert_eq!(selected.len(), 20);
        let borderline = selected
            .iter()
            .filter(|(p, _)| p.left.starts_with("mix"))
            .count();
        assert!(
            borderline >= 5,
            "hard picks should surface borderline cases: {borderline}"
        );
    }

    #[test]
    fn small_sets_skip_selection() {
        let pairs: Vec<TrainPair> = (0..6)
            .map(|i| {
                (
                    SerializedPair {
                        left: format!("{i}").into(),
                        right: format!("{i}").into(),
                    },
                    true,
                )
            })
            .collect();
        assert_eq!(select_difficult(&pairs, 10, 0).len(), 6);
    }
}
