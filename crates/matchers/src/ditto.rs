//! Ditto (Li et al., VLDB 2021): fine-tunes an encoder language model
//! (BERT) with a separate prediction head. Two of its signature techniques
//! are reproduced (the third — domain-knowledge injection — is omitted
//! exactly as in the paper's cross-dataset configuration, because such
//! knowledge is unavailable without schema information):
//!
//! * **data augmentation**: column-drop and token-span-delete operators
//!   create additional hard training views;
//! * **summarization**: long serialized records are reduced to their
//!   highest-TF-IDF tokens (in original order) before encoding.

use crate::common::{sample_transfer_pairs, TrainPair};
use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result, SerializedPair};
use em_lm::{
    encode_pair, predict_proba, pretrain_backbone, train, EncoderClassifier, HashTokenizer,
    PretrainCorpus, SlmFamily, TrainConfig,
};
use em_text::TfIdf;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of the Ditto matcher.
#[derive(Debug, Clone, Copy)]
pub struct DittoConfig {
    /// Training pairs sampled per transfer dataset.
    pub per_dataset: usize,
    /// Augmented copies per original example.
    pub augment_factor: usize,
    /// Summarization budget: max tokens kept per record side.
    pub summarize_to: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Enables the augmentation operators (ablation knob).
    pub augmentation: bool,
    /// Enables TF-IDF summarization (ablation knob).
    pub summarization: bool,
}

impl Default for DittoConfig {
    fn default() -> Self {
        DittoConfig {
            per_dataset: 80,
            augment_factor: 1,
            summarize_to: 14,
            epochs: 3,
            augmentation: true,
            summarization: true,
        }
    }
}

/// The Ditto matcher.
pub struct Ditto {
    cfg: DittoConfig,
    tokenizer: HashTokenizer,
    model: Option<EncoderClassifier>,
    backbone: Option<EncoderClassifier>,
}

impl Ditto {
    /// New Ditto with default configuration.
    pub fn new() -> Self {
        Self::with_config(DittoConfig::default())
    }

    /// New Ditto with explicit configuration.
    pub fn with_config(cfg: DittoConfig) -> Self {
        Ditto {
            cfg,
            tokenizer: HashTokenizer::new(SlmFamily::Bert.config().vocab),
            model: None,
            backbone: None,
        }
    }

    /// Pretrained variant with an explicit configuration (ablations).
    pub fn pretrained_with_config(corpus: &PretrainCorpus, cfg: DittoConfig) -> Self {
        let mut m = Self::pretrained(corpus);
        m.cfg = cfg;
        m
    }

    /// Ditto starting from a pretrained BERT-family backbone (the study's
    /// configuration: the original fine-tunes the published BERT
    /// checkpoint).
    pub fn pretrained(corpus: &PretrainCorpus) -> Self {
        let mut m = Self::new();
        m.backbone = Some(pretrain_backbone(
            SlmFamily::Bert.config(),
            false,
            corpus,
            4_000,
            0,
        ));
        m
    }
}

impl Default for Ditto {
    fn default() -> Self {
        Self::new()
    }
}

/// TF-IDF summarization: keeps the `budget` highest-idf tokens of a value
/// string, preserving their original order.
pub fn summarize(text: &str, tfidf: &TfIdf, budget: usize) -> String {
    let tokens = em_text::words(text);
    if tokens.len() <= budget {
        return tokens.join(" ");
    }
    let mut scored: Vec<(usize, f64)> = tokens
        .iter()
        .enumerate()
        .map(|(i, t)| (i, tfidf.idf(t)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut keep: Vec<usize> = scored.into_iter().take(budget).map(|(i, _)| i).collect();
    keep.sort_unstable();
    keep.into_iter()
        .map(|i| tokens[i].clone())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Ditto's augmentation operators on a serialized record string.
fn augment_side(s: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        // Column drop: remove one comma-separated segment.
        let parts: Vec<&str> = s.split(", ").collect();
        if parts.len() > 1 {
            let drop = rng.gen_range(0..parts.len());
            return parts
                .iter()
                .enumerate()
                .filter_map(|(i, p)| (i != drop).then_some(*p))
                .collect::<Vec<_>>()
                .join(", ");
        }
        s.to_owned()
    } else {
        // Span delete: remove a short run of tokens.
        let tokens: Vec<&str> = s.split_whitespace().collect();
        if tokens.len() < 4 {
            return s.to_owned();
        }
        let len = rng.gen_range(1..=2usize);
        let start = rng.gen_range(0..tokens.len() - len);
        tokens
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (i < start || i >= start + len).then_some(*t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn prepare_training_data(
    pairs: &[TrainPair],
    cfg: &DittoConfig,
    seed: u64,
) -> (Vec<TrainPair>, TfIdf) {
    // Fit TF-IDF over all record strings for summarization.
    let docs: Vec<Vec<String>> = pairs
        .iter()
        .flat_map(|(p, _)| [em_text::words(&p.left), em_text::words(&p.right)])
        .collect();
    let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6469_7474);
    let mut out = Vec::with_capacity(pairs.len() * (1 + cfg.augment_factor));
    for (p, y) in pairs {
        let base = if cfg.summarization {
            SerializedPair {
                left: summarize(&p.left, &tfidf, cfg.summarize_to).into(),
                right: summarize(&p.right, &tfidf, cfg.summarize_to).into(),
            }
        } else {
            p.clone()
        };
        if cfg.augmentation {
            for _ in 0..cfg.augment_factor {
                out.push((
                    SerializedPair {
                        left: augment_side(&base.left, &mut rng).into(),
                        right: augment_side(&base.right, &mut rng).into(),
                    },
                    *y,
                ));
            }
        }
        out.push((base, *y));
    }
    (out, tfidf)
}

impl Matcher for Ditto {
    fn name(&self) -> String {
        "Ditto".into()
    }

    fn params_millions(&self) -> Option<f64> {
        Some(SlmFamily::Bert.config().claimed_params_millions)
    }

    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        let raw = sample_transfer_pairs(split, self.cfg.per_dataset, seed);
        if raw.is_empty() {
            return Err(EmError::InvalidInput("empty transfer pool".into()));
        }
        let (data, _tfidf) = prepare_training_data(&raw, &self.cfg, seed);
        let model_cfg = SlmFamily::Bert.config();
        let encoded: Vec<_> = data
            .iter()
            .map(|(p, y)| (encode_pair(&self.tokenizer, p, model_cfg.max_seq), *y))
            .collect();
        let mut model = match &self.backbone {
            Some(b) => b.clone(),
            None => EncoderClassifier::new(model_cfg, seed),
        };
        train(
            &mut model,
            &encoded,
            &TrainConfig {
                epochs: self.cfg.epochs,
                seed,
                ..Default::default()
            },
        );
        self.model = Some(model);
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(self
            .predict_scores(batch)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        let model = self.model.as_ref().ok_or_else(|| EmError::NotFitted {
            matcher: self.name(),
        })?;
        // Summarization at inference uses a batch-local TF-IDF (no target
        // supervision involved — document frequencies only).
        let docs: Vec<Vec<String>> = batch
            .serialized
            .iter()
            .flat_map(|p| [em_text::words(&p.left), em_text::words(&p.right)])
            .collect();
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        let encoded: Vec<_> = batch
            .serialized
            .iter()
            .map(|p| {
                let q = if self.cfg.summarization {
                    SerializedPair {
                        left: summarize(&p.left, &tfidf, self.cfg.summarize_to).into(),
                        right: summarize(&p.right, &tfidf, self.cfg.summarize_to).into(),
                    }
                } else {
                    p.clone()
                };
                encode_pair(&self.tokenizer, &q, model.config.max_seq)
            })
            .collect();
        Ok(predict_proba(model, &encoded, 64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_keeps_rare_tokens() {
        let docs = [
            em_text::words("common common common rare"),
            em_text::words("common filler words"),
            em_text::words("common more text"),
        ];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        let out = summarize("common rare common common extra", &tfidf, 2);
        assert!(out.contains("rare"), "{out}");
        assert_eq!(out.split_whitespace().count(), 2);
    }

    #[test]
    fn summarize_preserves_order() {
        let docs = [em_text::words("a b c d e")];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        let out = summarize("zeta alpha beta", &tfidf, 3);
        assert_eq!(out, "zeta alpha beta");
    }

    #[test]
    fn summarize_short_strings_unchanged() {
        let tfidf = TfIdf::fit(std::iter::empty::<&[String]>());
        assert_eq!(summarize("one two", &tfidf, 10), "one two");
    }

    #[test]
    fn augmentation_produces_views_with_same_label() {
        let pairs = vec![(
            SerializedPair {
                left: "alpha beta, gamma delta, epsilon".into(),
                right: "alpha beta, gamma".into(),
            },
            true,
        )];
        let cfg = DittoConfig {
            augment_factor: 3,
            ..Default::default()
        };
        let (data, _) = prepare_training_data(&pairs, &cfg, 0);
        assert_eq!(data.len(), 4); // 3 augmented + 1 base
        assert!(data.iter().all(|(_, y)| *y));
        // At least one augmented view differs from the base.
        assert!(data
            .iter()
            .any(|(p, _)| p.left != data.last().unwrap().0.left
                || p.right != data.last().unwrap().0.right));
    }

    #[test]
    fn augment_side_drops_content() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = "one two three, four five six, seven";
        let changed = (0..20)
            .filter(|_| augment_side(s, &mut rng).len() < s.len())
            .count();
        assert!(changed >= 15);
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let mut m = Ditto::new();
        let batch = EvalBatch {
            serialized: vec![SerializedPair {
                left: "a".into(),
                right: "a".into(),
            }],
            raw: vec![],
            attr_types: vec![],
        };
        assert!(matches!(m.predict(&batch), Err(EmError::NotFitted { .. })));
    }

    #[test]
    fn reports_berts_claimed_size() {
        assert_eq!(Ditto::new().params_millions(), Some(110.0));
    }
}
