//! Jellyfish (Zhang et al., 2023): a LLaMA2-13B model instruction-tuned for
//! data-preprocessing tasks including entity matching. Crucially for this
//! study, the authors' released checkpoint was trained on **six of the
//! eleven benchmark datasets** — so on those targets Jellyfish does *not*
//! satisfy the cross-dataset setting, and Table 3 reports its scores in
//! brackets. [`Matcher::saw_during_training`] reproduces exactly that
//! bookkeeping.

use crate::common::sample_benchmark_pairs;
use em_core::{Benchmark, DatasetId, EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_lm::{
    encode_pair, predict_proba, pretrain_backbone, train, EncoderClassifier, HashTokenizer,
    PretrainCorpus, SlmFamily, TrainConfig,
};

/// The six datasets present in Jellyfish's instruction-tuning mixture
/// (the bracketed columns of Table 3).
pub const JELLYFISH_SEEN: [DatasetId; 6] = [
    DatasetId::Dbac,
    DatasetId::Dbgo,
    DatasetId::Foza,
    DatasetId::Amgo,
    DatasetId::Beer,
    DatasetId::Itam,
];

/// Configuration of the Jellyfish matcher.
#[derive(Debug, Clone, Copy)]
pub struct JellyfishConfig {
    /// Instruction-tuning pairs sampled per seen dataset.
    pub per_dataset: usize,
    /// Tuning epochs.
    pub epochs: usize,
}

impl Default for JellyfishConfig {
    fn default() -> Self {
        JellyfishConfig {
            per_dataset: 150,
            epochs: 3,
        }
    }
}

/// The Jellyfish matcher.
pub struct Jellyfish {
    cfg: JellyfishConfig,
    tokenizer: HashTokenizer,
    model: Option<EncoderClassifier>,
    backbone: Option<EncoderClassifier>,
}

impl Jellyfish {
    /// New Jellyfish with default configuration.
    pub fn new() -> Self {
        Self::with_config(JellyfishConfig::default())
    }

    /// New Jellyfish with explicit configuration.
    pub fn with_config(cfg: JellyfishConfig) -> Self {
        Jellyfish {
            cfg,
            tokenizer: HashTokenizer::new(SlmFamily::Llama2_13b.config().vocab),
            model: None,
            backbone: None,
        }
    }

    /// Jellyfish starting from a pretrained LLaMA2-13B-family backbone.
    pub fn pretrained(corpus: &PretrainCorpus) -> Self {
        let mut m = Self::new();
        m.backbone = Some(pretrain_backbone(
            SlmFamily::Llama2_13b.config(),
            false,
            corpus,
            8_000,
            0,
        ));
        m
    }
}

impl Default for Jellyfish {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for Jellyfish {
    fn name(&self) -> String {
        "Jellyfish".into()
    }

    fn params_millions(&self) -> Option<f64> {
        Some(SlmFamily::Llama2_13b.config().claimed_params_millions)
    }

    /// Instruction-tunes on the six *seen* datasets — wherever they appear
    /// in the split (transfer pool or even the target itself, which is the
    /// point of the bracket caveat). The LODO transfer pool restriction is
    /// deliberately **not** honoured for those six datasets, mirroring the
    /// released checkpoint.
    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        let mut seen: Vec<&Benchmark> = Vec::with_capacity(JELLYFISH_SEEN.len());
        for id in JELLYFISH_SEEN {
            if split.target.id == id {
                seen.push(split.target);
            } else if let Some(b) = split.transfer.iter().find(|b| b.id == id) {
                seen.push(b);
            }
        }
        if seen.is_empty() {
            return Err(EmError::InvalidInput(
                "none of Jellyfish's training datasets present".into(),
            ));
        }
        let data = sample_benchmark_pairs(&seen, self.cfg.per_dataset, seed);
        let model_cfg = SlmFamily::Llama2_13b.config();
        let encoded: Vec<_> = data
            .iter()
            .map(|(p, y)| (encode_pair(&self.tokenizer, p, model_cfg.max_seq), *y))
            .collect();
        let mut model = match &self.backbone {
            Some(b) => b.clone(),
            None => EncoderClassifier::new(model_cfg, seed),
        };
        train(
            &mut model,
            &encoded,
            &TrainConfig {
                epochs: self.cfg.epochs,
                seed,
                ..Default::default()
            },
        );
        self.model = Some(model);
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        let model = self.model.as_ref().ok_or_else(|| EmError::NotFitted {
            matcher: self.name(),
        })?;
        let encoded: Vec<_> = batch
            .serialized
            .iter()
            .map(|p| encode_pair(&self.tokenizer, p, model.config.max_seq))
            .collect();
        Ok(predict_proba(model, &encoded, 64)
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    fn saw_during_training(&self, dataset: DatasetId) -> bool {
        JELLYFISH_SEEN.contains(&dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_six_datasets_are_bracketed() {
        let m = Jellyfish::new();
        let seen = DatasetId::ALL
            .iter()
            .filter(|&&d| m.saw_during_training(d))
            .count();
        assert_eq!(seen, 6);
        assert!(m.saw_during_training(DatasetId::Beer));
        assert!(!m.saw_during_training(DatasetId::Abt));
        assert!(!m.saw_during_training(DatasetId::Wdc));
        assert!(!m.saw_during_training(DatasetId::Zoye));
        assert!(!m.saw_during_training(DatasetId::Roim));
        assert!(!m.saw_during_training(DatasetId::Waam));
    }

    #[test]
    fn reports_llama2_claimed_size() {
        assert_eq!(Jellyfish::new().params_millions(), Some(13_000.0));
    }
}
