//! # em-matchers — every matcher of the study
//!
//! The eight matcher families of the paper's Table 2, all implementing
//! [`em_core::Matcher`]:
//!
//! | Matcher    | PLM   | Type            | Module        |
//! |------------|-------|-----------------|---------------|
//! | StringSim  | no    | parameter-free  | [`string_sim`] |
//! | ZeroER     | no    | parameter-free  | [`zeroer`]     |
//! | Ditto      | small | model-aware     | [`ditto`]      |
//! | Unicorn    | small | model-aware     | [`unicorn`]    |
//! | AnyMatch   | small | model-agnostic  | [`anymatch`]   |
//! | Jellyfish  | large | model-agnostic  | [`jellyfish`]  |
//! | MatchGPT   | large | model-agnostic  | [`matchgpt`]   |
//!
//! plus the shared data-centric machinery in [`common`] (transfer-pool
//! sampling, label balancing, boosting-based difficult-example selection,
//! attribute-pair augmentation).

pub mod anymatch;
pub mod common;
pub mod ditto;
pub mod jellyfish;
pub mod matchgpt;
pub mod string_sim;
pub mod unicorn;
pub mod zeroer;

pub use anymatch::{AnyMatch, AnyMatchBackbone, AnyMatchConfig};
pub use ditto::{summarize, Ditto, DittoConfig};
pub use jellyfish::{Jellyfish, JellyfishConfig, JELLYFISH_SEEN};
pub use matchgpt::{DemoStrategy, MatchGpt};
pub use string_sim::StringSim;
pub use unicorn::{Unicorn, UnicornConfig};
pub use zeroer::ZeroEr;
