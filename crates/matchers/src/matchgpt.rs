//! MatchGPT (Peeters & Bizer, 2023): entity matching by prompting large
//! language models. The study evaluates six backends (three open-weight,
//! three OpenAI) with the `general-complex-force` zero-shot prompt, plus a
//! demonstration experiment (Table 4) with three strategies:
//!
//! * `None` — zero-shot, no demonstrations (the Table 3 configuration);
//! * `HandPicked` — three manually selected examples (two non-matching,
//!   one matching) from the transfer datasets; "manual" selection is
//!   simulated deterministically by picking *prototypical* examples (the
//!   clearest match and the clearest non-matches by string similarity),
//!   which is what a human annotator picks when asked for examples;
//! * `Random` — three randomly selected examples from the transfer pool.
//!
//! The underlying frozen models come from `em_lm::zoo` and are shared via
//! `Arc` so one pretrained tier serves all demonstration variants.

use crate::common::sample_transfer_pairs;
use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_lm::{random_demonstrations, Demonstration, LlmTier, PretrainedLlm};
use std::sync::Arc;

/// Demonstration selection strategy (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoStrategy {
    /// Zero-shot prompting.
    None,
    /// Three prototypical examples (1 match, 2 non-matches).
    HandPicked,
    /// Three random examples (1 match, 2 non-matches).
    Random,
}

impl DemoStrategy {
    /// Label as printed in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            DemoStrategy::None => "none",
            DemoStrategy::HandPicked => "hand-picked",
            DemoStrategy::Random => "random-selected",
        }
    }
}

/// The MatchGPT matcher: a frozen LLM tier plus a prompt policy.
pub struct MatchGpt {
    llm: Arc<PretrainedLlm>,
    strategy: DemoStrategy,
    demos: Vec<Demonstration>,
}

impl MatchGpt {
    /// Wraps an already pretrained tier (preferred: lets several
    /// demonstration variants share one model).
    pub fn with_llm(llm: Arc<PretrainedLlm>, strategy: DemoStrategy) -> Self {
        MatchGpt {
            llm,
            strategy,
            demos: Vec::new(),
        }
    }

    /// The tier backing this matcher.
    pub fn tier(&self) -> LlmTier {
        self.llm.tier
    }

    /// Demonstrations selected by the last `fit` (empty for `None`).
    pub fn demonstrations(&self) -> &[Demonstration] {
        &self.demos
    }
}

/// Picks prototypical demonstrations: the positive with the highest and the
/// negatives with the lowest whole-string similarity — the "obvious"
/// examples a human would select.
fn hand_pick(pool: &[(em_core::SerializedPair, bool)]) -> Vec<Demonstration> {
    let score = |p: &em_core::SerializedPair| {
        em_text::ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase())
    };
    let best_pos = pool
        .iter()
        .filter(|(_, y)| *y)
        .max_by(|a, b| score(&a.0).partial_cmp(&score(&b.0)).unwrap());
    let mut negs: Vec<&(em_core::SerializedPair, bool)> =
        pool.iter().filter(|(_, y)| !*y).collect();
    negs.sort_by(|a, b| score(&a.0).partial_cmp(&score(&b.0)).unwrap());
    let mut out = Vec::with_capacity(3);
    for n in negs.into_iter().take(2) {
        out.push(Demonstration {
            pair: n.0.clone(),
            label: false,
        });
    }
    if let Some(p) = best_pos {
        out.push(Demonstration {
            pair: p.0.clone(),
            label: true,
        });
    }
    out
}

impl Matcher for MatchGpt {
    fn name(&self) -> String {
        match self.strategy {
            DemoStrategy::None => format!("MatchGPT [{}]", self.llm.tier.label()),
            s => format!("MatchGPT [{}] ({})", self.llm.tier.label(), s.label()),
        }
    }

    fn params_millions(&self) -> Option<f64> {
        Some(self.llm.tier.claimed_params_millions())
    }

    /// "Fitting" a prompted LLM only selects demonstrations from the
    /// transfer pool (never from the target dataset); the model itself is
    /// frozen.
    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        self.demos = match self.strategy {
            DemoStrategy::None => Vec::new(),
            DemoStrategy::HandPicked => {
                // A human picks once from a modest candidate sheet; the
                // per-seed serialization still varies the surface form.
                let pool = sample_transfer_pairs(split, 30, seed);
                hand_pick(&pool)
            }
            DemoStrategy::Random => {
                let pool = sample_transfer_pairs(split, 30, seed);
                random_demonstrations(&pool, 1, 2, seed)
            }
        };
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let scores = self.llm.score_batch(&batch.serialized, &self.demos);
        if scores.len() != batch.len() {
            return Err(EmError::Numeric("score batch size mismatch".into()));
        }
        Ok(scores.into_iter().map(|s| s >= 0.5).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SerializedPair;
    use em_lm::{pretrain_tier, PretrainCorpus};

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    fn tiny_llm() -> Arc<PretrainedLlm> {
        let corpus = PretrainCorpus {
            pairs: (0..120)
                .map(|i| {
                    if i % 2 == 0 {
                        (sp(&format!("item {i}"), &format!("item {i}")), true)
                    } else {
                        (sp(&format!("item {i}"), &format!("thing {}", i + 1)), false)
                    }
                })
                .collect(),
        };
        Arc::new(pretrain_tier(LlmTier::Gpt35Turbo, &corpus, 0))
    }

    #[test]
    fn names_follow_table_conventions() {
        let llm = tiny_llm();
        assert_eq!(
            MatchGpt::with_llm(llm.clone(), DemoStrategy::None).name(),
            "MatchGPT [GPT-3.5-Turbo]"
        );
        assert_eq!(
            MatchGpt::with_llm(llm, DemoStrategy::Random).name(),
            "MatchGPT [GPT-3.5-Turbo] (random-selected)"
        );
    }

    #[test]
    fn hand_pick_selects_prototypes() {
        let pool = vec![
            (sp("alpha beta", "alpha beta"), true), // clear match
            (sp("alpha beta", "alpha betx"), true), // near match
            (sp("aaa bbb", "zzz qqq"), false),      // clear non-match
            (sp("ccc ddd", "yyy xxx"), false),      // clear non-match
            (sp("mixed one", "mixed two"), false),  // borderline
        ];
        let demos = hand_pick(&pool);
        assert_eq!(demos.len(), 3);
        assert_eq!(demos.iter().filter(|d| d.label).count(), 1);
        let pos = demos.iter().find(|d| d.label).unwrap();
        assert_eq!(pos.pair.left, "alpha beta");
        assert_eq!(pos.pair.right, "alpha beta");
        // The borderline negative is not picked.
        assert!(demos.iter().all(|d| d.pair.left != "mixed one"));
    }

    #[test]
    fn hand_pick_handles_single_class_pools() {
        let pool = vec![(sp("a", "a"), true)];
        let demos = hand_pick(&pool);
        assert_eq!(demos.len(), 1);
        assert!(demos[0].label);
    }

    #[test]
    fn shared_llm_across_variants() {
        let llm = tiny_llm();
        let a = MatchGpt::with_llm(llm.clone(), DemoStrategy::None);
        let b = MatchGpt::with_llm(llm.clone(), DemoStrategy::Random);
        assert_eq!(a.tier(), b.tier());
        assert_eq!(Arc::strong_count(&llm), 3);
    }

    #[test]
    fn predict_scores_pairs() {
        let llm = tiny_llm();
        let mut m = MatchGpt::with_llm(llm, DemoStrategy::None);
        let batch = EvalBatch {
            serialized: vec![sp("item 3", "item 3"), sp("item 3", "thing 9")],
            raw: vec![],
            attr_types: vec![],
        };
        let preds = m.predict(&batch).unwrap();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn claimed_sizes_follow_the_paper() {
        let llm = tiny_llm();
        let m = MatchGpt::with_llm(llm, DemoStrategy::None);
        assert_eq!(m.params_millions(), Some(175_000.0));
    }
}
