//! MatchGPT (Peeters & Bizer, 2023): entity matching by prompting large
//! language models. The study evaluates six backends (three open-weight,
//! three OpenAI) with the `general-complex-force` zero-shot prompt, plus a
//! demonstration experiment (Table 4) with three strategies:
//!
//! * `None` — zero-shot, no demonstrations (the Table 3 configuration);
//! * `HandPicked` — three manually selected examples (two non-matching,
//!   one matching) from the transfer datasets; "manual" selection is
//!   simulated deterministically by picking *prototypical* examples (the
//!   clearest match and the clearest non-matches by string similarity),
//!   which is what a human annotator picks when asked for examples;
//! * `Random` — three randomly selected examples from the transfer pool.
//!
//! The underlying frozen models come from `em_lm::zoo` and are shared via
//! `Arc` so one pretrained tier serves all demonstration variants.

use crate::common::sample_transfer_pairs;
use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_faults::FaultPlan;
use em_lm::{random_demonstrations, Demonstration, LlmTier, PretrainedLlm, ResilientLlm};
use std::sync::Arc;

/// Demonstration selection strategy (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoStrategy {
    /// Zero-shot prompting.
    None,
    /// Three prototypical examples (1 match, 2 non-matches).
    HandPicked,
    /// Three random examples (1 match, 2 non-matches).
    Random,
}

impl DemoStrategy {
    /// Label as printed in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            DemoStrategy::None => "none",
            DemoStrategy::HandPicked => "hand-picked",
            DemoStrategy::Random => "random-selected",
        }
    }
}

/// The MatchGPT matcher: a frozen LLM tier plus a prompt policy.
///
/// The hosted backend is reached either directly (the historical path) or
/// through the [`ResilientLlm`] client of `em_lm::hosted`, which retries
/// transient API faults with backoff and trips a circuit breaker when the
/// backend looks dead. A matcher built with [`MatchGpt::with_resilience`]
/// then *degrades* instead of failing: the registered fallback matcher
/// (typically the string-similarity tier) answers, and the degradation is
/// reported through [`Matcher::was_degraded`] into the result row.
pub struct MatchGpt {
    llm: Arc<PretrainedLlm>,
    resilient: Option<ResilientLlm>,
    fallback: Option<Box<dyn Matcher>>,
    degraded: bool,
    strategy: DemoStrategy,
    demos: Vec<Demonstration>,
}

impl MatchGpt {
    /// Wraps an already pretrained tier (preferred: lets several
    /// demonstration variants share one model).
    pub fn with_llm(llm: Arc<PretrainedLlm>, strategy: DemoStrategy) -> Self {
        MatchGpt {
            llm,
            resilient: None,
            fallback: None,
            degraded: false,
            strategy,
            demos: Vec::new(),
        }
    }

    /// Wraps the tier in the resilient hosted client: calls go through
    /// retry/backoff and a per-backend circuit breaker, with `plan`
    /// optionally injecting deterministic faults (the `EM_FAULTS`
    /// environment contract — see [`FaultPlan::from_env`]). When the
    /// client gives up (breaker open, retries exhausted, deadline blown),
    /// `fallback` answers instead and the prediction round is flagged
    /// degraded.
    pub fn with_resilience(
        llm: Arc<PretrainedLlm>,
        strategy: DemoStrategy,
        plan: Option<FaultPlan>,
        fallback: Box<dyn Matcher>,
    ) -> Self {
        MatchGpt {
            resilient: Some(ResilientLlm::for_tier(llm.clone(), plan)),
            llm,
            fallback: Some(fallback),
            degraded: false,
            strategy,
            demos: Vec::new(),
        }
    }

    /// The tier backing this matcher.
    pub fn tier(&self) -> LlmTier {
        self.llm.tier
    }

    /// Demonstrations selected by the last `fit` (empty for `None`).
    pub fn demonstrations(&self) -> &[Demonstration] {
        &self.demos
    }

    /// The resilient client, if this matcher was built with one (exposed
    /// for chaos drills: force the breaker open to rehearse degradation).
    pub fn resilient(&self) -> Option<&ResilientLlm> {
        self.resilient.as_ref()
    }
}

/// Picks prototypical demonstrations: the positive with the highest and the
/// negatives with the lowest whole-string similarity — the "obvious"
/// examples a human would select.
fn hand_pick(pool: &[(em_core::SerializedPair, bool)]) -> Vec<Demonstration> {
    let score = |p: &em_core::SerializedPair| {
        em_text::ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase())
    };
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN similarity (e.g.
    // from a degenerate empty-string pair) must not abort the whole LODO
    // sweep over an unwrap on `None`.
    let best_pos = pool
        .iter()
        .filter(|(_, y)| *y)
        .max_by(|a, b| score(&a.0).total_cmp(&score(&b.0)));
    let mut negs: Vec<&(em_core::SerializedPair, bool)> =
        pool.iter().filter(|(_, y)| !*y).collect();
    negs.sort_by(|a, b| score(&a.0).total_cmp(&score(&b.0)));
    let mut out = Vec::with_capacity(3);
    for n in negs.into_iter().take(2) {
        out.push(Demonstration {
            pair: n.0.clone(),
            label: false,
        });
    }
    if let Some(p) = best_pos {
        out.push(Demonstration {
            pair: p.0.clone(),
            label: true,
        });
    }
    out
}

impl Matcher for MatchGpt {
    fn name(&self) -> String {
        match self.strategy {
            DemoStrategy::None => format!("MatchGPT [{}]", self.llm.tier.label()),
            s => format!("MatchGPT [{}] ({})", self.llm.tier.label(), s.label()),
        }
    }

    fn params_millions(&self) -> Option<f64> {
        Some(self.llm.tier.claimed_params_millions())
    }

    /// "Fitting" a prompted LLM only selects demonstrations from the
    /// transfer pool (never from the target dataset); the model itself is
    /// frozen.
    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        self.degraded = false;
        if let Some(fallback) = &mut self.fallback {
            fallback.fit(split, seed)?;
        }
        self.demos = match self.strategy {
            DemoStrategy::None => Vec::new(),
            DemoStrategy::HandPicked => {
                // A human picks once from a modest candidate sheet; the
                // per-seed serialization still varies the surface form.
                let pool = sample_transfer_pairs(split, 30, seed);
                hand_pick(&pool)
            }
            DemoStrategy::Random => {
                let pool = sample_transfer_pairs(split, 30, seed);
                random_demonstrations(&pool, 1, 2, seed)
            }
        };
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let scores = match &self.resilient {
            Some(client) => match client.score_batch(&batch.serialized, &self.demos) {
                Ok(scores) => scores,
                Err(e) => {
                    // The hosted backend is unreachable even after
                    // retries: degrade to the registered fallback matcher
                    // rather than failing the evaluation item.
                    let fallback = self
                        .fallback
                        .as_mut()
                        .expect("with_resilience always registers a fallback");
                    em_obs::metrics::counter("faults.degraded").add(1);
                    em_obs::event!(
                        warn,
                        "hosted.degraded",
                        backend = client.backend().as_str(),
                        fallback = fallback.name().as_str(),
                        cause = e.kind_label()
                    );
                    self.degraded = true;
                    return fallback.predict(batch);
                }
            },
            None => self.llm.try_score_batch(&batch.serialized, &self.demos)?,
        };
        if scores.len() != batch.len() {
            return Err(EmError::Numeric("score batch size mismatch".into()));
        }
        Ok(scores.into_iter().map(|s| s >= 0.5).collect())
    }

    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let scores = match &self.resilient {
            Some(client) => match client.score_batch(&batch.serialized, &self.demos) {
                Ok(scores) => scores,
                Err(e) => {
                    // Same degradation contract as `predict`: the fallback
                    // matcher answers (with its own score surface) and the
                    // round is flagged degraded.
                    let fallback = self
                        .fallback
                        .as_mut()
                        .expect("with_resilience always registers a fallback");
                    em_obs::metrics::counter("faults.degraded").add(1);
                    em_obs::event!(
                        warn,
                        "hosted.degraded",
                        backend = client.backend().as_str(),
                        fallback = fallback.name().as_str(),
                        cause = e.kind_label()
                    );
                    self.degraded = true;
                    return fallback.predict_scores(batch);
                }
            },
            None => self.llm.try_score_batch(&batch.serialized, &self.demos)?,
        };
        if scores.len() != batch.len() {
            return Err(EmError::Numeric("score batch size mismatch".into()));
        }
        Ok(scores)
    }

    fn was_degraded(&self) -> bool {
        self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SerializedPair;
    use em_lm::{pretrain_tier, PretrainCorpus};

    fn sp(l: &str, r: &str) -> SerializedPair {
        SerializedPair {
            left: l.into(),
            right: r.into(),
        }
    }

    fn tiny_llm() -> Arc<PretrainedLlm> {
        let corpus = PretrainCorpus {
            pairs: (0..120)
                .map(|i| {
                    if i % 2 == 0 {
                        (sp(&format!("item {i}"), &format!("item {i}")), true)
                    } else {
                        (sp(&format!("item {i}"), &format!("thing {}", i + 1)), false)
                    }
                })
                .collect(),
        };
        Arc::new(pretrain_tier(LlmTier::Gpt35Turbo, &corpus, 0))
    }

    #[test]
    fn names_follow_table_conventions() {
        let llm = tiny_llm();
        assert_eq!(
            MatchGpt::with_llm(llm.clone(), DemoStrategy::None).name(),
            "MatchGPT [GPT-3.5-Turbo]"
        );
        assert_eq!(
            MatchGpt::with_llm(llm, DemoStrategy::Random).name(),
            "MatchGPT [GPT-3.5-Turbo] (random-selected)"
        );
    }

    #[test]
    fn hand_pick_selects_prototypes() {
        let pool = vec![
            (sp("alpha beta", "alpha beta"), true), // clear match
            (sp("alpha beta", "alpha betx"), true), // near match
            (sp("aaa bbb", "zzz qqq"), false),      // clear non-match
            (sp("ccc ddd", "yyy xxx"), false),      // clear non-match
            (sp("mixed one", "mixed two"), false),  // borderline
        ];
        let demos = hand_pick(&pool);
        assert_eq!(demos.len(), 3);
        assert_eq!(demos.iter().filter(|d| d.label).count(), 1);
        let pos = demos.iter().find(|d| d.label).unwrap();
        assert_eq!(&*pos.pair.left, "alpha beta");
        assert_eq!(&*pos.pair.right, "alpha beta");
        // The borderline negative is not picked.
        assert!(demos.iter().all(|d| &*d.pair.left != "mixed one"));
    }

    #[test]
    fn hand_pick_handles_single_class_pools() {
        let pool = vec![(sp("a", "a"), true)];
        let demos = hand_pick(&pool);
        assert_eq!(demos.len(), 1);
        assert!(demos[0].label);
    }

    #[test]
    fn shared_llm_across_variants() {
        let llm = tiny_llm();
        let a = MatchGpt::with_llm(llm.clone(), DemoStrategy::None);
        let b = MatchGpt::with_llm(llm.clone(), DemoStrategy::Random);
        assert_eq!(a.tier(), b.tier());
        assert_eq!(Arc::strong_count(&llm), 3);
    }

    #[test]
    fn predict_scores_pairs() {
        let llm = tiny_llm();
        let mut m = MatchGpt::with_llm(llm, DemoStrategy::None);
        let batch = EvalBatch {
            serialized: vec![sp("item 3", "item 3"), sp("item 3", "thing 9")],
            raw: vec![],
            attr_types: vec![],
        };
        let preds = m.predict(&batch).unwrap();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn claimed_sizes_follow_the_paper() {
        let llm = tiny_llm();
        let m = MatchGpt::with_llm(llm, DemoStrategy::None);
        assert_eq!(m.params_millions(), Some(175_000.0));
    }

    fn small_batch() -> EvalBatch {
        EvalBatch {
            serialized: (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        sp(&format!("item {i}"), &format!("item {i}"))
                    } else {
                        sp(&format!("item {i}"), &format!("thing {}", i + 1))
                    }
                })
                .collect(),
            raw: vec![],
            attr_types: vec![],
        }
    }

    #[test]
    fn resilient_fault_free_path_matches_direct_path() {
        let llm = tiny_llm();
        let mut direct = MatchGpt::with_llm(llm.clone(), DemoStrategy::None);
        let mut resilient = MatchGpt::with_resilience(
            llm,
            DemoStrategy::None,
            None,
            Box::new(crate::string_sim::StringSim::new()),
        );
        let batch = small_batch();
        assert_eq!(
            resilient.predict(&batch).unwrap(),
            direct.predict(&batch).unwrap()
        );
        assert!(!resilient.was_degraded());
    }

    #[test]
    fn injected_faults_do_not_change_predictions() {
        let llm = tiny_llm();
        let plan = em_faults::FaultPlan::parse("7,0.1,all").unwrap();
        let mut clean = MatchGpt::with_llm(llm.clone(), DemoStrategy::None);
        let mut faulty = MatchGpt::with_resilience(
            llm,
            DemoStrategy::None,
            Some(plan),
            Box::new(crate::string_sim::StringSim::new()),
        );
        let batch = small_batch();
        assert_eq!(
            faulty.predict(&batch).unwrap(),
            clean.predict(&batch).unwrap(),
            "retried faults must be invisible in the predictions"
        );
        assert!(!faulty.was_degraded());
    }

    #[test]
    fn forced_open_breaker_degrades_to_fallback() {
        let llm = tiny_llm();
        let mut m = MatchGpt::with_resilience(
            llm,
            DemoStrategy::None,
            None,
            Box::new(crate::string_sim::StringSim::new()),
        );
        let client = m.resilient().unwrap();
        client.breaker().force_open(client.clock().now_ns());
        let batch = small_batch();
        let preds = m.predict(&batch).unwrap();
        assert!(m.was_degraded(), "open breaker must flag degradation");

        let mut fallback = crate::string_sim::StringSim::new();
        assert_eq!(
            preds,
            fallback.predict(&batch).unwrap(),
            "degraded predictions must come from the fallback matcher"
        );
    }

    #[test]
    fn fit_resets_the_degraded_flag() {
        let suite: Vec<em_core::Benchmark> = em_core::DatasetId::ALL
            .iter()
            .map(|&id| em_core::Benchmark {
                id,
                attr_types: vec![em_core::AttrType::ShortText],
                pairs: vec![em_core::LabeledPair::new(
                    em_core::Record::new(0, vec![em_core::AttrValue::from("x")]),
                    em_core::Record::new(1, vec![em_core::AttrValue::from("x")]),
                    true,
                )],
            })
            .collect();
        let split = em_core::lodo_split(&suite, em_core::DatasetId::Abt).unwrap();

        let llm = tiny_llm();
        let mut m = MatchGpt::with_resilience(
            llm,
            DemoStrategy::None,
            None,
            Box::new(crate::string_sim::StringSim::new()),
        );
        let client = m.resilient().unwrap();
        client.breaker().force_open(client.clock().now_ns());
        m.predict(&small_batch()).unwrap();
        assert!(m.was_degraded());
        m.fit(&split, 0).unwrap();
        assert!(!m.was_degraded(), "fit must clear the sticky degraded flag");
    }

    #[test]
    fn raw_scores_are_consistent_with_predictions() {
        let llm = tiny_llm();
        let mut m = MatchGpt::with_llm(llm, DemoStrategy::None);
        let batch = small_batch();
        let preds = m.predict(&batch).unwrap();
        let scores = m.predict_scores(&batch).unwrap();
        assert_eq!(preds.len(), scores.len());
        for (p, s) in preds.iter().zip(&scores) {
            assert_eq!(*p, *s >= 0.5, "pred {p} vs raw score {s}");
        }
    }

    #[test]
    fn degraded_scores_come_from_the_fallback_surface() {
        let llm = tiny_llm();
        let mut m = MatchGpt::with_resilience(
            llm,
            DemoStrategy::None,
            None,
            Box::new(crate::string_sim::StringSim::new()),
        );
        let client = m.resilient().unwrap();
        client.breaker().force_open(client.clock().now_ns());
        let batch = small_batch();
        let scores = m.predict_scores(&batch).unwrap();
        assert!(m.was_degraded());
        let mut fallback = crate::string_sim::StringSim::new();
        assert_eq!(
            scores,
            fallback.predict_scores(&batch).unwrap(),
            "degraded scores must be the fallback's scores, bitwise"
        );
    }

    #[test]
    fn hand_pick_survives_nan_similarity_scores() {
        // Empty strings drive ratcliff_obershelp into 0/0 territory on
        // some implementations; whatever the score, sorting must not
        // panic (the old `partial_cmp(..).unwrap()` did on NaN).
        let pool = vec![
            (sp("", ""), true),
            (sp("alpha", "alpha"), true),
            (sp("", "zzz"), false),
            (sp("aaa", "zzz"), false),
        ];
        let demos = hand_pick(&pool);
        assert_eq!(demos.iter().filter(|d| d.label).count(), 1);
        assert_eq!(demos.iter().filter(|d| !d.label).count(), 2);
    }
}
