//! The StringSim baseline: serializes both tuples (comma-joined values)
//! and predicts a match when the Ratcliff/Obershelp similarity — the
//! algorithm behind Python's `difflib` — exceeds 0.5 (Section 4.1,
//! "Parameter-free baselines").

use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_text::ratcliff_obershelp;

/// Parameter-free string-similarity matcher.
#[derive(Debug, Clone)]
pub struct StringSim {
    /// Decision threshold (0.5 in the paper).
    pub threshold: f64,
}

impl StringSim {
    /// StringSim with the paper's 0.5 threshold.
    pub fn new() -> Self {
        StringSim { threshold: 0.5 }
    }

    /// StringSim with a custom threshold (for ablations).
    pub fn with_threshold(threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(EmError::Config(format!(
                "threshold {threshold} outside [0,1]"
            )));
        }
        Ok(StringSim { threshold })
    }
}

impl Default for StringSim {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for StringSim {
    fn name(&self) -> String {
        "StringSim".into()
    }

    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(()) // parameter-free
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(batch
            .serialized
            .iter()
            .map(|p| {
                ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase()) > self.threshold
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Record, RecordPair, SerializedPair};

    fn batch(pairs: Vec<(&str, &str)>) -> EvalBatch {
        EvalBatch {
            serialized: pairs
                .iter()
                .map(|(l, r)| SerializedPair {
                    left: (*l).into(),
                    right: (*r).into(),
                })
                .collect(),
            raw: pairs
                .iter()
                .map(|_| RecordPair::new(Record::new(0, vec![]), Record::new(1, vec![])))
                .collect(),
            attr_types: vec![],
        }
    }

    #[test]
    fn identical_strings_match() {
        let mut m = StringSim::new();
        let preds = m
            .predict(&batch(vec![("sony tv x100", "sony tv x100")]))
            .unwrap();
        assert_eq!(preds, vec![true]);
    }

    #[test]
    fn disjoint_strings_do_not_match() {
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("aaaa", "zzzz")])).unwrap();
        assert_eq!(preds, vec![false]);
    }

    #[test]
    fn comparison_is_case_insensitive() {
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("SONY TV", "sony tv")])).unwrap();
        assert_eq!(preds, vec![true]);
    }

    #[test]
    fn threshold_is_strict_greater() {
        // "ab" vs "bc": ratio 0.5 exactly → not a match at threshold 0.5.
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("ab", "bc")])).unwrap();
        assert_eq!(preds, vec![false]);
    }

    #[test]
    fn custom_threshold_validated() {
        assert!(StringSim::with_threshold(0.7).is_ok());
        assert!(StringSim::with_threshold(1.5).is_err());
        assert!(StringSim::with_threshold(-0.1).is_err());
    }

    #[test]
    fn is_parameter_free() {
        let m = StringSim::new();
        assert_eq!(m.params_millions(), None);
    }
}
