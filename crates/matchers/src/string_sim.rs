//! The StringSim baseline: serializes both tuples (comma-joined values)
//! and predicts a match when the Ratcliff/Obershelp similarity — the
//! algorithm behind Python's `difflib` — exceeds 0.5 (Section 4.1,
//! "Parameter-free baselines").

use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_text::ratcliff_obershelp;

/// Parameter-free string-similarity matcher.
#[derive(Debug, Clone)]
pub struct StringSim {
    /// Decision threshold (0.5 in the paper).
    pub threshold: f64,
}

impl StringSim {
    /// StringSim with the paper's 0.5 threshold.
    pub fn new() -> Self {
        StringSim { threshold: 0.5 }
    }

    /// StringSim with a custom threshold (for ablations).
    pub fn with_threshold(threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(EmError::Config(format!(
                "threshold {threshold} outside [0,1]"
            )));
        }
        Ok(StringSim { threshold })
    }
}

impl Default for StringSim {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for StringSim {
    fn name(&self) -> String {
        "StringSim".into()
    }

    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(()) // parameter-free
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(batch
            .serialized
            .iter()
            .map(|p| {
                ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase()) > self.threshold
            })
            .collect())
    }

    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        // Piecewise-linear calibration that pins the decision boundary to
        // 0.5: similarities at or below the threshold spread over
        // [0, 0.5), above it over (0.5, 1]. `predict` is strict-greater,
        // so the boundary sim == t belongs to the non-match side — it
        // lands one ulp below 0.5, keeping `score >= 0.5 ⇔ sim > t`
        // exact for every threshold while |2s − 1| grows with the margin.
        let below_half = f32::from_bits(0.5f32.to_bits() - 1);
        let t = self.threshold;
        Ok(batch
            .serialized
            .iter()
            .map(|p| {
                let sim = ratcliff_obershelp(&p.left.to_lowercase(), &p.right.to_lowercase());
                if sim <= t {
                    if t <= 0.0 {
                        // threshold 0: only sim == 0 lands here, and
                        // predict says non-match (strict greater).
                        0.0
                    } else {
                        ((0.5 * sim / t) as f32).min(below_half)
                    }
                } else if t >= 1.0 {
                    // unreachable (sim ≤ 1 ≤ t), kept for totality
                    1.0
                } else {
                    ((0.5 + 0.5 * (sim - t) / (1.0 - t)) as f32).max(0.5)
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Record, RecordPair, SerializedPair};

    fn batch(pairs: Vec<(&str, &str)>) -> EvalBatch {
        EvalBatch {
            serialized: pairs
                .iter()
                .map(|(l, r)| SerializedPair {
                    left: (*l).into(),
                    right: (*r).into(),
                })
                .collect(),
            raw: pairs
                .iter()
                .map(|_| RecordPair::new(Record::new(0, vec![]), Record::new(1, vec![])))
                .collect(),
            attr_types: vec![],
        }
    }

    #[test]
    fn identical_strings_match() {
        let mut m = StringSim::new();
        let preds = m
            .predict(&batch(vec![("sony tv x100", "sony tv x100")]))
            .unwrap();
        assert_eq!(preds, vec![true]);
    }

    #[test]
    fn disjoint_strings_do_not_match() {
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("aaaa", "zzzz")])).unwrap();
        assert_eq!(preds, vec![false]);
    }

    #[test]
    fn comparison_is_case_insensitive() {
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("SONY TV", "sony tv")])).unwrap();
        assert_eq!(preds, vec![true]);
    }

    #[test]
    fn threshold_is_strict_greater() {
        // "ab" vs "bc": ratio 0.5 exactly → not a match at threshold 0.5.
        let mut m = StringSim::new();
        let preds = m.predict(&batch(vec![("ab", "bc")])).unwrap();
        assert_eq!(preds, vec![false]);
    }

    #[test]
    fn custom_threshold_validated() {
        assert!(StringSim::with_threshold(0.7).is_ok());
        assert!(StringSim::with_threshold(1.5).is_err());
        assert!(StringSim::with_threshold(-0.1).is_err());
    }

    #[test]
    fn is_parameter_free() {
        let m = StringSim::new();
        assert_eq!(m.params_millions(), None);
    }

    #[test]
    fn scores_agree_with_predict_everywhere_including_the_boundary() {
        // "ab" vs "bc" has similarity exactly 0.5 = the threshold;
        // predict is strict-greater so the score must fall below 0.5.
        for threshold in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let mut m = StringSim::with_threshold(threshold).unwrap();
            let b = batch(vec![
                ("ab", "bc"),
                ("sony tv x100", "sony tv x100"),
                ("aaaa", "zzzz"),
                ("sony tv", "sony tv bravia"),
            ]);
            let preds = m.predict(&b).unwrap();
            let scores = m.predict_scores(&b).unwrap();
            for (p, s) in preds.iter().zip(&scores) {
                assert!((0.0..=1.0).contains(s));
                assert_eq!(*p, *s >= 0.5, "t={threshold}: pred {p} vs score {s}");
            }
        }
    }

    #[test]
    fn score_margin_grows_with_similarity() {
        let mut m = StringSim::new();
        let b = batch(vec![
            ("sony tv x100", "sony tv x100"), // identical
            ("sony tv x100", "sony tv x200"), // near
            ("sony tv x100", "zzzz qqqq"),    // far
        ]);
        let s = m.predict_scores(&b).unwrap();
        assert_eq!(s[0], 1.0);
        assert!(s[1] > 0.5 && s[1] < 1.0);
        assert!(s[2] < 0.5);
        // confidence |2s-1| orders identical > near
        assert!((2.0 * s[0] - 1.0).abs() > (2.0 * s[1] - 1.0).abs());
    }
}
