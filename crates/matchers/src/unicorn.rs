//! Unicorn (Tu et al., SIGMOD 2023): a unified multi-task matching model —
//! an encoder language model (DeBERTa) feeding a **mixture-of-experts**
//! layer and a matching module, trained jointly on multiple matching tasks
//! so the experts specialize and generalise to unseen datasets.
//!
//! Reproduced here as the MoE-headed encoder of `em-lm`, trained on two
//! tasks exactly as the multi-task setup prescribes: record-pair entity
//! matching (the main task) and attribute-level value matching (the
//! auxiliary matching task family of the original, represented by its
//! closest EM-relevant member).

use crate::common::{attribute_pair_augmentation, sample_transfer_pairs};
use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_lm::{
    encode_pair, predict_proba, pretrain_backbone, train, EncoderClassifier, HashTokenizer,
    PretrainCorpus, SlmFamily, TrainConfig,
};

/// Configuration of the Unicorn matcher.
#[derive(Debug, Clone, Copy)]
pub struct UnicornConfig {
    /// Training pairs sampled per transfer dataset (main task).
    pub per_dataset: usize,
    /// Auxiliary attribute-pair task examples.
    pub aux_examples: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
}

impl Default for UnicornConfig {
    fn default() -> Self {
        UnicornConfig {
            per_dataset: 80,
            aux_examples: 300,
            epochs: 3,
        }
    }
}

/// The Unicorn matcher.
pub struct Unicorn {
    cfg: UnicornConfig,
    tokenizer: HashTokenizer,
    model: Option<EncoderClassifier>,
    backbone: Option<EncoderClassifier>,
}

impl Unicorn {
    /// New Unicorn with default configuration.
    pub fn new() -> Self {
        Self::with_config(UnicornConfig::default())
    }

    /// New Unicorn with explicit configuration.
    pub fn with_config(cfg: UnicornConfig) -> Self {
        Unicorn {
            cfg,
            tokenizer: HashTokenizer::new(SlmFamily::Deberta.config().vocab),
            model: None,
            backbone: None,
        }
    }

    /// Unicorn starting from a pretrained DeBERTa-family MoE backbone.
    pub fn pretrained(corpus: &PretrainCorpus) -> Self {
        let mut m = Self::new();
        m.backbone = Some(pretrain_backbone(
            SlmFamily::Deberta.config(),
            true,
            corpus,
            4_500,
            0,
        ));
        m
    }
}

impl Default for Unicorn {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for Unicorn {
    fn name(&self) -> String {
        "Unicorn".into()
    }

    fn params_millions(&self) -> Option<f64> {
        Some(SlmFamily::Deberta.config().claimed_params_millions)
    }

    fn fit(&mut self, split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        let mut data = sample_transfer_pairs(split, self.cfg.per_dataset, seed);
        if data.is_empty() {
            return Err(EmError::InvalidInput("empty transfer pool".into()));
        }
        // Multi-task mixture: the auxiliary attribute-matching task.
        data.extend(attribute_pair_augmentation(
            split,
            self.cfg.aux_examples,
            seed,
        ));
        let model_cfg = SlmFamily::Deberta.config();
        let encoded: Vec<_> = data
            .iter()
            .map(|(p, y)| (encode_pair(&self.tokenizer, p, model_cfg.max_seq), *y))
            .collect();
        let mut model = match &self.backbone {
            Some(b) => b.clone(),
            None => EncoderClassifier::new_moe(model_cfg, seed),
        };
        train(
            &mut model,
            &encoded,
            &TrainConfig {
                epochs: self.cfg.epochs,
                seed,
                ..Default::default()
            },
        );
        self.model = Some(model);
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        let model = self.model.as_ref().ok_or_else(|| EmError::NotFitted {
            matcher: self.name(),
        })?;
        let encoded: Vec<_> = batch
            .serialized
            .iter()
            .map(|p| encode_pair(&self.tokenizer, p, model.config.max_seq))
            .collect();
        Ok(predict_proba(model, &encoded, 64)
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SerializedPair;

    #[test]
    fn reports_debertas_claimed_size() {
        assert_eq!(Unicorn::new().params_millions(), Some(143.0));
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let mut m = Unicorn::new();
        let batch = EvalBatch {
            serialized: vec![SerializedPair {
                left: "a".into(),
                right: "a".into(),
            }],
            raw: vec![],
            attr_types: vec![],
        };
        assert!(matches!(m.predict(&batch), Err(EmError::NotFitted { .. })));
    }
}
