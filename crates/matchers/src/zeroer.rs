//! ZeroER (Wu et al., SIGMOD 2020): parameter-free, "zero-labelled-example"
//! entity resolution. Matching and non-matching pairs produce differently
//! distributed *similarity vectors*; a two-component Gaussian mixture fitted
//! on the unlabelled candidate set separates them.
//!
//! Faithful to the paper's treatment (Section 4.1):
//! * it operates in a **batch** setting — predictions require the whole
//!   test partition at once (`fit` is a no-op; the GMM is fitted inside
//!   `predict`);
//! * it **partially violates cross-dataset Restriction 2** because it needs
//!   column types to select similarity functions — it therefore reads the
//!   `raw` records and `attr_types` of the [`EvalBatch`], the documented
//!   escape hatch.

use em_core::{AttrType, AttrValue, EmError, EvalBatch, LodoSplit, Matcher, Result};
use em_ml::{Gmm, GmmConfig, StandardScaler};
use em_text::{jaccard, jaro_winkler, levenshtein_similarity, relative_similarity, words, TfIdf};

/// Extracts the digit stream of a value (phone numbers, codes).
fn digits(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_digit()).collect()
}

/// Otsu's threshold over a 1-D sample: the split maximizing between-class
/// variance. Used to seed the GMM's match/non-match components from the
/// mean-similarity histogram.
fn otsu_threshold(values: &[f64]) -> f64 {
    const BINS: usize = 64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max <= min {
        return min;
    }
    let width = (max - min) / BINS as f64;
    let mut hist = [0usize; BINS];
    for &v in values {
        let b = (((v - min) / width) as usize).min(BINS - 1);
        hist[b] += 1;
    }
    let total = values.len() as f64;
    let total_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 + 0.5) * c as f64)
        .sum::<f64>()
        / total;
    let mut best = (0.0f64, 0usize);
    let mut w0 = 0.0;
    let mut sum0 = 0.0;
    #[allow(clippy::needless_range_loop)] // t is the threshold bin, also returned
    for t in 0..BINS - 1 {
        w0 += hist[t] as f64;
        sum0 += (t as f64 + 0.5) * hist[t] as f64;
        if w0 == 0.0 || w0 == total {
            continue;
        }
        let m0 = sum0 / w0;
        let w1 = total - w0;
        let m1 = (total_mean * total - sum0) / w1;
        let between = w0 * w1 * (m0 - m1) * (m0 - m1);
        if between > best.0 {
            best = (between, t);
        }
    }
    min + (best.1 as f64 + 1.0) * width
}

/// The ZeroER matcher.
#[derive(Debug, Clone)]
pub struct ZeroEr {
    seed: u64,
}

impl ZeroEr {
    /// New ZeroER instance.
    pub fn new() -> Self {
        ZeroEr { seed: 0 }
    }
}

impl Default for ZeroEr {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the per-column similarity vector of one raw pair using
/// type-appropriate similarity functions.
fn similarity_vector(
    left: &[AttrValue],
    right: &[AttrValue],
    types: &[AttrType],
    tfidf: &TfIdf,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(types.len() * 2);
    for ((lv, rv), ty) in left.iter().zip(right).zip(types) {
        match (lv, rv) {
            (AttrValue::Missing, _) | (_, AttrValue::Missing) => {
                // Missing comparisons carry no signal; neutral value.
                v.push(0.5);
                v.push(0.5);
            }
            _ => {
                let ls = lv.render().to_lowercase();
                let rs = rv.render().to_lowercase();
                match ty {
                    AttrType::Numeric => {
                        let ln = lv.as_number().or_else(|| em_text::extract_number(&ls));
                        let rn = rv.as_number().or_else(|| em_text::extract_number(&rs));
                        match (ln, rn) {
                            (Some(a), Some(b)) => {
                                v.push(relative_similarity(a, b));
                                v.push(f64::from(a == b));
                            }
                            _ => {
                                v.push(0.5);
                                v.push(0.5);
                            }
                        }
                    }
                    AttrType::ShortText => {
                        let (ld, rd) = (digits(&ls), digits(&rs));
                        if ld.len() >= 6 && rd.len() >= 6 {
                            // Digit-dense values (phone numbers, codes):
                            // compare format-normalized digit streams.
                            v.push(levenshtein_similarity(&ld, &rd));
                            v.push(f64::from(ld == rd));
                        } else {
                            v.push(jaro_winkler(&ls, &rs));
                            v.push(jaccard(&words(&ls), &words(&rs)));
                        }
                    }
                    AttrType::LongText => {
                        v.push(tfidf.cosine(&words(&ls), &words(&rs)));
                        v.push(jaccard(&words(&ls), &words(&rs)));
                    }
                }
            }
        }
    }
    v
}

impl Matcher for ZeroEr {
    fn name(&self) -> String {
        "ZeroER".into()
    }

    fn fit(&mut self, _split: &LodoSplit<'_>, seed: u64) -> Result<()> {
        // Parameter-free: only record the repetition seed for GMM init.
        self.seed = seed;
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        if batch.raw.len() != batch.serialized.len() {
            return Err(EmError::InvalidInput(
                "ZeroER needs raw records for every pair".into(),
            ));
        }
        // Corpus-level TF-IDF over all long-text values in the batch.
        let mut docs: Vec<Vec<String>> = Vec::new();
        for pair in &batch.raw {
            for (val, ty) in pair.left.values.iter().zip(&batch.attr_types) {
                if *ty == AttrType::LongText {
                    docs.push(words(&val.render().to_lowercase()));
                }
            }
            for (val, ty) in pair.right.values.iter().zip(&batch.attr_types) {
                if *ty == AttrType::LongText {
                    docs.push(words(&val.render().to_lowercase()));
                }
            }
        }
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));

        let features: Vec<Vec<f64>> = batch
            .raw
            .iter()
            .map(|p| similarity_vector(&p.left.values, &p.right.values, &batch.attr_types, &tfidf))
            .collect();
        if features.len() < 2 {
            // Cannot fit a 2-component mixture; fall back to mean
            // similarity thresholding.
            return Ok(features
                .iter()
                .map(|f| f.iter().sum::<f64>() / f.len().max(1) as f64 > 0.5)
                .collect());
        }
        let scaler = StandardScaler::fit(&features);
        let scaled = scaler.transform(&features);
        // Seed the mixture from an Otsu split of the raw mean similarity:
        // component 1 = putative matches (above threshold).
        let mean_sims: Vec<f64> = features
            .iter()
            .map(|f| f.iter().sum::<f64>() / f.len().max(1) as f64)
            .collect();
        let threshold = otsu_threshold(&mean_sims);
        let assignment: Vec<usize> = mean_sims
            .iter()
            .map(|&m| usize::from(m > threshold))
            .collect();
        let n_match = assignment.iter().sum::<usize>();
        let gmm = if n_match == 0 || n_match == assignment.len() {
            // Degenerate split: fall back to random-point init.
            Gmm::fit(
                &scaled,
                GmmConfig {
                    components: 2,
                    seed: self.seed,
                    ..Default::default()
                },
            )
        } else {
            Gmm::fit_from_assignment(
                &scaled,
                &assignment,
                GmmConfig {
                    components: 2,
                    seed: self.seed,
                    ..Default::default()
                },
            )
        };
        // The match component is the one whose mean similarity (in raw
        // feature space, recovered via the scaler) is higher.
        let mean_raw = |c: &em_ml::Component| -> f64 {
            c.mean
                .iter()
                .zip(&scaler.mean)
                .zip(&scaler.std)
                .map(|((m, mu), sd)| m * sd + mu)
                .sum::<f64>()
                / c.mean.len() as f64
        };
        let match_component = if mean_raw(&gmm.components[0]) >= mean_raw(&gmm.components[1]) {
            0
        } else {
            1
        };
        Ok(scaled
            .iter()
            .map(|f| gmm.responsibilities(f)[match_component] > 0.5)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Record, RecordPair, SerializedPair, Serializer};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn make_batch(n: usize, seed: u64) -> (EvalBatch, Vec<bool>) {
        // Half matches (identical-ish), half non-matches.
        let mut rng = StdRng::seed_from_u64(seed);
        let types = vec![AttrType::ShortText, AttrType::Numeric];
        let ser = Serializer::identity(2);
        let mut raw = Vec::new();
        let mut serialized = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let name: String = (0..3)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            let price = rng.gen_range(10.0..500.0f64);
            let l = Record::new(
                i as u64,
                vec![
                    AttrValue::Text(format!("item {name}")),
                    AttrValue::Number(price),
                ],
            );
            let is_match = i % 2 == 0;
            let r = if is_match {
                Record::new(
                    i as u64 + 10_000,
                    vec![
                        AttrValue::Text(format!("item {name}")),
                        AttrValue::Number((price * 100.0).round() / 100.0),
                    ],
                )
            } else {
                let other: String = (0..3)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect();
                Record::new(
                    i as u64 + 10_000,
                    vec![
                        AttrValue::Text(format!("gadget {other}")),
                        AttrValue::Number(rng.gen_range(10.0..500.0)),
                    ],
                )
            };
            let pair = RecordPair::new(l, r);
            serialized.push(ser.pair(&pair));
            raw.push(pair);
            labels.push(is_match);
        }
        (
            EvalBatch {
                serialized,
                raw,
                attr_types: types,
            },
            labels,
        )
    }

    #[test]
    fn separates_clean_bimodal_data() {
        let (batch, labels) = make_batch(200, 0);
        let mut m = ZeroEr::new();
        let preds = m.predict(&batch).unwrap();
        let f1 = em_core::f1_percent(&preds, &labels).unwrap();
        assert!(f1 > 90.0, "ZeroER should ace clean bimodal data: F1 {f1}");
    }

    #[test]
    fn similarity_vector_shapes() {
        let tfidf = TfIdf::fit(std::iter::empty::<&[String]>());
        let types = [AttrType::ShortText, AttrType::Numeric, AttrType::LongText];
        let l = vec![
            AttrValue::Text("abc".into()),
            AttrValue::Number(5.0),
            AttrValue::Text("long text here".into()),
        ];
        let r = l.clone();
        let v = similarity_vector(&l, &r, &types, &tfidf);
        assert_eq!(v.len(), 6);
        // Identical values give maximal similarities.
        assert!(v.iter().all(|&s| s >= 0.99), "{v:?}");
    }

    #[test]
    fn missing_values_are_neutral() {
        let tfidf = TfIdf::fit(std::iter::empty::<&[String]>());
        let types = [AttrType::ShortText];
        let l = vec![AttrValue::Missing];
        let r = vec![AttrValue::Text("x".into())];
        let v = similarity_vector(&l, &r, &types, &tfidf);
        assert_eq!(v, vec![0.5, 0.5]);
    }

    #[test]
    fn numbers_embedded_in_text_are_extracted() {
        let tfidf = TfIdf::fit(std::iter::empty::<&[String]>());
        let types = [AttrType::Numeric];
        let l = vec![AttrValue::Text("$ 19.99".into())];
        let r = vec![AttrValue::Number(19.99)];
        let v = similarity_vector(&l, &r, &types, &tfidf);
        assert!(v[0] > 0.99);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let mut m = ZeroEr::new();
        let batch = EvalBatch {
            serialized: vec![],
            raw: vec![],
            attr_types: vec![],
        };
        assert!(m.predict(&batch).unwrap().is_empty());
    }

    #[test]
    fn mismatched_raw_length_is_an_error() {
        let mut m = ZeroEr::new();
        let batch = EvalBatch {
            serialized: vec![SerializedPair {
                left: "a".into(),
                right: "b".into(),
            }],
            raw: vec![],
            attr_types: vec![],
        };
        assert!(m.predict(&batch).is_err());
    }

    #[test]
    fn deterministic_across_calls_same_seed() {
        let (batch, _) = make_batch(100, 1);
        let mut m = ZeroEr::new();
        let a = m.predict(&batch).unwrap();
        let b = m.predict(&batch).unwrap();
        assert_eq!(a, b);
    }
}
