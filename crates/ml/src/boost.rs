//! Decision stumps and AdaBoost.
//!
//! AnyMatch's data-centric pipeline uses boosting "to identify difficult
//! examples": after fitting a boosted ensemble on similarity features, the
//! examples that accumulate the largest boosting weights are the hard ones
//! worth keeping in the fine-tuning data.

/// An axis-aligned decision stump: predicts `polarity` if
/// `x[feature] >= threshold`, else the opposite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stump {
    /// Feature index the stump splits on.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// Prediction for the `>= threshold` side.
    pub polarity: bool,
}

impl Stump {
    /// Predicts the label for one example.
    #[inline]
    pub fn predict(&self, x: &[f64]) -> bool {
        if x[self.feature] >= self.threshold {
            self.polarity
        } else {
            !self.polarity
        }
    }

    /// Fits the stump minimizing weighted 0/1 error over all features and
    /// candidate thresholds (midpoints of consecutive distinct values).
    pub fn fit(x: &[Vec<f64>], y: &[bool], weights: &[f64]) -> Stump {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), weights.len());
        assert!(!x.is_empty());
        let dim = x[0].len();
        let total_w: f64 = weights.iter().sum();
        let mut best = Stump {
            feature: 0,
            threshold: f64::NEG_INFINITY,
            polarity: true,
        };
        let mut best_err = f64::INFINITY;
        let mut order: Vec<usize> = (0..x.len()).collect();
        #[allow(clippy::needless_range_loop)] // f indexes a column, not a slice
        for f in 0..dim {
            order.sort_by(|&i, &j| x[i][f].partial_cmp(&x[j][f]).unwrap());
            // Weighted positives with value >= threshold, swept from -inf.
            // Start: threshold = -inf, everything on the >= side.
            let w_pos_total: f64 = y
                .iter()
                .zip(weights)
                .filter_map(|(&yy, &w)| yy.then_some(w))
                .sum();
            let mut w_pos_ge = w_pos_total;
            let mut w_ge = total_w;
            // threshold -inf: predicting polarity=true for everything.
            let err_all_true = total_w - w_pos_total;
            if err_all_true < best_err {
                best_err = err_all_true;
                best = Stump {
                    feature: f,
                    threshold: f64::NEG_INFINITY,
                    polarity: true,
                };
            }
            if w_pos_total < best_err {
                best_err = w_pos_total;
                best = Stump {
                    feature: f,
                    threshold: f64::NEG_INFINITY,
                    polarity: false,
                };
            }
            let mut k = 0;
            while k < order.len() {
                // Move all examples with this value to the < side.
                let v = x[order[k]][f];
                while k < order.len() && x[order[k]][f] == v {
                    let i = order[k];
                    w_ge -= weights[i];
                    if y[i] {
                        w_pos_ge -= weights[i];
                    }
                    k += 1;
                }
                let threshold = if k < order.len() {
                    (v + x[order[k]][f]) / 2.0
                } else {
                    v + 1.0
                };
                // polarity = true: err = (neg on >= side) + (pos on < side)
                let err_true = (w_ge - w_pos_ge) + (w_pos_total - w_pos_ge);
                if err_true < best_err {
                    best_err = err_true;
                    best = Stump {
                        feature: f,
                        threshold,
                        polarity: true,
                    };
                }
                let err_false = total_w - err_true;
                if err_false < best_err {
                    best_err = err_false;
                    best = Stump {
                        feature: f,
                        threshold,
                        polarity: false,
                    };
                }
            }
        }
        best
    }
}

/// A fitted AdaBoost ensemble of stumps.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    stumps: Vec<(f64, Stump)>,
    /// Final per-example boosting weights — large weight = hard example.
    pub example_weights: Vec<f64>,
}

impl AdaBoost {
    /// Fits `rounds` of AdaBoost (SAMME / discrete AdaBoost).
    pub fn fit(x: &[Vec<f64>], y: &[bool], rounds: usize) -> AdaBoost {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let n = x.len();
        let mut w = vec![1.0 / n as f64; n];
        let mut stumps = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let stump = Stump::fit(x, y, &w);
            let err: f64 = x
                .iter()
                .zip(y)
                .zip(&w)
                .filter_map(|((xi, &yi), &wi)| (stump.predict(xi) != yi).then_some(wi))
                .sum();
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 - 1e-9 {
                // Weak learner no better than chance: stop boosting.
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            for ((xi, &yi), wi) in x.iter().zip(y).zip(w.iter_mut()) {
                let agree = stump.predict(xi) == yi;
                *wi *= if agree { (-alpha).exp() } else { alpha.exp() };
            }
            let z: f64 = w.iter().sum();
            w.iter_mut().for_each(|wi| *wi /= z);
            stumps.push((alpha, stump));
        }
        AdaBoost {
            stumps,
            example_weights: w,
        }
    }

    /// Number of boosting rounds actually performed.
    pub fn rounds(&self) -> usize {
        self.stumps.len()
    }

    /// Signed ensemble margin (positive = match).
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|(alpha, s)| if s.predict(x) { *alpha } else { -*alpha })
            .sum()
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Indices of the `k` hardest examples (largest final boosting weight),
    /// hardest first — AnyMatch's difficult-example selector.
    pub fn hardest_examples(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.example_weights.len()).collect();
        idx.sort_by(|&i, &j| {
            self.example_weights[j]
                .partial_cmp(&self.example_weights[i])
                .unwrap()
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn stump_learns_a_threshold() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let w = vec![1.0; 20];
        let s = Stump::fit(&x, &y, &w);
        assert_eq!(s.feature, 0);
        assert!(s.polarity);
        assert!(s.threshold > 9.0 && s.threshold <= 10.0, "{s:?}");
        assert!((0..20).all(|i| s.predict(&[i as f64]) == (i >= 10)));
    }

    #[test]
    fn stump_picks_the_informative_feature() {
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![rng.gen_range(0.0..1.0), if i < 50 { 0.0 } else { 1.0 }])
            .collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let w = vec![1.0; 100];
        let s = Stump::fit(&x, &y, &w);
        assert_eq!(s.feature, 1);
    }

    #[test]
    fn stump_handles_inverted_labels() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i < 10).collect(); // small = positive
        let w = vec![1.0; 20];
        let s = Stump::fit(&x, &y, &w);
        assert!(!s.polarity);
        assert!((0..20).all(|i| s.predict(&[i as f64]) == (i < 10)));
    }

    #[test]
    fn adaboost_fits_an_interval_problem() {
        // "positive iff 0.3 < x < 0.7" is not separable by one stump but
        // is easily captured by a boosted ensemble of stumps.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] > 0.3 && r[0] < 0.7).collect();
        let model = AdaBoost::fit(&x, &y, 50);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn hardest_examples_are_the_mislabeled_ones() {
        // Linearly separable data with two deliberately flipped labels:
        // boosting piles weight on the contradictions.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let mut y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        y[5] = true; // flipped
        y[35] = false; // flipped
        let model = AdaBoost::fit(&x, &y, 30);
        let hard = model.hardest_examples(2);
        assert!(hard.contains(&5), "{hard:?}");
        assert!(hard.contains(&35), "{hard:?}");
    }

    #[test]
    fn example_weights_stay_normalized() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let y: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let model = AdaBoost::fit(&x, &y, 10);
        let sum: f64 = model.example_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boosting_stops_on_useless_features() {
        // Labels independent of the (constant) feature: first stump has
        // error ~0.5 and boosting should terminate quickly.
        let x: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0]).collect();
        let y: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let model = AdaBoost::fit(&x, &y, 25);
        assert!(model.rounds() <= 1);
    }
}
