//! Diagonal-covariance Gaussian mixture model fitted with
//! expectation-maximization — the generative core of ZeroER, which models
//! similarity vectors of matches and non-matches as two differently
//! distributed components.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One mixture component with diagonal covariance.
#[derive(Debug, Clone)]
pub struct Component {
    /// Mixing weight, in `(0, 1)`.
    pub weight: f64,
    /// Per-dimension mean.
    pub mean: Vec<f64>,
    /// Per-dimension variance (floored for stability).
    pub var: Vec<f64>,
}

impl Component {
    /// Log density of `x` under this component (without the mixing weight).
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.mean.len());
        let mut acc = 0.0;
        for ((&xi, &mu), &var) in x.iter().zip(&self.mean).zip(&self.var) {
            let d = xi - mu;
            acc += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        acc
    }
}

/// Configuration for EM fitting.
#[derive(Debug, Clone, Copy)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence tolerance on mean log-likelihood improvement.
    pub tol: f64,
    /// Variance floor (ZeroER's regularization against collapsed
    /// components on near-duplicate similarity vectors).
    pub var_floor: f64,
    /// RNG seed for the initialization.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            components: 2,
            max_iter: 200,
            tol: 1e-7,
            var_floor: 1e-4,
            seed: 0,
        }
    }
}

/// A fitted Gaussian mixture.
#[derive(Debug, Clone)]
pub struct Gmm {
    /// Mixture components.
    pub components: Vec<Component>,
    /// Mean log-likelihood at convergence.
    pub log_likelihood: f64,
    /// Number of EM iterations performed.
    pub iterations: usize,
}

/// `log(sum(exp(xs)))` computed stably.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

impl Gmm {
    /// Fits a mixture starting from a *hard initial assignment* of points
    /// to components (e.g. a threshold split), then refines with EM. This
    /// is how ZeroER seeds its match/non-match components so the mixture
    /// converges to the intended separation rather than an arbitrary one.
    ///
    /// # Panics
    /// Panics if `assignment` disagrees with `x` in length, names a
    /// component out of range, or leaves a component empty.
    pub fn fit_from_assignment(x: &[Vec<f64>], assignment: &[usize], cfg: GmmConfig) -> Self {
        assert_eq!(
            x.len(),
            assignment.len(),
            "assignment must cover all points"
        );
        assert!(!x.is_empty(), "empty dataset");
        let dim = x[0].len();
        let k = cfg.components;
        assert!(assignment.iter().all(|&a| a < k), "component out of range");
        let mut counts = vec![0usize; k];
        for &a in assignment {
            counts[a] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty initial component");
        // Moment-match each component from its assigned points.
        let mut components: Vec<Component> = (0..k)
            .map(|j| Component {
                weight: counts[j] as f64 / x.len() as f64,
                mean: vec![0.0; dim],
                var: vec![0.0; dim],
            })
            .collect();
        for (row, &a) in x.iter().zip(assignment) {
            for (m, &v) in components[a].mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for (j, c) in components.iter_mut().enumerate() {
            c.mean.iter_mut().for_each(|m| *m /= counts[j] as f64);
        }
        for (row, &a) in x.iter().zip(assignment) {
            let mean = components[a].mean.clone();
            for ((v, &xv), m) in components[a].var.iter_mut().zip(row).zip(&mean) {
                let d = xv - m;
                *v += d * d;
            }
        }
        for (j, c) in components.iter_mut().enumerate() {
            c.var
                .iter_mut()
                .for_each(|v| *v = (*v / counts[j] as f64).max(cfg.var_floor));
        }
        Self::run_em(x, components, cfg)
    }

    fn run_em(x: &[Vec<f64>], mut components: Vec<Component>, cfg: GmmConfig) -> Self {
        let n = x.len();
        let k = components.len();
        let mut resp = vec![0.0f64; n * k];
        let mut logp = vec![0.0f64; k];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut ll = prev_ll;
        for it in 0..cfg.max_iter {
            iterations = it + 1;
            // E step.
            let mut total_ll = 0.0;
            for (i, row) in x.iter().enumerate() {
                for (p, c) in logp.iter_mut().zip(&components) {
                    *p = c.weight.ln() + c.log_pdf(row);
                }
                let lse = log_sum_exp(&logp);
                total_ll += lse;
                for (j, &p) in logp.iter().enumerate() {
                    resp[i * k + j] = (p - lse).exp();
                }
            }
            ll = total_ll / n as f64;
            // M step.
            for (j, c) in components.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                let nj = nj.max(1e-12);
                c.weight = nj / n as f64;
                c.mean.iter_mut().for_each(|m| *m = 0.0);
                for (i, row) in x.iter().enumerate() {
                    let r = resp[i * k + j];
                    for (m, &v) in c.mean.iter_mut().zip(row) {
                        *m += r * v;
                    }
                }
                c.mean.iter_mut().for_each(|m| *m /= nj);
                c.var.iter_mut().for_each(|v| *v = 0.0);
                for (i, row) in x.iter().enumerate() {
                    let r = resp[i * k + j];
                    for ((v, &xv), &m) in c.var.iter_mut().zip(row).zip(&c.mean) {
                        let d = xv - m;
                        *v += r * d * d;
                    }
                }
                c.var
                    .iter_mut()
                    .for_each(|v| *v = (*v / nj).max(cfg.var_floor));
            }
            if (ll - prev_ll).abs() < cfg.tol {
                break;
            }
            prev_ll = ll;
        }
        Gmm {
            components,
            log_likelihood: ll,
            iterations,
        }
    }

    /// Fits a mixture on rows `x` via EM.
    ///
    /// Initialization: component means are distinct random data points
    /// (deterministic under `cfg.seed`), variances start at the global
    /// per-dimension variance, weights uniform.
    ///
    /// # Panics
    /// Panics when there are fewer points than components or rows are ragged.
    pub fn fit(x: &[Vec<f64>], cfg: GmmConfig) -> Self {
        assert!(cfg.components >= 1, "need at least one component");
        assert!(
            x.len() >= cfg.components,
            "need at least as many points as components"
        );
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged rows");
        let n = x.len();

        // Global per-dimension variance for initialization.
        let mut gmean = vec![0.0; dim];
        for row in x {
            for (g, &v) in gmean.iter_mut().zip(row) {
                *g += v;
            }
        }
        gmean.iter_mut().for_each(|g| *g /= n as f64);
        let mut gvar = vec![0.0; dim];
        for row in x {
            for ((g, &v), &m) in gvar.iter_mut().zip(row).zip(&gmean) {
                *g += (v - m) * (v - m);
            }
        }
        gvar.iter_mut()
            .for_each(|g| *g = (*g / n as f64).max(cfg.var_floor));

        // Pick distinct points as initial means.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x05ee_d6a3u64);
        idx.shuffle(&mut rng);
        let components: Vec<Component> = idx[..cfg.components]
            .iter()
            .map(|&i| Component {
                weight: 1.0 / cfg.components as f64,
                mean: x[i].clone(),
                var: gvar.clone(),
            })
            .collect();
        Self::run_em(x, components, cfg)
    }

    /// Posterior responsibilities of each component for `x` (sums to 1).
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let logp: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.ln() + c.log_pdf(x))
            .collect();
        let lse = log_sum_exp(&logp);
        logp.iter().map(|p| (p - lse).exp()).collect()
    }

    /// Index of the most responsible component.
    pub fn assign(&self, x: &[f64]) -> usize {
        let r = self.responsibilities(x);
        r.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn two_blobs(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for _ in 0..n {
            x.push(vec![
                rng.gen_range(-0.5..0.5) - 3.0,
                rng.gen_range(-0.5..0.5) - 3.0,
            ]);
            labels.push(0);
        }
        for _ in 0..n {
            x.push(vec![
                rng.gen_range(-0.5..0.5) + 3.0,
                rng.gen_range(-0.5..0.5) + 3.0,
            ]);
            labels.push(1);
        }
        (x, labels)
    }

    #[test]
    fn log_sum_exp_is_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - 2f64.ln()).abs() < 1e-12);
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let (x, labels) = two_blobs(1, 100);
        let gmm = Gmm::fit(&x, GmmConfig::default());
        // Cluster assignment should match blob identity up to permutation.
        let assigns: Vec<usize> = x.iter().map(|p| gmm.assign(p)).collect();
        let agree = assigns.iter().zip(&labels).filter(|(a, l)| a == l).count();
        let acc = agree.max(x.len() - agree) as f64 / x.len() as f64;
        assert!(acc > 0.99, "clustering accuracy {acc}");
    }

    #[test]
    fn means_land_on_blob_centres() {
        let (x, _) = two_blobs(2, 200);
        let gmm = Gmm::fit(&x, GmmConfig::default());
        let mut centres: Vec<f64> = gmm.components.iter().map(|c| c.mean[0]).collect();
        centres.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centres[0] + 3.0).abs() < 0.3, "{centres:?}");
        assert!((centres[1] - 3.0).abs() < 0.3, "{centres:?}");
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let (x, _) = two_blobs(3, 50);
        let gmm = Gmm::fit(
            &x,
            GmmConfig {
                components: 3,
                ..Default::default()
            },
        );
        for p in &x {
            let r = gmm.responsibilities(p);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let (x, _) = two_blobs(4, 60);
        let gmm = Gmm::fit(&x, GmmConfig::default());
        let total: f64 = gmm.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // All points identical: variance would be 0 without the floor.
        let x = vec![vec![1.0, 2.0]; 10];
        let gmm = Gmm::fit(&x, GmmConfig::default());
        for c in &gmm.components {
            assert!(c.var.iter().all(|&v| v >= 1e-4));
        }
        assert!(gmm.log_likelihood.is_finite());
    }

    #[test]
    fn likelihood_is_monotone_in_practice() {
        // Fit twice with different iteration caps: more EM iterations must
        // not decrease the likelihood.
        let (x, _) = two_blobs(5, 80);
        let short = Gmm::fit(
            &x,
            GmmConfig {
                max_iter: 2,
                ..Default::default()
            },
        );
        let long = Gmm::fit(
            &x,
            GmmConfig {
                max_iter: 100,
                ..Default::default()
            },
        );
        assert!(long.log_likelihood >= short.log_likelihood - 1e-9);
    }

    #[test]
    fn single_component_recovers_sample_moments() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let gmm = Gmm::fit(
            &x,
            GmmConfig {
                components: 1,
                ..Default::default()
            },
        );
        assert!((gmm.components[0].mean[0] - 49.5).abs() < 1e-6);
        assert!((gmm.components[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least as many points")]
    fn too_few_points_panics() {
        let _ = Gmm::fit(
            &[vec![1.0]],
            GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
    }
}
