//! # em-ml — classical machine-learning substrate
//!
//! Self-contained implementations of the non-neural estimators used in the
//! study:
//!
//! * dense linear algebra ([`linalg`]);
//! * L2-regularized logistic regression ([`logreg`]), the workhorse for
//!   similarity-feature classification;
//! * diagonal-covariance Gaussian mixtures fitted by EM ([`gmm`]) — the
//!   generative core of ZeroER;
//! * decision stumps and AdaBoost ([`boost`]) — AnyMatch's difficult-example
//!   selection;
//! * feature standardization ([`scaler`]).

pub mod boost;
pub mod gmm;
pub mod linalg;
pub mod logreg;
pub mod scaler;

pub use boost::{AdaBoost, Stump};
pub use gmm::{log_sum_exp, Component, Gmm, GmmConfig};
pub use linalg::{axpy, dot, norm2, Matrix};
pub use logreg::{sigmoid, LogRegConfig, LogisticRegression};
pub use scaler::StandardScaler;
