//! Minimal dense linear algebra for the classical-ML substrate: row-major
//! `f64` matrices with the handful of operations the estimators need.

use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat data buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Matrix-matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves `A x = b` for square `A` via Gaussian elimination with partial
    /// pivoting. Returns `None` if the matrix is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[i * n + col]
                        .abs()
                        .partial_cmp(&a[j * n + col].abs())
                        .unwrap()
                })
                .unwrap();
            if a[pivot * n + col].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for k in (col + 1)..n {
                acc -= a[col * n + k] * x[k];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out += alpha * x` (axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &xi) in out.iter_mut().zip(x) {
        *o += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn indexing_round_trips() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn matvec_hand_computed() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_norm() {
        let mut out = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, vec![7.0, 9.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_recovers_rhs(
            vals in proptest::collection::vec(-5.0f64..5.0, 9),
            b in proptest::collection::vec(-5.0f64..5.0, 3)
        ) {
            let mut m = Matrix::from_vec(3, 3, vals);
            // Diagonal dominance guarantees non-singularity.
            for i in 0..3 {
                m[(i, i)] += 20.0;
            }
            let x = m.solve(&b).unwrap();
            let back = m.matvec(&x);
            for (u, v) in back.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-8);
            }
        }

        #[test]
        fn matmul_associativity(
            a in proptest::collection::vec(-2.0f64..2.0, 4),
            b in proptest::collection::vec(-2.0f64..2.0, 4),
            c in proptest::collection::vec(-2.0f64..2.0, 4)
        ) {
            let ma = Matrix::from_vec(2, 2, a);
            let mb = Matrix::from_vec(2, 2, b);
            let mc = Matrix::from_vec(2, 2, c);
            let left = ma.matmul(&mb).matmul(&mc);
            let right = ma.matmul(&mb.matmul(&mc));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
