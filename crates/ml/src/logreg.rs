//! L2-regularized logistic regression trained by full-batch gradient
//! descent with a backtracking-free adaptive step. Small, deterministic,
//! and entirely sufficient for the similarity-feature classifiers in the
//! study (e.g. the per-attribute heads of the hybrid baselines).

use crate::linalg::dot;

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Configuration for logistic-regression training.
#[derive(Debug, Clone, Copy)]
pub struct LogRegConfig {
    /// L2 penalty strength.
    pub l2: f64,
    /// Learning rate.
    pub lr: f64,
    /// Maximum gradient-descent iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient norm.
    pub tol: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            l2: 1e-3,
            lr: 0.5,
            max_iter: 500,
            tol: 1e-6,
        }
    }
}

/// A fitted logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LogisticRegression {
    /// Fits the model on rows `x` with boolean labels `y`.
    ///
    /// # Panics
    /// Panics if `x` and `y` disagree in length, `x` is empty, or rows are
    /// ragged.
    pub fn fit(x: &[Vec<f64>], y: &[bool], cfg: LogRegConfig) -> Self {
        Self::fit_weighted(x, y, None, cfg)
    }

    /// Fits with optional per-example weights (used by boosting).
    pub fn fit_weighted(
        x: &[Vec<f64>],
        y: &[bool],
        sample_weights: Option<&[f64]>,
        cfg: LogRegConfig,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "features and labels must align");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), x.len(), "sample weights must align");
        }
        let n = x.len() as f64;
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut grad_w = vec![0.0; dim];
        for _ in 0..cfg.max_iter {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for (i, (row, &label)) in x.iter().zip(y).enumerate() {
                let p = sigmoid(dot(&weights, row) + bias);
                let sw = sample_weights.map_or(1.0, |w| w[i]);
                let err = sw * (p - f64::from(label));
                for (g, &xi) in grad_w.iter_mut().zip(row) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            let mut gnorm2 = grad_b * grad_b;
            for (g, w) in grad_w.iter_mut().zip(&weights) {
                *g = *g / n + cfg.l2 * w;
                gnorm2 += *g * *g;
            }
            grad_b /= n;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= cfg.lr * g;
            }
            bias -= cfg.lr * grad_b;
            if gnorm2.sqrt() < cfg.tol {
                break;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, row) + self.bias)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Batch probabilities.
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_reference_points() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // No overflow at extremes.
        assert!(sigmoid(1e4).is_finite());
        assert!(sigmoid(-1e4).is_finite());
    }

    #[test]
    fn learns_a_linearly_separable_problem() {
        // y = x0 > x1.
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] > r[1]).collect();
        let model = LogisticRegression::fit(&x, &y, LogRegConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &label)| model.predict(r) == label)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "acc {correct}/200");
        // Weight signs reflect the separating direction.
        assert!(model.weights[0] > 0.0);
        assert!(model.weights[1] < 0.0);
    }

    #[test]
    fn probabilities_are_calibrated_monotone() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 1.0]).collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] > 0.0).collect();
        let m = LogisticRegression::fit(&x, &y, LogRegConfig::default());
        assert!(m.predict_proba(&[-1.0]) < m.predict_proba(&[0.0]));
        assert!(m.predict_proba(&[0.0]) < m.predict_proba(&[1.0]));
    }

    #[test]
    fn l2_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![if i < 25 { -1.0 } else { 1.0 }])
            .collect();
        let y: Vec<bool> = (0..50).map(|i| i >= 25).collect();
        let loose = LogisticRegression::fit(
            &x,
            &y,
            LogRegConfig {
                l2: 1e-6,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            LogRegConfig {
                l2: 1.0,
                ..Default::default()
            },
        );
        assert!(tight.weights[0].abs() < loose.weights[0].abs());
    }

    #[test]
    fn sample_weights_shift_the_boundary() {
        // Same point cloud, but positives weighted 10x ⇒ boundary moves to
        // favour predicting positive.
        let x: Vec<Vec<f64>> = vec![vec![-0.1], vec![0.1], vec![-0.1], vec![0.1]];
        let y = vec![false, true, false, true];
        let unweighted = LogisticRegression::fit(&x, &y, LogRegConfig::default());
        let w = vec![1.0, 10.0, 1.0, 10.0];
        let weighted = LogisticRegression::fit_weighted(&x, &y, Some(&w), LogRegConfig::default());
        assert!(weighted.predict_proba(&[0.0]) > unweighted.predict_proba(&[0.0]));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_inputs_panic() {
        let _ = LogisticRegression::fit(&[vec![1.0]], &[true, false], LogRegConfig::default());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let _ = LogisticRegression::fit(&[], &[], LogRegConfig::default());
    }
}
