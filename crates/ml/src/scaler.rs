//! Feature standardization (z-score scaling), used before logistic
//! regression / GMM fitting on similarity vectors.

/// A fitted per-feature standard scaler.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (floored at a small epsilon so
    /// constant features map to 0 instead of NaN).
    pub std: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on the rows of `x`.
    ///
    /// # Panics
    /// Panics on an empty dataset or ragged rows.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit scaler on empty data");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged rows");
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = vec![0.0; dim];
        for row in x {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-12)).collect();
        StandardScaler { mean, std }
    }

    /// Transforms one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Transforms a copy of the dataset.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_data_has_zero_mean_unit_var() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 2.0 * i as f64 + 5.0])
            .collect();
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        for dim in 0..2 {
            let m: f64 = t.iter().map(|r| r[dim]).sum::<f64>() / t.len() as f64;
            let v: f64 = t.iter().map(|r| (r[dim] - m).powi(2)).sum::<f64>() / t.len() as f64;
            assert!(m.abs() < 1e-9);
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let x = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        assert!(t.iter().all(|r| r[0].abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = StandardScaler::fit(&[]);
    }
}
