//! Multi-head self-attention with padding masks and a full backward pass.
//!
//! Batches are laid out as `(batch · seq, dim)` row-major tensors with a
//! fixed sequence length per batch; a per-token boolean mask marks real
//! tokens (`true`) vs. padding (`false`). Padding positions are excluded as
//! attention *keys*; padded *query* rows produce zeros.

use crate::layers::Linear;
use crate::param::Param;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Multi-head self-attention layer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    dim: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention matrices, one `T×T` tensor per (batch, head).
    attn: Vec<Tensor>,
    concat: Tensor,
    seq: usize,
}

/// Softmax over `row` restricted to positions where `mask` is `true`;
/// masked positions get probability 0. A fully masked row stays all-zero.
fn masked_softmax_row(row: &mut [f32], mask: &[bool]) {
    let mut m = f32::NEG_INFINITY;
    for (v, &keep) in row.iter().zip(mask) {
        if keep && *v > m {
            m = *v;
        }
    }
    if !m.is_finite() {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for (v, &keep) in row.iter_mut().zip(mask) {
        if keep {
            *v = (*v - m).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

impl MultiHeadAttention {
    /// New attention layer over `dim`-dimensional tokens with `heads` heads.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            cache: None,
        }
    }

    /// Extracts the `(batch, head)` block as a contiguous `seq × head_dim`
    /// matrix.
    fn slice_head(x: &Tensor, b: usize, h: usize, seq: usize, hd: usize) -> Tensor {
        let mut out = Tensor::zeros(seq, hd);
        for t in 0..seq {
            let src = &x.row(b * seq + t)[h * hd..(h + 1) * hd];
            out.row_mut(t).copy_from_slice(src);
        }
        out
    }

    /// Scatter-adds a `seq × head_dim` block back into the `(batch, head)`
    /// slot of a `(batch·seq, dim)` tensor.
    fn unslice_head_add(dst: &mut Tensor, src: &Tensor, b: usize, h: usize, seq: usize, hd: usize) {
        for t in 0..seq {
            let drow = &mut dst.row_mut(b * seq + t)[h * hd..(h + 1) * hd];
            for (d, &s) in drow.iter_mut().zip(src.row(t)) {
                *d += s;
            }
        }
    }

    fn attend(
        &self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        seq: usize,
        mask: &[bool],
    ) -> (Tensor, Vec<Tensor>) {
        let hd = self.dim / self.heads;
        let batch = q.rows() / seq;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut concat = Tensor::zeros(q.rows(), self.dim);
        let mut attn_mats = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            let bmask = &mask[b * seq..(b + 1) * seq];
            for h in 0..self.heads {
                let qb = Self::slice_head(q, b, h, seq, hd);
                let kb = Self::slice_head(k, b, h, seq, hd);
                let vb = Self::slice_head(v, b, h, seq, hd);
                let mut scores = qb.matmul_t(&kb);
                scores.scale(scale);
                for t in 0..seq {
                    masked_softmax_row(scores.row_mut(t), bmask);
                }
                let ob = scores.matmul(&vb);
                Self::unslice_head_add(&mut concat, &ob, b, h, seq, hd);
                attn_mats.push(scores);
            }
        }
        (concat, attn_mats)
    }

    /// Forward pass. `x` is `(batch·seq, dim)`, `mask` has one entry per
    /// token row. Caches intermediates for [`Self::backward`].
    pub fn forward(&mut self, x: &Tensor, seq: usize, mask: &[bool]) -> Tensor {
        assert_eq!(x.rows() % seq, 0, "rows must be a multiple of seq");
        assert_eq!(mask.len(), x.rows(), "mask must cover every token");
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (concat, attn) = self.attend(&q, &k, &v, seq, mask);
        let out = self.wo.forward(&concat);
        self.cache = Some(Cache {
            q,
            k,
            v,
            attn,
            concat,
            seq,
        });
        out
    }

    /// Inference-only forward (no caching).
    pub fn forward_inference(&self, x: &Tensor, seq: usize, mask: &[bool]) -> Tensor {
        let q = self.wq.forward_inference(x);
        let k = self.wk.forward_inference(x);
        let v = self.wv.forward_inference(x);
        let (concat, _) = self.attend(&q, &k, &v, seq, mask);
        self.wo.forward_inference(&concat)
    }

    /// Backward pass: accumulates all projection gradients, returns dX.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward");
        let hd = self.dim / self.heads;
        let seq = cache.seq;
        let batch = cache.q.rows() / seq;
        let scale = 1.0 / (hd as f32).sqrt();

        // Through the output projection.
        let d_concat = self.wo.backward(grad_out);

        let mut dq = Tensor::zeros(cache.q.rows(), self.dim);
        let mut dk = Tensor::zeros(cache.q.rows(), self.dim);
        let mut dv = Tensor::zeros(cache.q.rows(), self.dim);

        for b in 0..batch {
            for h in 0..self.heads {
                let a = &cache.attn[b * self.heads + h];
                let qb = Self::slice_head(&cache.q, b, h, seq, hd);
                let kb = Self::slice_head(&cache.k, b, h, seq, hd);
                let vb = Self::slice_head(&cache.v, b, h, seq, hd);
                let dob = Self::slice_head(&d_concat, b, h, seq, hd);

                // dA = dO·Vᵀ ; dV = Aᵀ·dO
                let da = dob.matmul_t(&vb);
                let dvb = a.t_matmul(&dob);
                // Softmax backward per row: dS = A ⊙ (dA - rowsum(dA ⊙ A)).
                let mut ds = Tensor::zeros(seq, seq);
                for t in 0..seq {
                    let arow = a.row(t);
                    let darow = da.row(t);
                    let inner: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
                    let dsrow = ds.row_mut(t);
                    for j in 0..seq {
                        dsrow[j] = arow[j] * (darow[j] - inner);
                    }
                }
                ds.scale(scale);
                // dQ = dS·K ; dK = dSᵀ·Q
                let dqb = ds.matmul(&kb);
                let dkb = ds.t_matmul(&qb);
                Self::unslice_head_add(&mut dq, &dqb, b, h, seq, hd);
                Self::unslice_head_add(&mut dk, &dkb, b, h, seq, hd);
                Self::unslice_head_add(&mut dv, &dvb, b, h, seq, hd);
            }
        }
        let _ = cache.concat; // consumed implicitly by wo.backward's cache
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.wq.params_mut();
        ps.extend(self.wk.params_mut());
        ps.extend(self.wv.params_mut());
        ps.extend(self.wo.params_mut());
        ps
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.wq.param_count()
            + self.wk.param_count()
            + self.wv.param_count()
            + self.wo.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn masked_softmax_ignores_padding() {
        let mut row = vec![1.0, 2.0, 3.0];
        masked_softmax_row(&mut row, &[true, false, true]);
        assert_eq!(row[1], 0.0);
        assert!((row[0] + row[2] - 1.0).abs() < 1e-6);
        assert!(row[2] > row[0]);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let mut row = vec![1.0, 2.0];
        masked_softmax_row(&mut row, &[false, false]);
        assert_eq!(row, vec![0.0, 0.0]);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(6, 8, (0..48).map(|i| (i as f32) * 0.01).collect());
        let mask = vec![true; 6];
        let y = mha.forward(&x, 3, &mask); // batch of 2 sequences of length 3
        assert_eq!((y.rows(), y.cols()), (6, 8));
    }

    #[test]
    fn attention_rows_sum_to_one_over_valid_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mha = MultiHeadAttention::new(4, 1, &mut rng);
        let x = Tensor::from_vec(4, 4, (0..16).map(|i| (i as f32) * 0.1).collect());
        let mask = vec![true, true, true, false];
        let _ = mha.forward(&x, 4, &mask);
        let cache = mha.cache.as_ref().unwrap();
        let a = &cache.attn[0];
        for t in 0..4 {
            let s: f32 = a.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert_eq!(a.get(t, 3), 0.0, "padded key must get zero attention");
        }
    }

    #[test]
    fn padding_tokens_do_not_change_valid_outputs() {
        // Same content with and without a padded tail: valid rows identical.
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(4, 2, &mut rng);
        let data: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let x2 = Tensor::from_vec(2, 4, data.clone());
        let y2 = mha.forward_inference(&x2, 2, &[true, true]);
        let mut padded = data.clone();
        padded.extend_from_slice(&[9.0, 9.0, 9.0, 9.0]); // garbage pad row
        let x3 = Tensor::from_vec(3, 4, padded);
        let y3 = mha.forward_inference(&x3, 3, &[true, true, false]);
        for t in 0..2 {
            for j in 0..4 {
                assert!(
                    (y2.get(t, j) - y3.get(t, j)).abs() < 1e-5,
                    "row {t} col {j}: {} vs {}",
                    y2.get(t, j),
                    y3.get(t, j)
                );
            }
        }
    }

    #[test]
    fn backward_produces_finite_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(4, 8, (0..32).map(|i| ((i % 7) as f32) * 0.1).collect());
        let mask = vec![true, true, true, false];
        let y = mha.forward(&x, 4, &mask);
        let dy = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        let dx = mha.backward(&dy);
        assert_eq!((dx.rows(), dx.cols()), (4, 8));
        assert!(dx.data().iter().all(|v| v.is_finite()));
        assert!(mha.wq.weight.grad.frobenius_norm() > 0.0);
        assert!(mha.wo.weight.grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = StdRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(16, 4, &mut rng);
        assert_eq!(mha.param_count(), 4 * (16 * 16 + 16));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }
}
